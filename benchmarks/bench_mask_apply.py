"""Mask application at answer scale: compiled kernels vs interpreted.

The acceptance bar for the compiled-mask subsystem (PR 4): on a wide
mask (>= 50 rows mixing constants, repeated variables, COMPARISON
intervals and unconditional rows) applied to a large answer (>= 10k
rows), ``compile_mask(mask).apply`` must be at least 5x faster than the
interpreted ``Mask.apply`` — while producing byte-identical output.

The run also times the streaming pruned meta-product against
materialize-then-prune on a join-heavy generated workload, and writes
every number to ``BENCH_PR4.json`` at the repository root so the
claimed speedups are machine-checkable alongside the committed copy.

PR 9 adds the columnar data plane's bars, written to ``BENCH_PR9.json``:

* at 10^6 rows, ``apply_mask_columnar`` (pure Python, numpy off) must
  beat the PR 4 row kernel by >= 4x rows/sec, byte-identically;
* at 10^7 rows (``REPRO_BENCH_1E7=1``, off by default — minutes), the
  chunk-streamed ``iter_apply_chunked`` run must finish inside a
  bounded-memory assertion in a subprocess, with sampled chunks
  byte-identical to the interpreted ``Mask.apply``.
"""

from __future__ import annotations

import json
import os
import random
import resource
import statistics
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.algebra.relation import Column, Relation
from repro.algebra.types import INTEGER
from repro.calculus.to_algebra import compile_query
from repro.config import DEFAULT_CONFIG
from repro.core.compiled_mask import compile_mask
from repro.core.mask import MASKED, Mask
from repro.meta.cell import MetaCell
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.plan import derive_mask
from repro.metaalgebra.table import MaskRow
from repro.predicates.comparators import Comparator
from repro.predicates.store import ConstraintStore
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

ANSWER_ROWS = 10_000
MASK_ROWS = 56
ARITY = 6
VALUE_SPACE = 50
REPEATS = 5
SPEEDUP_BAR = 5.0

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_PR4.json"


def _record(section: str, payload: dict) -> None:
    """Merge ``payload`` under ``section`` in ``BENCH_PR4.json``."""
    results = {}
    if RESULTS_PATH.exists():
        results = json.loads(RESULTS_PATH.read_text())
    results[section] = payload
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")


def _median_seconds(fn, repeats: int = REPEATS) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


# ----------------------------------------------------------------------
# the wide mask and the large answer
# ----------------------------------------------------------------------


def build_mask() -> Mask:
    """>= 50 rows exercising every cell kind the matcher handles."""
    columns = tuple(Column(f"C{i}", INTEGER) for i in range(ARITY))
    empty = ConstraintStore.empty()
    blank, star = MetaCell.blank(), MetaCell.blank(True)
    rows = []

    def meta(cells):
        return MetaTuple(frozenset({"V"}), tuple(cells), frozenset())

    # Two unconditional rows: columns 0 and 1 are always visible.
    rows.append(MaskRow(meta([star] + [blank] * 5), empty))
    rows.append(MaskRow(meta([blank, star] + [blank] * 4), empty))

    # Forty constant-keyed rows: each admits one (C0, C1) value pair
    # and stars C2/C3.  Most answer tuples match none of them — the
    # case the hash index collapses to a single probe.
    for i in range(40):
        rows.append(MaskRow(meta([
            MetaCell.constant(i % VALUE_SPACE),
            MetaCell.constant((i * 3 + 1) % VALUE_SPACE),
            star, star, blank, blank,
        ]), empty))

    # Fourteen variable rows: a repeated variable (join within the
    # row) plus an interval constraint, starring C4/C5.
    for i in range(14):
        var = f"x{i}"
        store = empty.constrain(var, Comparator.LE, 5 + i)
        rows.append(MaskRow(meta([
            blank, blank,
            MetaCell.variable(var),
            MetaCell.variable(var),
            star, star,
        ]), store))

    assert len(rows) >= 50
    return Mask(columns, tuple(rows))


def build_answer(mask: Mask) -> Relation:
    rng = random.Random(42)
    rows = [
        tuple(rng.randrange(VALUE_SPACE) for _ in range(ARITY))
        for _ in range(ANSWER_ROWS)
    ]
    return Relation(mask.columns, rows, validate=False)


def test_compiled_apply_speedup_and_identity():
    """>= 5x median speedup, byte-identical deliveries."""
    mask = build_mask()
    answer = build_answer(mask)
    compiled = compile_mask(mask)

    interpreted_out = mask.apply(answer)
    compiled_out = compiled.apply(answer)
    assert compiled_out == interpreted_out  # identity before speed

    interpreted_s = _median_seconds(lambda: mask.apply(answer))
    compiled_s = _median_seconds(lambda: compiled.apply(answer))
    compile_s = _median_seconds(lambda: compile_mask(mask), repeats=3)
    speedup = interpreted_s / compiled_s

    masked_cells = sum(
        1 for row in compiled_out for cell in row if cell is MASKED
    )
    _record("mask_apply", {
        "answer_rows": ANSWER_ROWS,
        "mask_rows": len(mask.rows),
        "arity": ARITY,
        "interpreted_median_ms": round(interpreted_s * 1e3, 3),
        "compiled_median_ms": round(compiled_s * 1e3, 3),
        "compile_once_median_ms": round(compile_s * 1e3, 3),
        "speedup": round(speedup, 2),
        "speedup_bar": SPEEDUP_BAR,
        "masked_cells": masked_cells,
    })
    print(f"\nmask apply: interpreted {interpreted_s * 1e3:.1f}ms  "
          f"compiled {compiled_s * 1e3:.1f}ms  "
          f"(compile once: {compile_s * 1e3:.2f}ms)  "
          f"speedup {speedup:.1f}x")
    assert speedup >= SPEEDUP_BAR, (
        f"expected >= {SPEEDUP_BAR}x, measured {speedup:.2f}x "
        f"(interpreted {interpreted_s:.4f}s / compiled {compiled_s:.4f}s)"
    )


# ----------------------------------------------------------------------
# the streaming pruned product
# ----------------------------------------------------------------------

# Many 3-relation views over 4 relations: most product combinations
# mix views and dangle, so Section 4.1 prunes ~96% of what the
# materializing product builds — the regime streaming is for.
SPEC = WorkloadSpec(
    relations=4,
    views=12,
    users=1,
    rows_per_relation=4,
    max_view_relations=3,
    comparison_probability=0.6,
    seed=3,
)
DERIVATIONS = 12


def _derivation_inputs():
    generator = WorkloadGenerator(SPEC.seed)
    workload = generator.workload(SPEC)
    user = workload.users[0]
    for view in workload.views:
        workload.catalog.permit(view.name, user)
    schema = workload.database.schema
    plans = [
        compile_query(generator.query(SPEC, schema), schema)
        for _ in range(DERIVATIONS)
    ]
    return workload, user, plans


def test_streaming_product_never_materializes_more():
    """Streamed derivations: same masks, fewer product rows, timed."""
    workload, user, plans = _derivation_inputs()
    schema = workload.database.schema
    streaming_cfg = DEFAULT_CONFIG.but(streaming_product=True)
    materializing_cfg = DEFAULT_CONFIG.but(streaming_product=False)

    def run(config):
        return [
            derive_mask(plan, schema, workload.catalog, user, config)
            for plan in plans
        ]

    streamed = run(streaming_cfg)
    materialized = run(materializing_cfg)
    for fast, slow in zip(streamed, materialized):
        assert fast.mask.rows == slow.mask.rows  # identity before speed

    # raw_product is post-prune when streamed, pre-prune otherwise:
    # the difference is exactly the rows streaming never materialized.
    streamed_rows = sum(d.raw_product.cardinality for d in streamed)
    materialized_rows = sum(
        d.raw_product.cardinality for d in materialized
    )
    assert streamed_rows <= materialized_rows

    streaming_s = _median_seconds(lambda: run(streaming_cfg))
    materializing_s = _median_seconds(lambda: run(materializing_cfg))
    _record("streaming_product", {
        "derivations": DERIVATIONS,
        "product_rows_materialized": materialized_rows,
        "product_rows_streamed": streamed_rows,
        "materializing_median_ms": round(materializing_s * 1e3, 3),
        "streaming_median_ms": round(streaming_s * 1e3, 3),
        "speedup": round(materializing_s / streaming_s, 2),
    })
    print(f"\nstreaming product: {streamed_rows} rows materialized vs "
          f"{materialized_rows} reference; "
          f"derive {streaming_s * 1e3:.1f}ms vs "
          f"{materializing_s * 1e3:.1f}ms "
          f"({materializing_s / streaming_s:.1f}x)")


# ----------------------------------------------------------------------
# the columnar data plane at 10^6 and 10^7 rows (PR 9)
# ----------------------------------------------------------------------

SCALE_1E6 = 1_000_000
SCALE_1E7 = 10_000_000
COLUMNAR_SPEEDUP_BAR = 4.0
#: Peak-RSS ceiling for the 10^7 chunked subprocess.  A materialized
#: 10^7 x 6 answer alone is >1 GB of tuples, so staying under this
#: bound demonstrates the answer never existed in memory at once.
RSS_BOUND_1E7_MB = 512
CHUNK_1E7 = 65_536

BENCH9_PATH = Path(__file__).resolve().parents[1] / "BENCH_PR9.json"


def _record9(section: str, payload: dict) -> None:
    """Merge ``payload`` under ``section`` in ``BENCH_PR9.json``."""
    results = {}
    if BENCH9_PATH.exists():
        results = json.loads(BENCH9_PATH.read_text())
    results[section] = payload
    BENCH9_PATH.write_text(json.dumps(results, indent=2) + "\n")


def _peak_rss_mb() -> float:
    """This process's high-water RSS in MB (Linux: ru_maxrss is KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def iter_scale_rows(count: int, pool_size: int = 4096):
    """``count`` distinct rows for :func:`build_mask`'s columns.

    The first five columns cycle a small random pool (so constant-hit
    and interval-hit rates match :func:`build_answer`'s distribution);
    the last column carries the row counter, making every row distinct
    — set semantics then never shrink the answer, which keeps row
    counts exact at any scale.  A generator: 10^7 rows stream without
    ever being held at once.
    """
    rng = random.Random(1234)
    pool = [
        tuple(rng.randrange(VALUE_SPACE) for _ in range(ARITY - 1))
        for _ in range(pool_size)
    ]
    for i in range(count):
        yield pool[i % pool_size] + (i,)


def test_columnar_speedup_1e6():
    """Columnar kernel >= 4x the row kernel at 10^6 rows, identical."""
    mask = build_mask()
    compiled = compile_mask(mask)
    answer = Relation(
        mask.columns, iter_scale_rows(SCALE_1E6), validate=False,
    )
    assert answer.cardinality == SCALE_1E6

    from repro.core.compiled_mask import apply_mask_columnar

    columnar_out = apply_mask_columnar(compiled, answer)
    row_out = compiled.apply(answer)
    assert columnar_out == row_out  # identity before speed
    del columnar_out, row_out

    # The row kernel takes seconds per pass at this scale; three
    # repeats bound the job's wall time while the median still rejects
    # a single noisy sample.
    row_s = _median_seconds(lambda: compiled.apply(answer), repeats=3)
    columnar_s = _median_seconds(
        lambda: apply_mask_columnar(compiled, answer), repeats=3,
    )
    speedup = row_s / columnar_s

    payload = {
        "answer_rows": SCALE_1E6,
        "mask_rows": len(mask.rows),
        "arity": ARITY,
        "row_kernel_median_ms": round(row_s * 1e3, 1),
        "columnar_median_ms": round(columnar_s * 1e3, 1),
        "row_kernel_rows_per_sec": round(SCALE_1E6 / row_s),
        "columnar_rows_per_sec": round(SCALE_1E6 / columnar_s),
        "speedup": round(speedup, 2),
        "speedup_bar": COLUMNAR_SPEEDUP_BAR,
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }

    from repro.algebra.columnar import have_numpy

    if have_numpy():
        numpy_s = _median_seconds(
            lambda: apply_mask_columnar(compiled, answer,
                                        use_numpy=True),
            repeats=3,
        )
        payload["columnar_numpy_median_ms"] = round(numpy_s * 1e3, 1)
        payload["columnar_numpy_rows_per_sec"] = round(
            SCALE_1E6 / numpy_s
        )

    _record9("columnar_1e6", payload)
    print(f"\ncolumnar 1e6: row kernel {row_s * 1e3:.0f}ms "
          f"({SCALE_1E6 / row_s:,.0f} rows/s)  "
          f"columnar {columnar_s * 1e3:.0f}ms "
          f"({SCALE_1E6 / columnar_s:,.0f} rows/s)  "
          f"speedup {speedup:.1f}x  "
          f"peak RSS {payload['peak_rss_mb']:.0f}MB")
    assert speedup >= COLUMNAR_SPEEDUP_BAR, (
        f"expected >= {COLUMNAR_SPEEDUP_BAR}x over the row kernel, "
        f"measured {speedup:.2f}x"
    )


#: Driver for the 10^7 bounded-memory run.  Executed in a *subprocess*
#: so its ru_maxrss is a clean high-water mark of the chunked pipeline
#: alone, not of whatever this pytest process touched before.
_DRIVER_1E7 = """
import json, resource, sys, time
from bench_mask_apply import build_mask, iter_scale_rows
from repro.algebra.relation import Relation
from repro.core.compiled_mask import compile_mask, iter_apply_chunked

count, chunk_size, sample_every = (int(a) for a in sys.argv[1:4])
mask = build_mask()
compiled = compile_mask(mask)

start = time.perf_counter()
rows_seen = 0
checked_rows = 0
for index, masked in enumerate(iter_apply_chunked(
        compiled, iter_scale_rows(count), chunk_size=chunk_size)):
    chunk_start = rows_seen
    rows_seen += len(masked)
    if index % sample_every == 0:
        # Sampled identity against the interpreted oracle: rebuild
        # this chunk's rows (the generator is deterministic) and mask
        # them with Mask.apply.  Rows are globally distinct, so the
        # throwaway Relation cannot dedupe anything away.
        rewind = iter_scale_rows(count)
        for _ in range(chunk_start):
            next(rewind)
        chunk_rows = [next(rewind) for _ in range(len(masked))]
        oracle = mask.apply(Relation(mask.columns, chunk_rows,
                                     validate=False))
        assert masked == oracle, f"chunk {index} diverged"
        checked_rows += len(masked)
elapsed = time.perf_counter() - start

print(json.dumps({
    "rows": rows_seen,
    "elapsed_s": round(elapsed, 2),
    "rows_per_sec": round(rows_seen / elapsed),
    "checked_rows": checked_rows,
    "peak_rss_mb": round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1),
}))
"""


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_1E7") != "1",
    reason="10^7-row run takes minutes; opt in with REPRO_BENCH_1E7=1",
)
def test_chunked_apply_1e7_bounded_memory():
    """10^7 rows stream through masking inside a hard RSS bound."""
    bench_dir = Path(__file__).resolve().parent
    src_dir = bench_dir.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_dir), str(bench_dir),
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    sample_every = 32  # oracle-check every 32nd chunk (~2% of rows)
    completed = subprocess.run(
        [sys.executable, "-c", _DRIVER_1E7, str(SCALE_1E7),
         str(CHUNK_1E7), str(sample_every)],
        env=env, capture_output=True, text=True, check=True,
    )
    stats = json.loads(completed.stdout.splitlines()[-1])

    assert stats["rows"] == SCALE_1E7
    assert stats["checked_rows"] > 0
    assert stats["peak_rss_mb"] < RSS_BOUND_1E7_MB, (
        f"chunked 10^7 run peaked at {stats['peak_rss_mb']}MB RSS; "
        f"bound is {RSS_BOUND_1E7_MB}MB — the answer must never "
        f"materialize whole"
    )
    _record9("chunked_1e7", {
        **stats,
        "chunk_size": CHUNK_1E7,
        "sample_every_chunks": sample_every,
        "rss_bound_mb": RSS_BOUND_1E7_MB,
    })
    print(f"\nchunked 1e7: {stats['rows']:,} rows in "
          f"{stats['elapsed_s']}s ({stats['rows_per_sec']:,} rows/s), "
          f"peak RSS {stats['peak_rss_mb']}MB "
          f"(bound {RSS_BOUND_1E7_MB}MB), "
          f"{stats['checked_rows']:,} rows oracle-checked")


# ----------------------------------------------------------------------
# pytest-benchmark entries (for the record)
# ----------------------------------------------------------------------


def test_apply_interpreted(benchmark):
    mask = build_mask()
    answer = build_answer(mask)
    out = benchmark(mask.apply, answer)
    assert len(out) == ANSWER_ROWS


def test_apply_compiled(benchmark):
    mask = build_mask()
    answer = build_answer(mask)
    compiled = compile_mask(mask)
    out = benchmark(compiled.apply, answer)
    assert len(out) == ANSWER_ROWS
