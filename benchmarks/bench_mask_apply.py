"""Mask application at answer scale: compiled kernels vs interpreted.

The acceptance bar for the compiled-mask subsystem (PR 4): on a wide
mask (>= 50 rows mixing constants, repeated variables, COMPARISON
intervals and unconditional rows) applied to a large answer (>= 10k
rows), ``compile_mask(mask).apply`` must be at least 5x faster than the
interpreted ``Mask.apply`` — while producing byte-identical output.

The run also times the streaming pruned meta-product against
materialize-then-prune on a join-heavy generated workload, and writes
every number to ``BENCH_PR4.json`` at the repository root so the
claimed speedups are machine-checkable alongside the committed copy.
"""

from __future__ import annotations

import json
import random
import statistics
import time
from pathlib import Path

from repro.algebra.relation import Column, Relation
from repro.algebra.types import INTEGER
from repro.calculus.to_algebra import compile_query
from repro.config import DEFAULT_CONFIG
from repro.core.compiled_mask import compile_mask
from repro.core.mask import MASKED, Mask
from repro.meta.cell import MetaCell
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.plan import derive_mask
from repro.metaalgebra.table import MaskRow
from repro.predicates.comparators import Comparator
from repro.predicates.store import ConstraintStore
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

ANSWER_ROWS = 10_000
MASK_ROWS = 56
ARITY = 6
VALUE_SPACE = 50
REPEATS = 5
SPEEDUP_BAR = 5.0

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_PR4.json"


def _record(section: str, payload: dict) -> None:
    """Merge ``payload`` under ``section`` in ``BENCH_PR4.json``."""
    results = {}
    if RESULTS_PATH.exists():
        results = json.loads(RESULTS_PATH.read_text())
    results[section] = payload
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")


def _median_seconds(fn, repeats: int = REPEATS) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


# ----------------------------------------------------------------------
# the wide mask and the large answer
# ----------------------------------------------------------------------


def build_mask() -> Mask:
    """>= 50 rows exercising every cell kind the matcher handles."""
    columns = tuple(Column(f"C{i}", INTEGER) for i in range(ARITY))
    empty = ConstraintStore.empty()
    blank, star = MetaCell.blank(), MetaCell.blank(True)
    rows = []

    def meta(cells):
        return MetaTuple(frozenset({"V"}), tuple(cells), frozenset())

    # Two unconditional rows: columns 0 and 1 are always visible.
    rows.append(MaskRow(meta([star] + [blank] * 5), empty))
    rows.append(MaskRow(meta([blank, star] + [blank] * 4), empty))

    # Forty constant-keyed rows: each admits one (C0, C1) value pair
    # and stars C2/C3.  Most answer tuples match none of them — the
    # case the hash index collapses to a single probe.
    for i in range(40):
        rows.append(MaskRow(meta([
            MetaCell.constant(i % VALUE_SPACE),
            MetaCell.constant((i * 3 + 1) % VALUE_SPACE),
            star, star, blank, blank,
        ]), empty))

    # Fourteen variable rows: a repeated variable (join within the
    # row) plus an interval constraint, starring C4/C5.
    for i in range(14):
        var = f"x{i}"
        store = empty.constrain(var, Comparator.LE, 5 + i)
        rows.append(MaskRow(meta([
            blank, blank,
            MetaCell.variable(var),
            MetaCell.variable(var),
            star, star,
        ]), store))

    assert len(rows) >= 50
    return Mask(columns, tuple(rows))


def build_answer(mask: Mask) -> Relation:
    rng = random.Random(42)
    rows = [
        tuple(rng.randrange(VALUE_SPACE) for _ in range(ARITY))
        for _ in range(ANSWER_ROWS)
    ]
    return Relation(mask.columns, rows, validate=False)


def test_compiled_apply_speedup_and_identity():
    """>= 5x median speedup, byte-identical deliveries."""
    mask = build_mask()
    answer = build_answer(mask)
    compiled = compile_mask(mask)

    interpreted_out = mask.apply(answer)
    compiled_out = compiled.apply(answer)
    assert compiled_out == interpreted_out  # identity before speed

    interpreted_s = _median_seconds(lambda: mask.apply(answer))
    compiled_s = _median_seconds(lambda: compiled.apply(answer))
    compile_s = _median_seconds(lambda: compile_mask(mask), repeats=3)
    speedup = interpreted_s / compiled_s

    masked_cells = sum(
        1 for row in compiled_out for cell in row if cell is MASKED
    )
    _record("mask_apply", {
        "answer_rows": ANSWER_ROWS,
        "mask_rows": len(mask.rows),
        "arity": ARITY,
        "interpreted_median_ms": round(interpreted_s * 1e3, 3),
        "compiled_median_ms": round(compiled_s * 1e3, 3),
        "compile_once_median_ms": round(compile_s * 1e3, 3),
        "speedup": round(speedup, 2),
        "speedup_bar": SPEEDUP_BAR,
        "masked_cells": masked_cells,
    })
    print(f"\nmask apply: interpreted {interpreted_s * 1e3:.1f}ms  "
          f"compiled {compiled_s * 1e3:.1f}ms  "
          f"(compile once: {compile_s * 1e3:.2f}ms)  "
          f"speedup {speedup:.1f}x")
    assert speedup >= SPEEDUP_BAR, (
        f"expected >= {SPEEDUP_BAR}x, measured {speedup:.2f}x "
        f"(interpreted {interpreted_s:.4f}s / compiled {compiled_s:.4f}s)"
    )


# ----------------------------------------------------------------------
# the streaming pruned product
# ----------------------------------------------------------------------

# Many 3-relation views over 4 relations: most product combinations
# mix views and dangle, so Section 4.1 prunes ~96% of what the
# materializing product builds — the regime streaming is for.
SPEC = WorkloadSpec(
    relations=4,
    views=12,
    users=1,
    rows_per_relation=4,
    max_view_relations=3,
    comparison_probability=0.6,
    seed=3,
)
DERIVATIONS = 12


def _derivation_inputs():
    generator = WorkloadGenerator(SPEC.seed)
    workload = generator.workload(SPEC)
    user = workload.users[0]
    for view in workload.views:
        workload.catalog.permit(view.name, user)
    schema = workload.database.schema
    plans = [
        compile_query(generator.query(SPEC, schema), schema)
        for _ in range(DERIVATIONS)
    ]
    return workload, user, plans


def test_streaming_product_never_materializes_more():
    """Streamed derivations: same masks, fewer product rows, timed."""
    workload, user, plans = _derivation_inputs()
    schema = workload.database.schema
    streaming_cfg = DEFAULT_CONFIG.but(streaming_product=True)
    materializing_cfg = DEFAULT_CONFIG.but(streaming_product=False)

    def run(config):
        return [
            derive_mask(plan, schema, workload.catalog, user, config)
            for plan in plans
        ]

    streamed = run(streaming_cfg)
    materialized = run(materializing_cfg)
    for fast, slow in zip(streamed, materialized):
        assert fast.mask.rows == slow.mask.rows  # identity before speed

    # raw_product is post-prune when streamed, pre-prune otherwise:
    # the difference is exactly the rows streaming never materialized.
    streamed_rows = sum(d.raw_product.cardinality for d in streamed)
    materialized_rows = sum(
        d.raw_product.cardinality for d in materialized
    )
    assert streamed_rows <= materialized_rows

    streaming_s = _median_seconds(lambda: run(streaming_cfg))
    materializing_s = _median_seconds(lambda: run(materializing_cfg))
    _record("streaming_product", {
        "derivations": DERIVATIONS,
        "product_rows_materialized": materialized_rows,
        "product_rows_streamed": streamed_rows,
        "materializing_median_ms": round(materializing_s * 1e3, 3),
        "streaming_median_ms": round(streaming_s * 1e3, 3),
        "speedup": round(materializing_s / streaming_s, 2),
    })
    print(f"\nstreaming product: {streamed_rows} rows materialized vs "
          f"{materialized_rows} reference; "
          f"derive {streaming_s * 1e3:.1f}ms vs "
          f"{materializing_s * 1e3:.1f}ms "
          f"({materializing_s / streaming_s:.1f}x)")


# ----------------------------------------------------------------------
# pytest-benchmark entries (for the record)
# ----------------------------------------------------------------------


def test_apply_interpreted(benchmark):
    mask = build_mask()
    answer = build_answer(mask)
    out = benchmark(mask.apply, answer)
    assert len(out) == ANSWER_ROWS


def test_apply_compiled(benchmark):
    mask = build_mask()
    answer = build_answer(mask)
    compiled = compile_mask(mask)
    out = benchmark(compiled.apply, answer)
    assert len(out) == ANSWER_ROWS
