"""E3 / E4 / E5 — the Section 5 examples, end to end.

Each benchmark runs the complete authorization process (compile,
evaluate, derive mask, apply, infer permits) for one worked example and
asserts the paper's printed outcome.
"""

from repro.core.mask import MASKED
from repro.workloads.paperdb import (
    EXAMPLE_1_QUERY,
    EXAMPLE_2_QUERY,
    EXAMPLE_3_QUERY,
)


def test_example1_brown_large_projects(benchmark, paper_engine):
    answer = benchmark(paper_engine.authorize, "Brown", EXAMPLE_1_QUERY)
    assert set(answer.delivered) == {("bq-45", "Acme"), (MASKED, MASKED)}
    assert [str(p) for p in answer.permits] == [
        "permit (NUMBER, SPONSOR) where SPONSOR = Acme",
    ]


def test_example2_klein_engineers(benchmark, paper_engine):
    answer = benchmark(paper_engine.authorize, "Klein", EXAMPLE_2_QUERY)
    assert answer.delivered == (("Brown", MASKED),)
    assert [str(p) for p in answer.permits] == ["permit (NAME)"]


def test_example3_brown_same_title(benchmark, paper_engine):
    answer = benchmark(paper_engine.authorize, "Brown", EXAMPLE_3_QUERY)
    assert answer.is_fully_delivered
    assert answer.permits == ()


def test_example2_mask_only(benchmark, paper_engine):
    """The meta-side alone (Figure 2's dashed path), no data touched."""
    derivation = benchmark(paper_engine.derive, "Klein", EXAMPLE_2_QUERY)
    assert derivation.mask is not None
    assert derivation.mask.cardinality == 1


def test_example3_selfjoin_cold_cache(benchmark, paper_engine):
    """Example 3 with the per-user self-join cache invalidated each
    round — the price of the closure itself."""

    def run():
        paper_engine._selfjoin_cache.clear()
        paper_engine._derivation_cache.clear()
        return paper_engine.authorize("Brown", EXAMPLE_3_QUERY)

    answer = benchmark(run)
    assert answer.is_fully_delivered
