"""Micro-benchmarks for the substrates behind the experiments.

Not tied to a single paper artifact; these isolate the components that
dominate the end-to-end numbers: the statement parser, the view
encoder, the meta-selection operator, constraint-store operations, and
the containment checker.
"""

from repro.algebra.expression import AtomicCondition, Col, Const
from repro.calculus.containment import is_contained_in
from repro.config import DEFAULT_CONFIG
from repro.lang.parser import parse_statement
from repro.meta.catalog import PermissionCatalog
from repro.metaalgebra.selection import meta_select
from repro.metaalgebra.table import MaskRow, MaskTable
from repro.predicates.comparators import Comparator
from repro.predicates.store import ConstraintStore
from repro.workloads.paperdb import (
    VIEW_STATEMENTS,
    build_paper_database,
)

ELP_TEXT = VIEW_STATEMENTS[1]


def test_parse_view_statement(benchmark):
    view = benchmark(parse_statement, ELP_TEXT)
    assert view.name == "ELP"


def test_encode_view(benchmark):
    database = build_paper_database()

    def encode():
        catalog = PermissionCatalog(database.schema)
        return catalog.define_view(ELP_TEXT)

    encoded = benchmark(encode)
    assert len(encoded.tuples) == 3


def test_meta_selection_operator(benchmark, paper_engine):
    derivation = paper_engine.derive(
        "Klein",
        "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE) "
        "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
        "and ASSIGNMENT.P_NO = PROJECT.NUMBER",
    )
    table = derivation.pruned_product
    condition = AtomicCondition(Col(5), Comparator.GE, Const(300_000))

    selected = benchmark(meta_select, table, condition, DEFAULT_CONFIG)
    assert isinstance(selected, MaskTable)


def test_store_operations(benchmark):
    def churn():
        store = ConstraintStore.empty()
        for i in range(20):
            store = store.constrain(f"x{i % 5}", Comparator.GE, i)
        store = store.relate("x0", Comparator.LT, "x1")
        store = store.relate("x1", Comparator.LT, "x2")
        return store.is_definitely_unsat()

    assert benchmark(churn) is False


def test_containment_check(benchmark):
    from repro.lang.parser import parse_query

    database = build_paper_database()
    narrow = parse_query(
        "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, "
        "PROJECT.BUDGET) "
        "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
        "and PROJECT.NUMBER = ASSIGNMENT.P_NO "
        "and PROJECT.BUDGET > 500,000"
    )
    wide = parse_query(
        "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, "
        "PROJECT.BUDGET) "
        "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
        "and PROJECT.NUMBER = ASSIGNMENT.P_NO "
        "and PROJECT.BUDGET >= 250,000"
    )

    result = benchmark(is_contained_in, narrow, wide, database.schema)
    assert result is True


def test_mask_application(benchmark, paper_engine):
    from repro.workloads.paperdb import EXAMPLE_3_QUERY

    answer = paper_engine.authorize("Brown", EXAMPLE_3_QUERY)

    delivered = benchmark(answer.mask.apply, answer.answer)
    assert len(delivered) == answer.answer.cardinality
