"""Execution backends at data scale: SQL pushdown vs in-process.

The acceptance bar for the backend subsystem (PR 7): on a masked
scan-heavy pipeline over a 10^6-row relation — evaluate the plan, push
the mask's visibility predicate into the engine, drop fully-masked
tuples — :class:`~repro.backends.sqlite.SQLiteBackend` must sustain at
least 10x the rows/second of the best Python path
(:class:`~repro.backends.python.PythonBackend` with a compiled mask),
while delivering sorted-row identical output.

The run also times a 10^6 x 10^3 equi-join and the chunked bulk load
(for the record, no bar) and writes every number to ``BENCH_PR7.json``
at the repository root so the claimed speedups are machine-checkable
alongside the committed copy.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.algebra.database import Database, build_database
from repro.algebra.expression import (
    AtomicCondition,
    Col,
    Const,
    Occurrence,
    PSJQuery,
)
from repro.algebra.relation import Column
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.backends import PythonBackend, SQLiteBackend
from repro.core.compiled_mask import compile_mask, sql_predicate_view
from repro.core.mask import Mask
from repro.meta.cell import MetaCell
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.table import MaskRow
from repro.predicates.comparators import Comparator
from repro.predicates.store import ConstraintStore

SCAN_ROWS = 1_000_000
DIM_ROWS = 1_000
VISIBLE_BELOW = 1_000  # V < 1000 of V in 0..9999: ~10% delivered
SPEEDUP_BAR = 10.0
HEAVY_REPEATS = 3
LIGHT_REPEATS = 5

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_PR7.json"


def _record(section: str, payload: dict) -> None:
    """Merge ``payload`` under ``section`` in ``BENCH_PR7.json``."""
    results = {}
    if RESULTS_PATH.exists():
        results = json.loads(RESULTS_PATH.read_text())
    results[section] = payload
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")


def _median_seconds(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


# ----------------------------------------------------------------------
# the 10^6-row instance
# ----------------------------------------------------------------------

_DATABASE = None


def build_big_database() -> Database:
    """FACT (10^6 rows, unique key) x DIM (10^3 rows), built once."""
    global _DATABASE
    if _DATABASE is None:
        fact = make_schema(
            "FACT",
            [("K", INTEGER), ("G", INTEGER), ("V", INTEGER),
             ("TAG", STRING)],
            key=["K"],
        )
        dim = make_schema(
            "DIM", [("G", INTEGER), ("LABEL", STRING)], key=["G"],
        )
        _DATABASE = build_database([fact, dim], {
            "FACT": [
                (i, i % DIM_ROWS, i % 10_000, f"t{i % 7}")
                for i in range(SCAN_ROWS)
            ],
            "DIM": [(g, f"g{g}") for g in range(DIM_ROWS)],
        })
    return _DATABASE


def scan_plan() -> PSJQuery:
    """Full-width scan with two residual selections (all rows pass)."""
    return PSJQuery(
        (Occurrence("FACT"),),
        (AtomicCondition(Col(3), Comparator.NE, Const("none")),
         AtomicCondition(Col(2), Comparator.GE, Const(0))),
        (0, 1, 2, 3),
    )


def scan_mask() -> Mask:
    """One SQL-extractable row: tuples with V < 1000 fully visible."""
    meta = MetaTuple(
        frozenset({"V"}),
        (MetaCell.blank(True), MetaCell.blank(True),
         MetaCell.variable("x", True), MetaCell.blank(True)),
        frozenset(),
    )
    store = ConstraintStore.empty().constrain(
        "x", Comparator.LT, VISIBLE_BELOW
    )
    columns = (Column("K", INTEGER), Column("G", INTEGER),
               Column("V", INTEGER), Column("TAG", STRING))
    return Mask(columns, (MaskRow(meta, store),))


def join_plan() -> PSJQuery:
    """FACT equi-joined to DIM on G, V < 100, projecting (K, LABEL)."""
    return PSJQuery(
        (Occurrence("FACT"), Occurrence("DIM")),
        (AtomicCondition(Col(1), Comparator.EQ, Col(4)),
         AtomicCondition(Col(2), Comparator.LT, Const(100))),
        (0, 5),
    )


# ----------------------------------------------------------------------
# bulk load
# ----------------------------------------------------------------------


def test_bulk_load_throughput():
    """Chunked executemany load of 10^6 + 10^3 rows, timed (no bar)."""
    database = build_big_database()
    backend = SQLiteBackend()
    load_s = _median_seconds(
        lambda: backend.load(database), repeats=HEAVY_REPEATS
    )
    total_rows = SCAN_ROWS + DIM_ROWS
    _record("bulk_load", {
        "rows": total_rows,
        "chunk_rows": backend._chunk_rows,
        "sqlite_load_median_s": round(load_s, 3),
        "sqlite_rows_per_s": round(total_rows / load_s),
    })
    print(f"\nbulk load: {total_rows} rows in {load_s:.2f}s "
          f"({total_rows / load_s:,.0f} rows/s)")
    assert backend.execute(
        PSJQuery((Occurrence("DIM"),), (), (0, 1))
    ).cardinality == DIM_ROWS


# ----------------------------------------------------------------------
# the masked scan pipeline — carries the 10x bar
# ----------------------------------------------------------------------


def test_masked_scan_speedup_and_identity():
    """>= 10x rows/s over the best Python path, identical delivery."""
    database = build_big_database()
    plan = scan_plan()
    mask = scan_mask()
    assert sql_predicate_view(mask) is not None  # pushdown engaged
    compiled = compile_mask(mask)
    python = PythonBackend(database)
    sqlite = SQLiteBackend(database)

    def run_python():
        return python.execute_masked(
            plan, mask, compiled, drop_fully_masked=True
        )

    def run_sqlite():
        return sqlite.execute_masked(
            plan, mask, drop_fully_masked=True
        )

    expect = run_python()
    got = run_sqlite()  # also warms the version sync
    assert sorted(expect, key=repr) == sorted(got, key=repr)

    python_s = _median_seconds(run_python, repeats=HEAVY_REPEATS)
    sqlite_s = _median_seconds(run_sqlite, repeats=LIGHT_REPEATS)
    python_rows_per_s = SCAN_ROWS / python_s
    sqlite_rows_per_s = SCAN_ROWS / sqlite_s
    speedup = sqlite_rows_per_s / python_rows_per_s

    _record("masked_scan", {
        "scanned_rows": SCAN_ROWS,
        "delivered_rows": len(got),
        "python_median_s": round(python_s, 3),
        "sqlite_median_s": round(sqlite_s, 3),
        "python_rows_per_s": round(python_rows_per_s),
        "sqlite_rows_per_s": round(sqlite_rows_per_s),
        "speedup": round(speedup, 2),
        "speedup_bar": SPEEDUP_BAR,
    })
    print(f"\nmasked scan: python {python_s:.2f}s "
          f"({python_rows_per_s:,.0f} rows/s)  "
          f"sqlite {sqlite_s:.2f}s "
          f"({sqlite_rows_per_s:,.0f} rows/s)  "
          f"speedup {speedup:.1f}x")
    assert speedup >= SPEEDUP_BAR, (
        f"expected >= {SPEEDUP_BAR}x rows/s, measured {speedup:.2f}x "
        f"(python {python_s:.3f}s / sqlite {sqlite_s:.3f}s)"
    )


# ----------------------------------------------------------------------
# the equi-join (for the record)
# ----------------------------------------------------------------------


def test_join_query_parity_and_timing():
    """10^6 x 10^3 hash join vs in-engine join, timed (no bar)."""
    database = build_big_database()
    plan = join_plan()
    python = PythonBackend(database)
    sqlite = SQLiteBackend(database)
    expect = python.execute(plan)
    got = sqlite.execute(plan)  # warms the version sync
    assert expect == got
    python_s = _median_seconds(
        lambda: python.execute(plan), repeats=HEAVY_REPEATS
    )
    sqlite_s = _median_seconds(
        lambda: sqlite.execute(plan), repeats=LIGHT_REPEATS
    )
    _record("join_query", {
        "fact_rows": SCAN_ROWS,
        "dim_rows": DIM_ROWS,
        "answer_rows": expect.cardinality,
        "python_median_s": round(python_s, 3),
        "sqlite_median_s": round(sqlite_s, 3),
        "speedup": round(python_s / sqlite_s, 2),
    })
    print(f"\njoin: {expect.cardinality} rows; "
          f"python {python_s * 1e3:.0f}ms  "
          f"sqlite {sqlite_s * 1e3:.0f}ms  "
          f"({python_s / sqlite_s:.1f}x)")


# ----------------------------------------------------------------------
# pytest-benchmark entries (for the record)
# ----------------------------------------------------------------------


def test_masked_scan_python(benchmark):
    database = build_big_database()
    plan, mask = scan_plan(), scan_mask()
    compiled = compile_mask(mask)
    python = PythonBackend(database)
    out = benchmark.pedantic(
        lambda: python.execute_masked(plan, mask, compiled,
                                      drop_fully_masked=True),
        rounds=2, iterations=1,
    )
    assert out


def test_masked_scan_sqlite(benchmark):
    database = build_big_database()
    plan, mask = scan_plan(), scan_mask()
    sqlite = SQLiteBackend(database)
    sqlite.execute_masked(plan, mask, drop_fully_masked=True)  # warm
    out = benchmark.pedantic(
        lambda: sqlite.execute_masked(plan, mask,
                                      drop_fully_masked=True),
        rounds=3, iterations=1,
    )
    assert out
