"""Sustained serving throughput: concurrent batch server vs serial.

The acceptance bar for the serving subsystem (PR 6): 64 closed-loop
clients driving a Zipf-hot statement pool through the 8-worker batch
server must sustain at least 3x the QPS of a serial baseline — a
fresh single-threaded engine answering the identical request stream
one ``authorize`` at a time.

The speedup is *not* thread parallelism (the GIL serializes the CPU
work): it is batch formation.  Clients share a small user population,
so concurrent in-flight requests for one user queue together and
drain through ``authorize_batch``, whose plan-key memo runs
evaluation, mask derivation, masking, and permit inference once per
distinct canonical plan per batch.  Under Zipf traffic a batch of 32
collapses onto a handful of distinct plans; the serial baseline pays
full evaluation per request.

Every number — sustained QPS, p50/p95/p99 latency, batching and
admission telemetry — lands in ``BENCH_PR6.json`` at the repository
root so the claimed speedup is machine-checkable alongside the
committed copy.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.calculus.ast import Query
from repro.core.engine import AuthorizationEngine
from repro.serving import (
    AdmissionPolicy,
    AuthorizationServer,
    ServerConfig,
)
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

CLIENTS = 64
WORKERS = 8
OPS_PER_CLIENT = 6
USER_POOL = 2
DISTINCT_QUERIES = 8
QUERY_SKEW = 2.0
SPEEDUP_BAR = 3.0

# The statement pool is drawn from this many deterministically
# generated candidates; a one-off calibration pass keeps the
# DISTINCT_QUERIES most expensive ones under the cap, ordered so the
# Zipf-hottest statement is the heaviest (the classic shape of a
# dashboard workload: the popular statements are the analytics).
CANDIDATES = 40
COST_CAP_MS = 20.0

# Join-heavy queries over a moderately sized instance: per-request
# cost is dominated by answer evaluation (the work the batch memo
# dedups), not by fixed per-request overhead.
SPEC = WorkloadSpec(seed=6, relations=3, views=4, users=USER_POOL,
                    rows_per_relation=96, max_view_relations=3)

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_PR6.json"


def _record(section: str, payload: dict) -> None:
    """Merge ``payload`` under ``section`` in ``BENCH_PR6.json``."""
    results = {}
    if RESULTS_PATH.exists():
        results = json.loads(RESULTS_PATH.read_text())
    results[section] = payload
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")


def _percentile(samples: Sequence[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


#: Candidate indices chosen by the one-off calibration pass.  Cached
#: so every ``build_traffic`` call (serial run, concurrent run, each
#: scaling point) selects the identical pool and therefore produces
#: the identical deterministic request stream.
_SELECTION: Optional[Tuple[int, ...]] = None


def _candidates(
    generator: WorkloadGenerator, workload
) -> List[Query]:
    return [
        generator.query(SPEC, workload.database.schema)
        for _ in range(CANDIDATES)
    ]


def _calibrate() -> Tuple[int, ...]:
    """Measure each candidate once (warm) on a scratch stack and keep
    the ``DISTINCT_QUERIES`` most expensive under ``COST_CAP_MS``,
    heaviest first.  Only the *selection* uses wall time; the streams
    built from it are pure functions of the seed."""
    global _SELECTION
    if _SELECTION is not None:
        return _SELECTION
    generator = WorkloadGenerator(SPEC.seed)
    workload = generator.workload(SPEC)
    candidates = _candidates(generator, workload)
    engine = AuthorizationEngine(workload.database, workload.catalog)
    user = workload.users[0]
    costs = []
    for index, query in enumerate(candidates):
        engine.authorize(user, query)  # warm plan + derivation
        begin = time.perf_counter()
        engine.authorize(user, query)
        costs.append((time.perf_counter() - begin, index))
    eligible = [
        (cost, index) for cost, index in costs
        if cost * 1e3 <= COST_CAP_MS
    ]
    eligible.sort(reverse=True)
    if len(eligible) < DISTINCT_QUERIES:  # pragma: no cover
        eligible = sorted(costs)[:DISTINCT_QUERIES]
    _SELECTION = tuple(
        index for _, index in eligible[:DISTINCT_QUERIES]
    )
    return _SELECTION


def build_traffic() -> Tuple[
    WorkloadGenerator, List[List[Tuple[str, Query]]]
]:
    """Per-client (user, query) streams over a shared Zipf-hot pool.

    Clients share ``USER_POOL`` users, so concurrent requests batch
    per user.  The hottest statements are the heaviest (see
    ``_calibrate``), so a drained batch dedups real evaluation work,
    not just parsing.  Grants never change during the run, so every
    request's answer is interleaving-independent and the serial
    replay of the same stream is an exact oracle.
    """
    selection = _calibrate()
    generator = WorkloadGenerator(SPEC.seed)
    workload = generator.workload(SPEC)
    candidates = _candidates(generator, workload)
    pool = [candidates[index] for index in selection]
    weights = [
        1.0 / (rank + 1) ** QUERY_SKEW
        for rank in range(DISTINCT_QUERIES)
    ]
    streams: List[List[Tuple[str, Query]]] = []
    for client in range(CLIENTS):
        user = workload.users[client % len(workload.users)]
        picks = generator.rng.choices(
            range(DISTINCT_QUERIES), weights=weights,
            k=OPS_PER_CLIENT,
        )
        streams.append([(user, pool[i]) for i in picks])
    return workload, streams


def _distinct(
    streams: List[List[Tuple[str, Query]]]
) -> List[Query]:
    """The distinct statements of a stream set, for warmup."""
    seen: Dict[int, Query] = {}
    for stream in streams:
        for _, query in stream:
            seen.setdefault(id(query), query)
    return list(seen.values())


def run_concurrent(
    workload, streams, workers: int
) -> Tuple[float, List[float], AuthorizationServer]:
    """Closed-loop clients against the batch server; returns wall
    seconds, per-request latencies, and the (closed) server."""
    # A short linger lets each closed-loop resubmission wave coalesce
    # into one large batch instead of draining on first arrival.
    # Auditing is off because the serial baseline keeps no audit trail
    # either: the comparison isolates authorization work.  Admission
    # thresholds sit far above the 64-client backlog so the bench
    # measures full-fidelity serving, never a shed rung.
    server = AuthorizationServer(
        ServerConfig(workers=workers, max_batch=32,
                     batch_linger_ms=10.0, audit_capacity=0,
                     admission=AdmissionPolicy((256, 512, 768, 1024)))
    )
    server.add_tenant("bench", workload.database, workload.catalog)
    # Warm the plan memo so the timed region measures serving, not
    # first-touch parsing (the serial baseline gets the same warmup).
    engine = server.tenants.get("bench").engine
    for query in _distinct(streams):
        engine.prepare(query)

    latencies_per_client: List[List[float]] = [
        [] for _ in range(len(streams))
    ]

    def client(index: int) -> None:
        mine = latencies_per_client[index]
        for user, query in streams[index]:
            start = time.perf_counter()
            answer = server.submit("bench", user, query).result()
            mine.append(time.perf_counter() - start)
            assert answer.user == user

    threads = [
        threading.Thread(target=client, args=(index,), daemon=True)
        for index in range(len(streams))
    ]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - begin
    server.close()
    latencies = [
        sample for batch in latencies_per_client for sample in batch
    ]
    return wall, latencies, server


def run_serial(workload, streams) -> Tuple[float, Dict[str, object]]:
    """The baseline: the identical request stream, one ``authorize``
    at a time through a fresh single-threaded engine (its own
    derivation cache on — standard single-caller configuration)."""
    engine = AuthorizationEngine(workload.database, workload.catalog)
    for query in _distinct(streams):
        engine.prepare(query)
    flat = [pair for stream in streams for pair in stream]
    begin = time.perf_counter()
    for user, query in flat:
        engine.authorize(user, query)
    wall = time.perf_counter() - begin
    return wall, {"requests": len(flat)}


def test_sustained_qps_beats_serial_by_3x():
    workload, streams = build_traffic()
    total = sum(len(stream) for stream in streams)

    serial_wall, serial_info = run_serial(workload, streams)
    serial_qps = total / serial_wall

    # A fresh, structurally identical stack for the concurrent run so
    # neither side inherits the other's warm caches.
    workload2, streams2 = build_traffic()
    wall, latencies, server = run_concurrent(
        workload2, streams2, WORKERS
    )
    qps = total / wall
    speedup = qps / serial_qps
    telemetry = server.telemetry()

    p50 = _percentile(latencies, 0.50) * 1e3
    p95 = _percentile(latencies, 0.95) * 1e3
    p99 = _percentile(latencies, 0.99) * 1e3
    stats = telemetry.cache_stats["bench"]
    _record("serving_throughput", {
        "clients": CLIENTS,
        "workers": WORKERS,
        "user_pool": USER_POOL,
        "distinct_queries": DISTINCT_QUERIES,
        "query_skew": QUERY_SKEW,
        "requests": total,
        "serial_wall_s": round(serial_wall, 3),
        "serial_qps": round(serial_qps, 1),
        "concurrent_wall_s": round(wall, 3),
        "concurrent_qps": round(qps, 1),
        "speedup": round(speedup, 2),
        "speedup_bar": SPEEDUP_BAR,
        "p50_ms": round(p50, 2),
        "p95_ms": round(p95, 2),
        "p99_ms": round(p99, 2),
        "batches": telemetry.batches,
        "mean_batch": round(telemetry.mean_batch, 2),
        "largest_batch": telemetry.largest_batch,
        "cache_hit_rate": round(stats.hit_rate, 3),
        "max_backlog": telemetry.admission.max_backlog,
        "hard_sheds": telemetry.admission.hard_sheds,
    })
    print(f"\nserving: serial {serial_qps:.0f} qps, "
          f"{WORKERS} workers {qps:.0f} qps ({speedup:.1f}x), "
          f"p50 {p50:.1f}ms p95 {p95:.1f}ms p99 {p99:.1f}ms, "
          f"mean batch {telemetry.mean_batch:.1f} "
          f"(largest {telemetry.largest_batch})")
    assert telemetry.served == total
    assert telemetry.admission.hard_sheds == 0, (
        "closed-loop bench should never hit the hard limit"
    )
    assert speedup >= SPEEDUP_BAR, (
        f"expected >= {SPEEDUP_BAR}x serial throughput at {WORKERS} "
        f"workers, measured {speedup:.2f}x "
        f"({qps:.0f} vs {serial_qps:.0f} qps)"
    )


def test_scaling_across_worker_counts():
    """For the record: QPS at 1, 2, and 8 workers (no bar — batch
    formation, not worker count, carries the speedup)."""
    scaling = {}
    for workers in (1, 2, 8):
        workload, streams = build_traffic()
        total = sum(len(stream) for stream in streams)
        wall, _, server = run_concurrent(workload, streams, workers)
        telemetry = server.telemetry()
        scaling[str(workers)] = {
            "qps": round(total / wall, 1),
            "mean_batch": round(telemetry.mean_batch, 2),
        }
    _record("serving_scaling", scaling)
    print(f"\nscaling: " + "  ".join(
        f"{workers}w={entry['qps']:.0f}qps"
        for workers, entry in scaling.items()
    ))
