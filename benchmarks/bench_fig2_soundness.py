"""E2 — Figure 2: the soundness oracle's throughput.

Benchmarks one full non-interference check (materialize all permitted
views on two instances, authorize on both, compare deliveries) and the
view-materialization primitive, asserting zero violations throughout.
"""

from repro.baselines.oracle import check_non_interference, materialize_view
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.paperdb import (
    EXAMPLE_1_QUERY,
    build_paper_catalog,
    build_paper_database,
)


def test_non_interference_check(benchmark):
    generator = WorkloadGenerator(7)
    spec = WorkloadSpec(seed=7)
    workload = generator.workload(spec)
    query = generator.query(spec, workload.database.schema)
    mutated = generator.mutate(spec, workload.database)
    user = workload.users[0]

    def check():
        return check_non_interference(
            workload.catalog, user, query, workload.database, mutated
        )

    ok, _message = benchmark(check)
    assert ok


def test_paper_db_non_interference(benchmark):
    database = build_paper_database()
    catalog = build_paper_catalog(database)
    other = build_paper_database()
    other.load("PROJECT", [
        ("bq-45", "Acme", 300_000),
        ("sv-72", "Apex", 450_000),
        ("vg-13", "Summit", 42),  # invisible to Brown
    ])

    def check():
        return check_non_interference(
            catalog, "Brown", EXAMPLE_1_QUERY, database, other
        )

    ok, _message = benchmark(check)
    assert ok


def test_view_materialization(benchmark):
    database = build_paper_database()
    catalog = build_paper_catalog(database)
    relation = benchmark(materialize_view, catalog, "ELP", database)
    assert relation.cardinality == 4
