"""E10 — coverage comparison under equal permissions.

Benchmarks the per-query decision of each model on a shared workload
and asserts the paper's shape: Motro >= INGRES >= System R in delivered
cells over the suite.
"""

from repro.baselines.ingres import IngresModel
from repro.baselines.motro import MotroModel
from repro.baselines.system_r import SystemRModel
from repro.core.engine import AuthorizationEngine
from repro.experiments.coverage import (
    _probe_queries,
    translate_to_ingres,
    translate_to_system_r,
)
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec


def _setup():
    generator = WorkloadGenerator(3)
    spec = WorkloadSpec(seed=3, views=4, users=2)
    workload = generator.workload(spec)
    motro = MotroModel(
        AuthorizationEngine(workload.database, workload.catalog)
    )
    ingres = IngresModel(workload.database)
    system_r = SystemRModel(workload.database)
    translate_to_ingres(workload, ingres)
    translate_to_system_r(workload, system_r)
    queries = _probe_queries(workload, generator, spec)
    return workload, motro, ingres, system_r, queries


def _sweep(model, workload, queries):
    total = 0
    for query in queries:
        for user in workload.users:
            total += model.authorize_query(user, query).delivered_cells
    return total


def test_motro_sweep(benchmark):
    workload, motro, ingres, system_r, queries = _setup()
    motro_cells = benchmark(_sweep, motro, workload, queries)
    ingres_cells = _sweep(ingres, workload, queries)
    system_r_cells = _sweep(system_r, workload, queries)
    assert motro_cells >= ingres_cells >= system_r_cells
    assert motro_cells > system_r_cells


def test_ingres_sweep(benchmark):
    workload, _motro, ingres, _system_r, queries = _setup()
    benchmark(_sweep, ingres, workload, queries)


def test_system_r_sweep(benchmark):
    workload, _motro, _ingres, system_r, queries = _setup()
    benchmark(_sweep, system_r, workload, queries)
