"""E7 + E8 — baseline comparison latency.

Benchmarks one decision per model on the Section 1 scenarios and
asserts the limitation table: INGRES denies the widened request,
System R denies the base-relation query, Motro reduces both.
"""

from repro.algebra.database import build_database
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.baselines.ingres import IngresModel
from repro.baselines.interface import Outcome
from repro.baselines.motro import MotroModel
from repro.baselines.system_r import SystemRModel
from repro.calculus.ast import AttrRef, Condition, ConstTerm
from repro.core.engine import AuthorizationEngine
from repro.meta.catalog import PermissionCatalog
from repro.predicates.comparators import Comparator

THREE_COLS = "retrieve (A.A1, A.A2, A.A3)"


def _database():
    a = make_schema(
        "A", [("A1", STRING), ("A2", STRING), ("A3", INTEGER)], key=["A1"]
    )
    return build_database([a], {
        "A": [(f"r{i}", "u" if i % 3 == 0 else f"v{i}", i * 5)
              for i in range(30)],
    })


def _predicate():
    return Condition(AttrRef("A", "A2"), Comparator.NE, ConstTerm("u"))


def test_ingres_decision(benchmark):
    database = _database()
    model = IngresModel(database)
    model.permit("user", "A", ["A1", "A2"], [_predicate()])

    decision = benchmark(model.authorize_query, "user", THREE_COLS)
    assert decision.outcome is Outcome.DENIED  # the asymmetry


def test_system_r_decision(benchmark):
    database = _database()
    model = SystemRModel(database)
    model.create_view("_dba", "view V (A.A1, A.A2) where A.A2 != u")
    model.grant("_dba", "user", "V")

    decision = benchmark(model.authorize_query, "user", THREE_COLS)
    assert decision.outcome is Outcome.DENIED  # views are windows


def test_motro_decision(benchmark):
    database = _database()
    catalog = PermissionCatalog(database.schema)
    catalog.define_view("view P12 (A.A1, A.A2) where A.A2 != u")
    catalog.permit("P12", "user")
    model = MotroModel(AuthorizationEngine(database, catalog))

    decision = benchmark(model.authorize_query, "user", THREE_COLS)
    assert decision.outcome is Outcome.PARTIAL  # reduced, not denied
    assert decision.delivered_cells > 0


def test_system_r_recursive_revoke(benchmark):
    """The Griffiths-Wade revocation algorithm on a grant chain."""
    database = _database()

    def grant_and_revoke():
        model = SystemRModel(database)
        users = [f"u{i}" for i in range(8)]
        model.grant("_dba", users[0], "A", grant_option=True)
        for left, right in zip(users, users[1:]):
            model.grant(left, right, "A", grant_option=True)
        model.revoke("_dba", users[0], "A")
        return model

    model = benchmark(grant_and_revoke)
    assert all(
        "A" not in model.readable_objects(f"u{i}") for i in range(8)
    )
