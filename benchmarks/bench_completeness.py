"""E13 — completeness probing throughput.

Benchmarks the containment checker + engine pipeline that classifies
derivable requests, asserting the measured completeness shape: the
first three request kinds are complete, the Section 6(3) kind is not.
"""

from repro.experiments.completeness import run


def test_completeness_experiment(benchmark):
    result = benchmark(run)
    assert result.passed
