"""E12 — scaling: mask derivation vs catalog size, query width, data.

The paper's cost claim — meta-relations are small, so the meta side is
cheap and independent of the data — expressed as parameterized
benchmarks.  The derive-vs-authorize pair at 10k rows exhibits the
data-independence of the mask path.
"""

import pytest

from repro.algebra.database import build_database
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.core.engine import AuthorizationEngine
from repro.meta.catalog import PermissionCatalog
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec


def _catalog_engine(view_count):
    generator = WorkloadGenerator(5)
    spec = WorkloadSpec(seed=5, relations=4, views=0)
    schema = generator.schema(spec)
    database = generator.instance(spec, schema)
    catalog = PermissionCatalog(schema)
    for i in range(view_count):
        catalog.define_view(generator.view(spec, schema, f"SV{i}"))
        catalog.permit(f"SV{i}", "user")
    query = generator.query(spec, schema)
    return AuthorizationEngine(database, catalog), query


@pytest.mark.parametrize("views", [4, 16, 64])
def test_derive_vs_catalog_size(benchmark, views):
    engine, query = _catalog_engine(views)
    derivation = benchmark(engine.derive, "user", query)
    assert derivation.mask is not None


def _wide_engine():
    generator = WorkloadGenerator(6)
    spec = WorkloadSpec(seed=6, relations=5, views=0)
    schema = generator.schema(spec)
    database = generator.instance(spec, schema)
    catalog = PermissionCatalog(schema)
    for i, relation in enumerate(schema):
        attrs = ", ".join(
            f"{relation.name}.{a.name}" for a in relation.attributes
        )
        catalog.define_view(f"view FULL{i} ({attrs})")
        catalog.permit(f"FULL{i}", "user")
    return AuthorizationEngine(database, catalog), schema


@pytest.mark.parametrize("relations", [1, 2, 3, 4])
def test_derive_vs_query_width(benchmark, relations):
    engine, schema = _wide_engine()
    names = list(schema.names())[:relations]
    query = "retrieve (" + ", ".join(
        f"{name}.{schema.get(name).attribute_names[0]}" for name in names
    ) + ")"
    derivation = benchmark(engine.derive, "user", query)
    assert derivation.mask is not None
    # Every full-relation view covers its key column: full delivery.
    assert derivation.mask.cardinality >= 1


def _big_data_engine(rows):
    project = make_schema(
        "PROJECT",
        [("NUMBER", STRING), ("SPONSOR", STRING), ("BUDGET", INTEGER)],
        key=["NUMBER"],
    )
    data = [
        (f"p{i}", f"sp{i % 7}", (i * 9_973) % 1_000_000)
        for i in range(rows)
    ]
    database = build_database([project], {"PROJECT": data})
    catalog = PermissionCatalog(database.schema)
    catalog.define_view(
        "view BIG (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
        "where PROJECT.BUDGET >= 500,000"
    )
    catalog.permit("BIG", "user")
    return AuthorizationEngine(database, catalog)


# BUDGET must be requested for the capped view's mask to be
# expressible over the answer (the Section 6(3) limitation).
QUERY = ("retrieve (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
         "where PROJECT.BUDGET >= 250,000")


@pytest.mark.parametrize("rows", [100, 10_000])
def test_mask_derivation_is_data_independent(benchmark, rows):
    engine = _big_data_engine(rows)
    derivation = benchmark(engine.derive, "user", QUERY)
    assert derivation.mask is not None and derivation.mask.cardinality == 1


@pytest.mark.parametrize("rows", [100, 10_000])
def test_full_authorize_grows_with_data(benchmark, rows):
    engine = _big_data_engine(rows)
    answer = benchmark(engine.authorize, "user", QUERY)
    assert answer.answer.cardinality > 0
