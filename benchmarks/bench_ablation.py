"""E9 + E11 — refinement ablations: the cost of each refinement.

Benchmarks mask derivation under the full configuration and with each
Section 4.2 refinement disabled, asserting the dominance invariant
(ablations never deliver more) on every round.
"""

import pytest

from repro.config import BASE_MODEL_CONFIG, DEFAULT_CONFIG
from repro.workloads.paperdb import (
    EXAMPLE_1_QUERY,
    EXAMPLE_2_QUERY,
    EXAMPLE_3_QUERY,
    build_paper_engine,
)

PAPER_SUITE = (
    ("Brown", EXAMPLE_1_QUERY),
    ("Klein", EXAMPLE_2_QUERY),
    ("Brown", EXAMPLE_3_QUERY),
)

CONFIGS = {
    "full": DEFAULT_CONFIG,
    "no-padding": DEFAULT_CONFIG.but(product_padding=False),
    "no-four-case": DEFAULT_CONFIG.but(refine_selection=False),
    "no-selfjoin": DEFAULT_CONFIG.but(self_joins=False),
    "base": BASE_MODEL_CONFIG,
}

FULL_MODEL_CELLS = 15  # measured reference for the paper suite


def _suite_cells(engine):
    return sum(
        engine.authorize(user, query).stats().delivered_cells
        for user, query in PAPER_SUITE
    )


@pytest.mark.parametrize("label", sorted(CONFIGS))
def test_paper_suite_under_config(benchmark, label):
    engine = build_paper_engine(CONFIGS[label])
    delivered = benchmark(_suite_cells, engine)
    assert delivered <= FULL_MODEL_CELLS
    if label == "full":
        assert delivered == FULL_MODEL_CELLS
    if label in ("no-four-case", "base"):
        # Without clearing, every Section 5 mask dies at projection.
        assert delivered == 0
