"""The derivation cache on a Zipf-skewed authorize stream.

The acceptance bar for the cache subsystem: on a repetitive workload
(the realistic case — a few hot statements dominate), end-to-end
``authorize`` with the cache on must be at least 5x faster than with
the cache off, while delivering byte-identical answers.  The speedup
test measures both modes directly with ``time.perf_counter`` (the two
engines share one database and one catalog, so the comparison is
apples to apples); the pytest-benchmark entries time each mode for the
record.
"""

from __future__ import annotations

import time

from repro.config import DEFAULT_CONFIG
from repro.core.engine import AuthorizationEngine
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

#: Workload shape: joins and several granted views make the
#: meta-algebra (product + self-join closure + selections) the
#: dominant cost, as in the paper's Section 5 cost argument.
SPEC = WorkloadSpec(
    relations=3,
    views=10,
    users=1,
    rows_per_relation=4,
    max_view_relations=2,
    comparison_probability=0.8,
    seed=7,
)
STREAM_DISTINCT = 8
STREAM_LENGTH = 120
SKEW = 1.2


def _build(cache_size: int):
    generator = WorkloadGenerator(SPEC.seed)
    workload = generator.workload(SPEC)
    stream = generator.zipf_query_stream(
        SPEC, workload.database.schema,
        distinct=STREAM_DISTINCT, length=STREAM_LENGTH, skew=SKEW,
    )
    engine = AuthorizationEngine(
        workload.database,
        workload.catalog,
        DEFAULT_CONFIG.but(derivation_cache_size=cache_size),
    )
    user = workload.users[0]
    for view in workload.views:
        workload.catalog.permit(view.name, user)
    return engine, user, stream


def _drain(engine, user, stream):
    return [engine.authorize(user, query) for query in stream]


def test_cache_speedup_and_transparency():
    """>= 5x end-to-end authorize speedup, identical deliveries."""
    cached_engine, user, stream = _build(cache_size=128)
    uncached_engine, _, _ = _build(cache_size=0)

    # Warm both paths once (parser caches, selfjoin pools) so the
    # measurement compares steady states.
    _drain(cached_engine, user, stream[:1])
    _drain(uncached_engine, user, stream[:1])

    start = time.perf_counter()
    cached_answers = _drain(cached_engine, user, stream)
    cached_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    uncached_answers = _drain(uncached_engine, user, stream)
    uncached_elapsed = time.perf_counter() - start

    # Transparency: byte-identical deliveries and permits either way.
    for hot, cold in zip(cached_answers, uncached_answers):
        assert hot.delivered == cold.delivered
        assert tuple(map(str, hot.permits)) == tuple(map(str, cold.permits))

    stats = cached_engine.stats()
    assert stats.hit_rate >= 0.8, stats.render()
    speedup = uncached_elapsed / cached_elapsed
    print(f"\n{stats.render()}")
    print(f"cache on: {cached_elapsed:.3f}s  cache off: "
          f"{uncached_elapsed:.3f}s  speedup: {speedup:.1f}x")
    assert speedup >= 5.0, (
        f"expected >= 5x, measured {speedup:.2f}x "
        f"(on {cached_elapsed:.3f}s / off {uncached_elapsed:.3f}s)"
    )


def test_batch_shares_plan_work():
    """authorize_batch beats the authorize loop even with cache off."""
    engine, user, stream = _build(cache_size=0)
    texts = [str(query) for query in stream]

    start = time.perf_counter()
    loop = [engine.authorize(user, text) for text in texts]
    loop_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    batch = engine.authorize_batch(user, texts)
    batch_elapsed = time.perf_counter() - start

    assert len(batch) == len(loop)
    for one, many in zip(loop, batch):
        assert one.delivered == many.delivered
    assert batch_elapsed < loop_elapsed, (
        f"batch {batch_elapsed:.3f}s vs loop {loop_elapsed:.3f}s"
    )


def test_authorize_stream_cache_on(benchmark):
    engine, user, stream = _build(cache_size=128)
    _drain(engine, user, stream)  # warm
    answers = benchmark(_drain, engine, user, stream)
    assert len(answers) == STREAM_LENGTH


def test_authorize_stream_cache_off(benchmark):
    engine, user, stream = _build(cache_size=0)
    _drain(engine, user, stream[:1])
    answers = benchmark(_drain, engine, user, stream)
    assert len(answers) == STREAM_LENGTH
