"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one of DESIGN.md's experiments
(EXPERIMENTS.md records the paper-vs-measured outcome) while measuring
the hot path with pytest-benchmark.  Every benchmarked function also
*asserts* the paper's outcome, so a regression in behaviour fails the
benchmark run rather than silently timing the wrong thing.
"""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG
from repro.workloads.paperdb import build_paper_engine


@pytest.fixture
def paper_engine():
    # The derivation cache is disabled so repeated benchmark rounds
    # keep measuring the meta-algebra itself; bench_cache.py measures
    # the cache explicitly with its own engines.
    return build_paper_engine(DEFAULT_CONFIG.but(derivation_cache_size=0))
