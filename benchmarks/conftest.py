"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one of DESIGN.md's experiments
(EXPERIMENTS.md records the paper-vs-measured outcome) while measuring
the hot path with pytest-benchmark.  Every benchmarked function also
*asserts* the paper's outcome, so a regression in behaviour fails the
benchmark run rather than silently timing the wrong thing.

The ``paper_engine`` fixture is parameterizable over the hot-path
switches (``docs/PERFORMANCE.md``) for A/B runs::

    pytest benchmarks/ --engine-mode hot --engine-mode reference

runs every ``paper_engine`` benchmark twice — once with the compiled
mask kernels and the streaming product (the default), once with both
replaced by the interpreted/materializing reference paths — so a
speedup claim can be read straight off one report.  Because the two
paths are differentially identical, every behavioural assertion holds
in every mode.

The benchmark tree is also inside the static-analysis perimeter
(``docs/STATIC_ANALYSIS.md``): CI's ``static-analysis`` job runs
``ruff check`` over ``benchmarks/`` and soundlint's SL006
authorize-bypass rule over ``tests/`` and ``benchmarks/`` — a
harness that reads relations around the mask carries a justified
``# soundlint: disable-file=SL006 -- ...`` suppression or fails the
gate.  The fast-path pairs measured here (``compile_mask`` vs
``Mask.apply``, ``meta_product_streaming`` vs ``meta_product``) are
exactly the oracle registrations soundlint's SL005 rule keeps honest
— delete a differential test and the lint gate, not just this
harness, fails.  Fixtures here stay annotation-light because
``benchmarks/`` is outside ``src/repro`` and therefore outside the
SL007/mypy strict scope; anything promoted into the package must
arrive fully annotated.
"""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG
from repro.workloads.paperdb import build_paper_engine

#: Engine modes selectable with ``--engine-mode`` (repeatable).
ENGINE_MODES = {
    # Hot path: compiled mask kernels + streaming pruned product.
    "hot": {},
    # Interpreted Mask.apply, streaming product.
    "interpreted-mask": {"compiled_masks": False},
    # Compiled masks, materialize-then-prune product.
    "materializing-product": {"streaming_product": False},
    # Both reference paths (the pre-optimization engine).
    "reference": {"compiled_masks": False, "streaming_product": False},
}


def pytest_addoption(parser):
    parser.addoption(
        "--engine-mode",
        action="append",
        choices=sorted(ENGINE_MODES),
        default=None,
        help="paper_engine configuration(s) to benchmark; "
             "repeat for A/B runs (default: hot)",
    )


def pytest_generate_tests(metafunc):
    if "paper_engine" in metafunc.fixturenames:
        modes = metafunc.config.getoption("--engine-mode") or ["hot"]
        metafunc.parametrize("paper_engine", modes, indirect=True)


@pytest.fixture
def paper_engine(request):
    mode = getattr(request, "param", "hot")
    # The derivation cache is disabled so repeated benchmark rounds
    # keep measuring the meta-algebra itself; bench_cache.py measures
    # the cache explicitly with its own engines.
    return build_paper_engine(
        DEFAULT_CONFIG.but(derivation_cache_size=0, **ENGINE_MODES[mode])
    )
