"""Persistence benchmarks: snapshot and restore round-trips."""

from repro import storage
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.paperdb import build_paper_catalog, build_paper_database


def test_snapshot_paper_database(benchmark):
    database = build_paper_database()
    catalog = build_paper_catalog(database)

    text = benchmark(storage.dumps, database, catalog)
    assert "EMPLOYEE" in text


def test_restore_paper_database(benchmark):
    database = build_paper_database()
    catalog = build_paper_catalog(database)
    text = storage.dumps(database, catalog)

    restored_db, restored_catalog = benchmark(storage.loads, text)
    assert restored_db.total_rows() == database.total_rows()
    assert restored_catalog.view_names() == catalog.view_names()


def test_roundtrip_large_workload(benchmark):
    generator = WorkloadGenerator(77)
    spec = WorkloadSpec(seed=77, relations=5, views=10, users=4,
                        rows_per_relation=200)
    workload = generator.workload(spec)

    def roundtrip():
        text = storage.dumps(workload.database, workload.catalog)
        return storage.loads(text)

    database, catalog = benchmark(roundtrip)
    assert database.total_rows() == workload.database.total_rows()
