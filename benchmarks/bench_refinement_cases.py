"""E6 — the four-case selection analysis.

Benchmarks the classifier on the paper's four probes and the
end-to-end probe queries, asserting the expected case each time.
"""

from repro.experiments.refinement_cases import PROBES, _engine
from repro.predicates.implication import classify
from repro.predicates.intervals import Interval

MU = Interval(lo=300_000, hi=600_000, discrete=True)


def test_classifier_four_probes(benchmark):
    probes = [
        (Interval(lo=lo, hi=hi, discrete=True), expected)
        for _, lo, hi, expected, _clauses in PROBES
    ]

    def run():
        return [classify(MU, lam) for lam, _ in probes]

    cases = benchmark(run)
    assert cases == [expected for _, expected in probes]


def test_end_to_end_probe_queries(benchmark):
    engine = _engine()
    queries = []
    for _, lo, hi, _expected, _clauses in PROBES:
        conditions = []
        if lo is not None:
            conditions.append(f"PROJECT.BUDGET >= {lo:,}")
        if hi is not None:
            conditions.append(f"PROJECT.BUDGET <= {hi:,}")
        queries.append(
            "retrieve (PROJECT.NUMBER, PROJECT.BUDGET) where "
            + " and ".join(conditions)
        )

    def run():
        return [engine.authorize("analyst", q) for q in queries]

    answers = benchmark(run)
    # conjoin, retain, clear deliver; discard does not.
    delivered = [a.stats().delivered_cells > 0 for a in answers]
    assert delivered == [True, True, True, False]
