"""E1 — Figure 1: building the extended database.

Benchmarks the view-encoding path (parse, normalize, encode to
meta-tuples, grant) and regenerates Figure 1's tables, asserting their
contents each iteration.
"""

from repro.experiments.fig1 import EXPECTED_COMPARISON, EXPECTED_META, run
from repro.experiments.tables import meta_tuple_cells
from repro.meta.catalog import PermissionCatalog
from repro.workloads.paperdb import (
    GRANTS,
    VIEW_STATEMENTS,
    build_paper_database,
)


def build_catalog(schema):
    catalog = PermissionCatalog(schema)
    for statement in VIEW_STATEMENTS:
        catalog.define_view(statement)
    for user, view in GRANTS:
        catalog.permit(view, user)
    return catalog


def test_encode_figure1_catalog(benchmark):
    database = build_paper_database()

    catalog = benchmark(build_catalog, database.schema)

    for relation, expected in EXPECTED_META.items():
        actual = tuple(
            (view, meta_tuple_cells(meta))
            for view, meta in catalog.meta_relation_rows(relation)
        )
        assert sorted(actual) == sorted(expected)
    assert catalog.comparison_rows() == EXPECTED_COMPARISON


def test_regenerate_figure1_experiment(benchmark):
    result = benchmark(run)
    assert result.passed
