"""Resilience overhead: budgets, the ladder rungs, and faulted paths.

Measures (a) the cost of an unbudgeted derivation vs one carrying an
ample budget — the budget bookkeeping must stay in the noise; (b) the
per-rung derivation cost on a scaled workload — each rung down should
be no more expensive than a direct engine configured the same way; and
(c) the worst case, a budget so tight every rung fails and the ladder
walks its full length.  Every round asserts the soundness invariant:
a degraded delivery is a subset of the full-fidelity delivery.
"""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.engine import AuthorizationEngine
from repro.core.mask import MASKED
from repro.metaalgebra.ladder import EMPTY_LEVEL, rung_config
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.paperdb import (
    EXAMPLE_2_QUERY,
    EXAMPLE_3_QUERY,
    build_paper_engine,
)

#: No derivation cache: every round measures the meta-algebra.
UNCACHED = DEFAULT_CONFIG.but(derivation_cache_size=0)


def visible_cells(answer):
    return {
        (i, j, cell)
        for i, row in enumerate(answer.delivered)
        for j, cell in enumerate(row)
        if cell is not MASKED
    }


def scaled_workload(seed=7):
    generator = WorkloadGenerator(seed)
    spec = WorkloadSpec(seed=seed, relations=4, views=6, users=2,
                        rows_per_relation=12)
    workload = generator.workload(spec)
    query = generator.query(spec, workload.database.schema)
    return workload, query


def test_ample_budget_overhead(benchmark):
    """Budget checks on the hot path must cost ~nothing."""
    engine = build_paper_engine(
        UNCACHED.but(max_mask_rows=100_000, max_selfjoin_pool=100_000,
                     derivation_deadline_ms=60_000.0)
    )
    baseline = build_paper_engine(UNCACHED).authorize(
        "Klein", EXAMPLE_2_QUERY
    )

    answer = benchmark(engine.authorize, "Klein", EXAMPLE_2_QUERY)
    assert answer.degradation_level == 0
    assert visible_cells(answer) == visible_cells(baseline)


@pytest.mark.parametrize("level", range(EMPTY_LEVEL))
def test_rung_cost(benchmark, level):
    """Derivation cost at each ladder rung on a scaled workload."""
    workload, query = scaled_workload()
    engine = AuthorizationEngine(
        workload.database, workload.catalog,
        rung_config(UNCACHED, level),
    )
    full = AuthorizationEngine(
        workload.database, workload.catalog, UNCACHED
    )
    user = workload.users[0]
    baseline = visible_cells(full.authorize(user, query))

    answer = benchmark(engine.authorize, user, query)
    assert visible_cells(answer) <= baseline


def test_full_ladder_walk(benchmark):
    """The worst case: every rung times out, the ladder walks to empty."""
    engine = build_paper_engine(UNCACHED.but(max_mask_rows=1))

    answer = benchmark(engine.authorize, "Brown", EXAMPLE_3_QUERY)
    assert answer.degradation == "empty"
    assert visible_cells(answer) == set()
