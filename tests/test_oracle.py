"""Unit tests for the soundness oracle."""

from repro.baselines.oracle import (
    check_non_interference,
    delivered_view,
    materialize_view,
    materialize_views,
    views_agree,
)
from repro.workloads.paperdb import (
    EXAMPLE_1_QUERY,
    build_paper_catalog,
    build_paper_database,
)


class TestMaterialization:
    def test_psa(self, paper_db, paper_catalog):
        psa = materialize_view(paper_catalog, "PSA", paper_db)
        assert set(psa.rows) == {("bq-45", "Acme", 300_000)}

    def test_elp(self, paper_db, paper_catalog):
        elp = materialize_view(paper_catalog, "ELP", paper_db)
        assert all(row[3] >= 250_000 for row in elp.rows)
        assert elp.cardinality == 4

    def test_materialize_views(self, paper_db, paper_catalog):
        views = materialize_views(
            paper_catalog, ["SAE", "PSA"], paper_db
        )
        assert set(views) == {"SAE", "PSA"}


class TestViewsAgree:
    def test_identical_instances_agree(self, paper_db, paper_catalog):
        other = build_paper_database()
        assert views_agree(paper_catalog, "Brown", paper_db, other)

    def test_invisible_change_agrees(self, paper_catalog, paper_db):
        # Brown's views (SAE, PSA, EST) never expose TITLE values of
        # distinct-title employees beyond equality; changing Summit's
        # budget is invisible to all three.
        other = build_paper_database()
        other.load("PROJECT", [
            ("bq-45", "Acme", 300_000),
            ("sv-72", "Apex", 450_000),
            ("vg-13", "Summit", 99),
        ])
        assert views_agree(paper_catalog, "Brown", paper_db, other)

    def test_visible_change_disagrees(self, paper_catalog, paper_db):
        other = build_paper_database()
        other.load("EMPLOYEE", [
            ("Jones", "manager", 1),
            ("Smith", "technician", 22_000),
            ("Brown", "engineer", 32_000),
        ])
        # SAE exposes salaries.
        assert not views_agree(paper_catalog, "Brown", paper_db, other)


class TestNonInterference:
    def test_agreeing_instances_deliver_equally(self, paper_catalog,
                                                paper_db):
        other = build_paper_database()
        other.load("PROJECT", [
            ("bq-45", "Acme", 300_000),
            ("sv-72", "Apex", 450_000),
            ("vg-13", "Summit", 99),  # invisible to Brown's views
        ])
        ok, message = check_non_interference(
            paper_catalog, "Brown", EXAMPLE_1_QUERY, paper_db, other
        )
        assert ok, message

    def test_vacuous_when_views_disagree(self, paper_catalog, paper_db):
        other = build_paper_database()
        other.load("PROJECT", [("xx-1", "Acme", 1)])
        ok, message = check_non_interference(
            paper_catalog, "Brown", EXAMPLE_1_QUERY, paper_db, other
        )
        assert ok and "vacuous" in message

    def test_delivered_view_drops_fully_masked_rows(self, paper_engine):
        answer = paper_engine.authorize("Brown", EXAMPLE_1_QUERY)
        view = delivered_view(answer)
        assert view == frozenset({("bq-45", "Acme")})

    def test_delivered_view_marks_partial_cells(self, paper_engine):
        from repro.workloads.paperdb import EXAMPLE_2_QUERY

        answer = paper_engine.authorize("Klein", EXAMPLE_2_QUERY)
        assert delivered_view(answer) == frozenset({("Brown", "#")})
