"""Unit tests for the INGRES query-modification baseline."""

import pytest

from repro.baselines.ingres import IngresModel
from repro.baselines.interface import Outcome
from repro.calculus.ast import AttrRef, Condition, ConstTerm
from repro.errors import SchemaError
from repro.predicates.comparators import Comparator


@pytest.fixture
def model(paper_db):
    return IngresModel(paper_db)


def acme_condition():
    return Condition(
        AttrRef("PROJECT", "SPONSOR"), Comparator.EQ, ConstTerm("Acme")
    )


class TestPermissions:
    def test_permit_validates_attributes(self, model):
        with pytest.raises(Exception):
            model.permit("u", "PROJECT", ["NOPE"])

    def test_single_relation_restriction(self, model):
        cross = Condition(
            AttrRef("EMPLOYEE", "NAME"), Comparator.EQ,
            AttrRef("ASSIGNMENT", "E_NAME"),
        )
        with pytest.raises(SchemaError):
            model.permit("u", "EMPLOYEE", ["NAME"], [cross])

    def test_permissions_of(self, model):
        model.permit("u", "PROJECT", ["NUMBER"])
        assert len(model.permissions_of("u")) == 1
        assert model.permissions_of("stranger") == ()


class TestQueryModification:
    def test_within_permissions_full(self, model):
        model.permit("u", "PROJECT", ["NUMBER", "SPONSOR", "BUDGET"])
        decision = model.authorize_query(
            "u", "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)"
        )
        assert decision.outcome is Outcome.FULL
        assert len(decision.delivered) == 3

    def test_qualification_conjoined(self, model):
        model.permit("u", "PROJECT", ["NUMBER", "SPONSOR", "BUDGET"],
                     [acme_condition()])
        decision = model.authorize_query(
            "u", "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)"
        )
        assert decision.outcome is Outcome.PARTIAL
        assert decision.delivered == (("bq-45", "Acme"),)

    def test_uncovered_attributes_deny(self, model):
        model.permit("u", "PROJECT", ["NUMBER", "SPONSOR"])
        decision = model.authorize_query(
            "u",
            "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET >= 100",
        )
        # BUDGET is addressed by the qualification but not permitted.
        assert decision.outcome is Outcome.DENIED

    def test_unpermitted_relation_denies_whole_query(self, model):
        model.permit("u", "PROJECT", ["NUMBER", "SPONSOR", "BUDGET"])
        decision = model.authorize_query(
            "u",
            "retrieve (PROJECT.NUMBER, EMPLOYEE.NAME)",
        )
        assert decision.outcome is Outcome.DENIED
        assert "EMPLOYEE" in decision.note

    def test_disjunctive_views_union(self, model):
        model.permit("u", "PROJECT", ["NUMBER", "SPONSOR", "BUDGET"],
                     [acme_condition()])
        model.permit(
            "u", "PROJECT", ["NUMBER", "SPONSOR", "BUDGET"],
            [Condition(AttrRef("PROJECT", "SPONSOR"), Comparator.EQ,
                       ConstTerm("Apex"))],
        )
        decision = model.authorize_query(
            "u", "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)"
        )
        # Acme OR Apex qualify; Summit does not.
        assert decision.outcome is Outcome.PARTIAL
        assert set(decision.delivered) == {
            ("bq-45", "Acme"), ("sv-72", "Apex"),
        }

    def test_join_query_with_per_relation_views(self, model):
        model.permit("u", "PROJECT", ["NUMBER", "SPONSOR", "BUDGET"],
                     [acme_condition()])
        model.permit("u", "ASSIGNMENT", ["E_NAME", "P_NO"])
        decision = model.authorize_query(
            "u",
            "retrieve (ASSIGNMENT.E_NAME, PROJECT.SPONSOR) "
            "where ASSIGNMENT.P_NO = PROJECT.NUMBER",
        )
        assert decision.outcome is Outcome.PARTIAL
        assert set(decision.delivered) == {
            ("Jones", "Acme"), ("Smith", "Acme"),
        }

    def test_row_column_asymmetry(self, model):
        """The paper's E7 scenario in unit form."""
        predicate = Condition(
            AttrRef("EMPLOYEE", "TITLE"), Comparator.NE,
            ConstTerm("manager"),
        )
        model.permit("u", "EMPLOYEE", ["NAME", "TITLE"], [predicate])
        reduced = model.authorize_query(
            "u", "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)"
        )
        assert reduced.outcome is Outcome.PARTIAL
        denied = model.authorize_query(
            "u",
            "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)",
        )
        assert denied.outcome is Outcome.DENIED

    def test_delivered_cells_counter(self, model):
        model.permit("u", "PROJECT", ["NUMBER", "SPONSOR", "BUDGET"],
                     [acme_condition()])
        decision = model.authorize_query(
            "u", "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)"
        )
        assert decision.delivered_cells == 2
