"""Unit tests for meta-cells and meta-tuples."""

from repro.meta.cell import MetaCell
from repro.meta.metatuple import (
    MetaTuple,
    blank_tuple,
    canonical_key,
    dedupe,
)
from repro.predicates.comparators import Comparator
from repro.predicates.store import ConstraintStore


def mt(*cells, views=("V",), provenance=()):
    return MetaTuple(
        views=frozenset(views),
        cells=tuple(cells),
        provenance=frozenset(provenance),
    )


class TestMetaCell:
    def test_constructors(self):
        assert MetaCell.blank().is_blank
        assert MetaCell.constant("Acme").const_value == "Acme"
        assert MetaCell.variable("x1").var_name == "x1"

    def test_render_paper_notation(self):
        assert MetaCell.blank(starred=True).render() == "*"
        assert MetaCell.constant("Acme", starred=True).render() == "Acme*"
        assert MetaCell.variable("x1", starred=True).render() == "x1*"
        assert MetaCell.blank().render(".") == "."

    def test_large_numbers_render_with_separators(self):
        assert MetaCell.constant(250_000).render() == "250,000"

    def test_cleared_keeps_star(self):
        cell = MetaCell.variable("x1", starred=True).cleared()
        assert cell.is_blank and cell.starred

    def test_with_star(self):
        assert MetaCell.blank().with_star().starred


class TestMetaTuple:
    def test_variables_in_order(self):
        tuple_ = mt(
            MetaCell.variable("x2"), MetaCell.blank(),
            MetaCell.variable("x1"), MetaCell.variable("x2"),
        )
        assert tuple_.variables() == ("x2", "x1")

    def test_var_positions(self):
        tuple_ = mt(
            MetaCell.variable("x1"), MetaCell.blank(),
            MetaCell.variable("x1"),
        )
        assert tuple_.var_positions("x1") == (0, 2)

    def test_starred_positions(self):
        tuple_ = mt(
            MetaCell.blank(True), MetaCell.blank(), MetaCell.blank(True)
        )
        assert tuple_.starred_positions() == (0, 2)
        assert tuple_.has_stars

    def test_substitute_var_preserves_stars(self):
        tuple_ = mt(
            MetaCell.variable("x1", starred=True),
            MetaCell.variable("x1"),
        )
        pinned = tuple_.substitute_var("x1", MetaCell.constant("v"))
        assert pinned.cells[0].const_value == "v"
        assert pinned.cells[0].starred
        assert not pinned.cells[1].starred

    def test_rename_var(self):
        tuple_ = mt(MetaCell.variable("x1"), MetaCell.variable("x2"))
        renamed = tuple_.rename_var("x2", "x1")
        assert renamed.variables() == ("x1",)

    def test_concat_merges_views_and_provenance(self):
        a = mt(MetaCell.blank(True), views=("A",), provenance=[("A", 0)])
        b = mt(MetaCell.blank(), views=("B",), provenance=[("B", 0)])
        combined = a.concat(b)
        assert combined.views == frozenset({"A", "B"})
        assert combined.provenance == frozenset({("A", 0), ("B", 0)})
        assert combined.arity == 2

    def test_project(self):
        tuple_ = mt(
            MetaCell.blank(True), MetaCell.constant("c"), MetaCell.blank()
        )
        projected = tuple_.project((2, 0))
        assert projected.cells[0].is_blank
        assert projected.cells[1].starred

    def test_blank_tuple(self):
        pad = blank_tuple(3)
        assert pad.is_all_blank and not pad.has_stars
        assert pad.provenance == frozenset()

    def test_view_label_sorted(self):
        tuple_ = mt(MetaCell.blank(), views=("SAE", "EST"))
        assert tuple_.view_label() == "EST, SAE"


class TestCanonicalKey:
    def test_alpha_renaming_invariance(self):
        a = mt(MetaCell.variable("x1"), MetaCell.variable("x1"))
        b = mt(MetaCell.variable("x9"), MetaCell.variable("x9"))
        assert canonical_key(a) == canonical_key(b)

    def test_variable_structure_matters(self):
        a = mt(MetaCell.variable("x1"), MetaCell.variable("x1"))
        b = mt(MetaCell.variable("x1"), MetaCell.variable("x2"))
        assert canonical_key(a) != canonical_key(b)

    def test_star_matters(self):
        a = mt(MetaCell.blank(True))
        b = mt(MetaCell.blank(False))
        assert canonical_key(a) != canonical_key(b)

    def test_store_constraints_matter(self):
        tuple_ = mt(MetaCell.variable("x1"))
        free = ConstraintStore.empty()
        bounded = free.constrain("x1", Comparator.GE, 10)
        assert canonical_key(tuple_, free) != canonical_key(tuple_, bounded)

    def test_store_constraints_alpha_invariant(self):
        a = mt(MetaCell.variable("x1"))
        b = mt(MetaCell.variable("x7"))
        store_a = ConstraintStore.empty().constrain("x1", Comparator.GE, 10)
        store_b = ConstraintStore.empty().constrain("x7", Comparator.GE, 10)
        assert canonical_key(a, store_a) == canonical_key(b, store_b)

    def test_provenance_key_optional(self):
        a = mt(MetaCell.blank(True), provenance=[("V", 0)])
        b = mt(MetaCell.blank(True), provenance=[("V", 1)])
        assert canonical_key(a) == canonical_key(b)
        assert canonical_key(a, include_provenance=True) != \
            canonical_key(b, include_provenance=True)

    def test_dedupe(self):
        store = ConstraintStore.empty()
        a = mt(MetaCell.variable("x1"), MetaCell.variable("x1"))
        b = mt(MetaCell.variable("x2"), MetaCell.variable("x2"))
        c = mt(MetaCell.variable("x1"), MetaCell.variable("x2"))
        kept = dedupe([(a, store), (b, store), (c, store)])
        assert len(kept) == 2
