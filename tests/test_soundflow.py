"""The whole-program flow passes: call graph, SL010 taint, SL011 locks.

Fixture trees mirror the registry's real qualnames
(``repro.backends.base:ExecutionBackend.execute`` and friends) so the
source/sanitizer/sink tables apply to them exactly as they do to the
live tree; the lockset fixtures monkeypatch the guarded-field registry
with fixture entries instead.  The seeded-defect tests at the bottom
pin the acceptance shape: each planted bug produces exactly the
expected finding.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import pytest

from repro.analysis import registry
from repro.analysis.flow import build_graph, lock_edges, taint_for
from repro.analysis.flow.callgraph import ClassInfo, FunctionInfo
from repro.analysis.framework import (
    Context,
    Report,
    collect_files,
    load_source,
    run_paths,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_tree(tmp_path: Path, files: Dict[str, str]) -> Path:
    root = tmp_path / "proj"
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


def lint(root: Path, *paths: str,
         select: Optional[Sequence[str]] = None) -> Report:
    return run_paths([root / p for p in paths], select=select, root=root)


def rules_hit(report: Report) -> List[str]:
    return [v.rule for v in report.violations]


def build_context(root: Path) -> Context:
    sources = []
    for path in collect_files([root / "src"]):
        source, _failure = load_source(path, root)
        if source is not None:
            sources.append(source)
    return Context(root=root, sources=sources)


# ----------------------------------------------------------------------
# shared fixture scaffolding
# ----------------------------------------------------------------------

#: The data-plane scaffolding every SL010 fixture shares: a backend
#: source, a mask sanitizer, and the answer envelope sink, under the
#: registry's real qualnames.
PLANE = {
    "src/repro/__init__.py": "",
    "src/repro/backends/__init__.py": "",
    "src/repro/core/__init__.py": "",
    "src/repro/backends/base.py": """
        class Relation:
            def __init__(self, rows: tuple) -> None:
                self.rows = rows


        class ExecutionBackend:
            def execute(self, plan: str) -> Relation:
                return Relation(())
    """,
    "src/repro/core/mask.py": """
        class Mask:
            def apply(self, relation: object) -> tuple:
                return ()
    """,
    "src/repro/core/answer.py": """
        class AuthorizedAnswer:
            def __init__(self, answer: object = None,
                         delivered: object = None) -> None:
                self.answer = answer
                self.delivered = delivered
    """,
}


def plane_tree(tmp_path: Path, engine: str) -> Path:
    files = dict(PLANE)
    files["src/repro/core/engine.py"] = engine
    return make_tree(tmp_path, files)


# ----------------------------------------------------------------------
# SL010 — mask-escape taint
# ----------------------------------------------------------------------


def test_sl010_flags_direct_escape(tmp_path: Path) -> None:
    root = plane_tree(tmp_path, """
        from repro.backends.base import ExecutionBackend
        from repro.core.answer import AuthorizedAnswer


        class Engine:
            def __init__(self) -> None:
                self.backend = ExecutionBackend()

            def authorize(self, plan: str) -> AuthorizedAnswer:
                raw = self.backend.execute(plan)
                return AuthorizedAnswer(delivered=raw.rows)
    """)
    report = lint(root, "src", select=["SL010"])
    assert rules_hit(report) == ["SL010"]
    message = report.violations[0].message
    assert "AuthorizedAnswer(delivered=...)" in message
    assert "mask application" in message


def test_sl010_accepts_masked_delivery(tmp_path: Path) -> None:
    root = plane_tree(tmp_path, """
        from repro.backends.base import ExecutionBackend
        from repro.core.answer import AuthorizedAnswer
        from repro.core.mask import Mask


        class Engine:
            def __init__(self) -> None:
                self.backend = ExecutionBackend()
                self.mask = Mask()

            def authorize(self, plan: str) -> AuthorizedAnswer:
                raw = self.backend.execute(plan)
                safe = self.mask.apply(raw)
                return AuthorizedAnswer(answer=raw, delivered=safe)
    """)
    assert lint(root, "src", select=["SL010"]).clean


def test_sl010_unchecked_envelope_param_is_allowed(
        tmp_path: Path) -> None:
    # ``answer=`` is the engine's internal pre-mask bookkeeping; only
    # ``delivered=`` is user-visible, so only it is checked.
    root = plane_tree(tmp_path, """
        from repro.backends.base import ExecutionBackend
        from repro.core.answer import AuthorizedAnswer


        class Engine:
            def __init__(self) -> None:
                self.backend = ExecutionBackend()

            def authorize(self, plan: str) -> AuthorizedAnswer:
                raw = self.backend.execute(plan)
                return AuthorizedAnswer(answer=raw, delivered=())
    """)
    assert lint(root, "src", select=["SL010"]).clean


def test_sl010_crosses_function_boundaries(tmp_path: Path) -> None:
    # The escape spans three frames: the source result is returned by
    # one function, forwarded by a second, and sunk by a third.
    root = plane_tree(tmp_path, """
        from repro.backends.base import ExecutionBackend
        from repro.core.answer import AuthorizedAnswer


        class Engine:
            def __init__(self) -> None:
                self.backend = ExecutionBackend()

            def fetch(self, plan: str) -> object:
                return self.backend.execute(plan)

            def wrap(self, rows: object) -> AuthorizedAnswer:
                return AuthorizedAnswer(delivered=rows)

            def authorize(self, plan: str) -> AuthorizedAnswer:
                return self.wrap(self.fetch(plan))
    """)
    report = lint(root, "src", select=["SL010"])
    assert rules_hit(report) == ["SL010"]
    assert "wrap" in report.violations[0].message


def test_sl010_yield_sink(tmp_path: Path) -> None:
    files = dict(PLANE)
    files["src/repro/core/stream.py"] = """
        from typing import Iterator, Tuple

        MaskedChunk = Tuple[tuple, ...]
    """
    files["src/repro/core/engine.py"] = """
        from typing import Iterator

        from repro.backends.base import ExecutionBackend
        from repro.core.mask import Mask
        from repro.core.stream import MaskedChunk


        class Engine:
            def __init__(self) -> None:
                self.backend = ExecutionBackend()
                self.mask = Mask()

            def bad_chunks(self, plan: str) -> Iterator[MaskedChunk]:
                raw = self.backend.execute(plan)
                yield raw.rows

            def good_chunks(self, plan: str) -> Iterator[MaskedChunk]:
                raw = self.backend.execute(plan)
                yield self.mask.apply(raw)
    """
    root = make_tree(tmp_path, files)
    report = lint(root, "src", select=["SL010"])
    assert rules_hit(report) == ["SL010"]
    assert "bad_chunks" in report.violations[0].message
    assert "chunk yield" in report.violations[0].message


def test_sl010_set_result_delivery_sink(tmp_path: Path) -> None:
    root = plane_tree(tmp_path, """
        from repro.backends.base import ExecutionBackend
        from repro.core.mask import Mask


        class Server:
            def __init__(self) -> None:
                self.backend = ExecutionBackend()
                self.mask = Mask()

            def respond_bad(self, future: object, plan: str) -> None:
                future.set_result(self.backend.execute(plan))

            def respond_good(self, future: object, plan: str) -> None:
                raw = self.backend.execute(plan)
                future.set_result(self.mask.apply(raw))
    """)
    report = lint(root, "src", select=["SL010"])
    assert rules_hit(report) == ["SL010"]
    assert "respond_bad" in report.violations[0].message


def test_sl010_taint_survives_repackaging(tmp_path: Path) -> None:
    # tuple()/sorted() and friends repackage rows, they don't mask
    # them; wrapping in a project class doesn't launder either.
    root = plane_tree(tmp_path, """
        from repro.backends.base import ExecutionBackend, Relation
        from repro.core.answer import AuthorizedAnswer


        class Engine:
            def __init__(self) -> None:
                self.backend = ExecutionBackend()

            def authorize(self, plan: str) -> AuthorizedAnswer:
                raw = self.backend.execute(plan)
                rewrapped = Relation(tuple(sorted(raw.rows)))
                return AuthorizedAnswer(delivered=rewrapped)
    """)
    assert rules_hit(lint(root, "src", select=["SL010"])) == ["SL010"]


def test_sl010_suppression_with_justification(tmp_path: Path) -> None:
    root = plane_tree(tmp_path, """
        from repro.backends.base import ExecutionBackend
        from repro.core.answer import AuthorizedAnswer


        class Engine:
            def __init__(self) -> None:
                self.backend = ExecutionBackend()

            def authorize(self, plan: str) -> AuthorizedAnswer:
                raw = self.backend.execute(plan)
                return AuthorizedAnswer(delivered=raw.rows)  # soundlint: disable=SL010 -- test oracle
    """)
    report = lint(root, "src", select=["SL010"])
    assert report.clean
    assert report.suppressed == 1


# ----------------------------------------------------------------------
# SL011 — lockset race detection
# ----------------------------------------------------------------------

COUNTER_OK = """
    import threading


    class Counter:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self._count = 0

        def bump(self) -> None:
            with self._lock:
                self._count += 1

        def read(self) -> int:
            with self._lock:
                return self._count
"""

COUNTER_RACY = """
    import threading


    class Counter:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self._count = 0

        def bump(self) -> None:
            with self._lock:
                self._count += 1

        def read(self) -> int:
            return self._count
"""


def _counter_registry(monkeypatch: pytest.MonkeyPatch) -> None:
    monkeypatch.setattr(registry, "GUARDED_FIELDS", {
        "repro.serving.counter:Counter": registry.GuardedClass(
            lock="_lock", fields=frozenset({"_count"}),
        ),
    })
    monkeypatch.setattr(registry, "LOCK_ORDER", ())


def test_sl011_accepts_guarded_access(
        tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> None:
    _counter_registry(monkeypatch)
    root = make_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/serving/__init__.py": "",
        "src/repro/serving/counter.py": COUNTER_OK,
    })
    assert lint(root, "src", select=["SL011"]).clean


def test_sl011_flags_unguarded_read(
        tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> None:
    _counter_registry(monkeypatch)
    root = make_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/serving/__init__.py": "",
        "src/repro/serving/counter.py": COUNTER_RACY,
    })
    report = lint(root, "src", select=["SL011"])
    assert rules_hit(report) == ["SL011"]
    message = report.violations[0].message
    assert "_count" in message and "read outside" in message


def test_sl011_held_methods(
        tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> None:
    monkeypatch.setattr(registry, "GUARDED_FIELDS", {
        "repro.serving.counter:Counter": registry.GuardedClass(
            lock="_lock", fields=frozenset({"_count"}),
            held_methods=frozenset({"_bump_held"}),
        ),
    })
    monkeypatch.setattr(registry, "LOCK_ORDER", ())
    root = make_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/serving/__init__.py": "",
        "src/repro/serving/counter.py": """
            import threading


            class Counter:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self._count = 0

                def _bump_held(self) -> None:
                    self._count += 1

                def _reset_locked(self) -> None:
                    self._count = 0

                def good(self) -> None:
                    with self._lock:
                        self._bump_held()
                        self._reset_locked()

                def bad(self) -> None:
                    self._bump_held()
        """,
    })
    report = lint(root, "src", select=["SL011"])
    assert rules_hit(report) == ["SL011"]
    message = report.violations[0].message
    assert "_bump_held" in message and "outside" in message


def test_sl011_undeclared_lock_discovery(tmp_path: Path) -> None:
    # No monkeypatching: the live registry has no entry for this
    # fixture class, so the discovery sweep must flag its lock.
    root = make_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/serving/__init__.py": "",
        "src/repro/serving/rogue.py": """
            import threading


            class Rogue:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
        """,
    })
    report = lint(root, "src", select=["SL011"])
    assert rules_hit(report) == ["SL011"]
    assert "undeclared lock" in report.violations[0].message


def test_sl011_lock_outside_patrol_is_ignored(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/core/__init__.py": "",
        "src/repro/core/memo.py": """
            import threading


            class Memo:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
        """,
    })
    assert lint(root, "src", select=["SL011"]).clean


LOCK_PAIR = {
    "src/repro/__init__.py": "",
    "src/repro/serving/__init__.py": "",
    "src/repro/serving/inner.py": """
        import threading


        class Inner:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self._value = 0

            def poke(self) -> None:
                with self._lock:
                    self._value += 1
    """,
    "src/repro/serving/outer.py": """
        import threading

        from repro.serving.inner import Inner


        class Outer:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self._state = 0
                self._inner = Inner()

            def nested(self) -> None:
                with self._lock:
                    self._state += 1
                    self._inner.poke()
    """,
}

_PAIR_FIELDS = {
    "repro.serving.outer:Outer": None,  # filled in below
    "repro.serving.inner:Inner": None,
}


def _pair_registry(monkeypatch: pytest.MonkeyPatch,
                   order: Sequence[Sequence[str]]) -> None:
    monkeypatch.setattr(registry, "GUARDED_FIELDS", {
        "repro.serving.outer:Outer": registry.GuardedClass(
            lock="_lock", fields=frozenset({"_state"}),
        ),
        "repro.serving.inner:Inner": registry.GuardedClass(
            lock="_lock", fields=frozenset({"_value"}),
        ),
    })
    monkeypatch.setattr(
        registry, "LOCK_ORDER",
        tuple((outer, inner) for outer, inner in order),
    )


def test_sl011_undeclared_order_edge(
        tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> None:
    _pair_registry(monkeypatch, order=())
    root = make_tree(tmp_path, dict(LOCK_PAIR))
    report = lint(root, "src", select=["SL011"])
    assert rules_hit(report) == ["SL011"]
    message = report.violations[0].message
    assert "undeclared lock-order edge" in message
    assert "Outer._lock -> " in message


def test_sl011_declared_order_edge_passes(
        tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> None:
    _pair_registry(monkeypatch, order=[(
        "repro.serving.outer:Outer._lock",
        "repro.serving.inner:Inner._lock",
    )])
    root = make_tree(tmp_path, dict(LOCK_PAIR))
    assert lint(root, "src", select=["SL011"]).clean


def test_sl011_order_cycle_is_flagged(
        tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> None:
    # Both directions declared: the combined graph has a cycle even
    # though each edge on its own is "declared".
    _pair_registry(monkeypatch, order=[
        ("repro.serving.outer:Outer._lock",
         "repro.serving.inner:Inner._lock"),
        ("repro.serving.inner:Inner._lock",
         "repro.serving.outer:Outer._lock"),
    ])
    root = make_tree(tmp_path, dict(LOCK_PAIR))
    report = lint(root, "src", select=["SL011"])
    assert rules_hit(report) == ["SL011"]
    assert "cycle" in report.violations[0].message


def test_sl011_init_is_exempt(
        tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> None:
    _counter_registry(monkeypatch)
    root = make_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/serving/__init__.py": "",
        "src/repro/serving/counter.py": """
            import threading


            class Counter:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self._count = 0
        """,
    })
    assert lint(root, "src", select=["SL011"]).clean


# ----------------------------------------------------------------------
# call-graph resolution units
# ----------------------------------------------------------------------


def test_callgraph_resolves_annotated_method_dispatch(
        tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/core/__init__.py": "",
        "src/repro/core/mask.py": """
            class Mask:
                def apply(self, relation: object) -> tuple:
                    return ()
        """,
        "src/repro/core/use.py": """
            from repro.core.mask import Mask


            def run(mask: Mask, relation: object) -> tuple:
                return mask.apply(relation)
        """,
    })
    graph = build_graph(build_context(root))
    edges = set(graph.edges())
    assert ("repro.core.use:run",
            "repro.core.mask:Mask.apply") in edges


def test_callgraph_resolves_constructor_attr_types(
        tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/core/__init__.py": "",
        "src/repro/core/parts.py": """
            class Part:
                def spin(self) -> None:
                    return None
        """,
        "src/repro/core/machine.py": """
            from repro.core.parts import Part


            class Machine:
                def __init__(self) -> None:
                    self.part = Part()

                def go(self) -> None:
                    self.part.spin()
        """,
    })
    graph = build_graph(build_context(root))
    assert ("repro.core.machine:Machine.go",
            "repro.core.parts:Part.spin") in set(graph.edges())


def test_callgraph_resolves_reexports(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/core/__init__.py":
            "from repro.core.mask import Mask\n",
        "src/repro/core/mask.py": """
            class Mask:
                def apply(self, relation: object) -> tuple:
                    return ()
        """,
        "src/repro/core/use.py": """
            from repro.core import Mask


            def run(mask: Mask, relation: object) -> tuple:
                return mask.apply(relation)
        """,
    })
    graph = build_graph(build_context(root))
    resolved = graph.resolve_dotted("repro.core.Mask")
    assert isinstance(resolved, ClassInfo)
    assert resolved.qualname == "repro.core.mask:Mask"
    assert ("repro.core.use:run",
            "repro.core.mask:Mask.apply") in set(graph.edges())


def test_callgraph_inherited_method_lookup(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/backends/__init__.py": "",
        "src/repro/backends/common.py": """
            class _SQLBackend:
                def execute(self, plan: str) -> tuple:
                    return ()
        """,
        "src/repro/backends/sqlite.py": """
            from repro.backends.common import _SQLBackend


            class SQLiteBackend(_SQLBackend):
                pass
        """,
    })
    graph = build_graph(build_context(root))
    cls = graph.classes["repro.backends.sqlite:SQLiteBackend"]
    method = graph.lookup_method(cls, "execute")
    assert isinstance(method, FunctionInfo)
    assert method.qualname == "repro.backends.common:_SQLBackend.execute"


def test_callgraph_lambdas_are_unresolved_not_guessed(
        tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/core/__init__.py": "",
        "src/repro/core/dynamic.py": """
            def run(callback: object) -> object:
                hop = lambda value: value
                first = hop(1)
                second = callback(2)
                return (first, second)
        """,
    })
    context = build_context(root)
    graph = build_graph(context)
    taint_for(context)  # populates the unresolved record
    reasons = {u.reason for u in graph.unresolved
               if u.path.endswith("dynamic.py")}
    assert reasons  # recorded, not silently guessed
    assert ("repro.core.dynamic:run",) not in set(graph.edges())


def test_callgraph_container_annotations_do_not_type_elements(
        tmp_path: Path) -> None:
    # ``List[Mask]`` types the list, not a Mask — resolving .append
    # against Mask would be wrong.
    root = make_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/core/__init__.py": "",
        "src/repro/core/mask.py": """
            from typing import List, Optional


            class Mask:
                def apply(self, relation: object) -> tuple:
                    return ()


            def collect(masks: List[Mask],
                        chosen: Optional[Mask]) -> None:
                masks.append(chosen)
                if chosen is not None:
                    chosen.apply(())
        """,
    })
    graph = build_graph(build_context(root))
    fn = graph.functions["repro.core.mask:collect"]
    types = graph.local_types(fn)
    assert "masks" not in types          # container, not element
    assert types["chosen"].name == "Mask"  # Optional looks through
    assert ("repro.core.mask:collect",
            "repro.core.mask:Mask.apply") in set(graph.edges())


def test_flow_analysis_is_shared_across_rules(tmp_path: Path) -> None:
    # Single-parse sharing: both whole-program rules reuse one graph
    # and one taint fixpoint through the context cache.
    root = make_tree(tmp_path, dict(PLANE))
    context = build_context(root)
    graph = build_graph(context)
    assert build_graph(context) is graph
    analysis = taint_for(context)
    assert taint_for(context) is analysis
    assert analysis.graph is graph


# ----------------------------------------------------------------------
# seeded defects: each produces exactly the expected finding
# ----------------------------------------------------------------------


def test_seeded_unmasked_escape_is_caught(tmp_path: Path) -> None:
    # The seeded defect: a helper returns backend.execute output and
    # the caller delivers it without masking.
    root = plane_tree(tmp_path, """
        from repro.backends.base import ExecutionBackend
        from repro.core.answer import AuthorizedAnswer


        class Engine:
            def __init__(self) -> None:
                self.backend = ExecutionBackend()

            def raw_rows(self, plan: str) -> object:
                return self.backend.execute(plan).rows

            def authorize(self, plan: str) -> AuthorizedAnswer:
                return AuthorizedAnswer(delivered=self.raw_rows(plan))
    """)
    report = lint(root, "src", select=["SL010"])
    assert len(report.violations) == 1
    violation = report.violations[0]
    assert violation.rule == "SL010"
    assert violation.path == "src/repro/core/engine.py"
    assert "authorize" in violation.message


def test_seeded_unguarded_write_is_caught(
        tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> None:
    _counter_registry(monkeypatch)
    root = make_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/serving/__init__.py": "",
        "src/repro/serving/counter.py": """
            import threading


            class Counter:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self) -> None:
                    self._count += 1
        """,
    })
    report = lint(root, "src", select=["SL011"])
    assert len(report.violations) == 1
    violation = report.violations[0]
    assert violation.rule == "SL011"
    assert "written outside" in violation.message


def test_seeded_lock_order_cycle_is_caught(
        tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> None:
    _pair_registry(monkeypatch, order=[
        ("repro.serving.outer:Outer._lock",
         "repro.serving.inner:Inner._lock"),
        ("repro.serving.inner:Inner._lock",
         "repro.serving.outer:Outer._lock"),
    ])
    root = make_tree(tmp_path, dict(LOCK_PAIR))
    report = lint(root, "src", select=["SL011"])
    assert len(report.violations) == 1
    assert "cycle" in report.violations[0].message


# ----------------------------------------------------------------------
# the live tree through the flow passes
# ----------------------------------------------------------------------


def test_live_tree_flow_passes_are_clean() -> None:
    report = run_paths(
        [REPO_ROOT / "src"], select=["SL010", "SL011"], root=REPO_ROOT,
    )
    rendered = "\n".join(v.render() for v in report.violations)
    assert report.clean, f"flow violations in the live tree:\n{rendered}"


def test_live_tree_taint_reaches_the_engine() -> None:
    # The fixpoint is not vacuous on the real tree: the evaluate path
    # is source-tainted and the assembled answer is clean.
    context = build_context(REPO_ROOT)
    analysis = taint_for(context)
    evaluate = analysis.summaries[
        "repro.core.engine:AuthorizationEngine._evaluate"]
    assert "source" in evaluate.returns
    assemble = analysis.summaries[
        "repro.core.engine:AuthorizationEngine._assemble"]
    assert "source" not in assemble.returns


def test_live_tree_lock_order_matches_declaration() -> None:
    context = build_context(REPO_ROOT)
    declared, observed = lock_edges(context)
    assert set(observed) <= set(declared)
    assert (
        "repro.serving.server:AuthorizationServer._work",
        "repro.serving.admission:AdmissionController._lock",
    ) in declared
