"""Differential parity: SQL backends ≡ the PythonBackend oracle.

The SQL backends (``repro.backends.sqlite.SQLiteBackend``, and DuckDB
when its driver is installed) compile plans — and SQL-extractable
masks — into statements for an embedded engine.  They must stay
*sorted-row identical* to ``repro.backends.python.PythonBackend``, the
in-process reference evaluator, on three surfaces:

* ``execute`` — the unmasked answer, as a set of rows;
* ``execute_masked`` — delivered tuples with ``MASKED`` cells, with
  and without a compiled mask, with and without ``drop_fully_masked``,
  including degraded-ladder masks and the ``covers_everything`` fast
  path;
* the whole engine — ``authorize`` through a sqlite-backed engine
  delivers the same multiset of tuples as through the default one.

Soundlint rule SL008 pins each backend to this suite.  Row *order* is
backend-specific by design (Relation equality is set equality), so
every comparison here sorts first.
"""

from __future__ import annotations

import importlib.util
import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backends import make_backend
from repro.backends.python import PythonBackend
from repro.backends.sqlite import SQLiteBackend
from repro.calculus.to_algebra import compile_query
from repro.config import DEFAULT_CONFIG
from repro.core.compiled_mask import compile_mask, sql_predicate_view
from repro.core.engine import AuthorizationEngine
from repro.core.mask import Mask
from repro.metaalgebra.ladder import EMPTY_LEVEL
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

pytestmark = pytest.mark.slow

MAX_EXAMPLES = int(os.environ.get("REPRO_HYPOTHESIS_MAX_EXAMPLES", "20"))

SLOW = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


def make_workload(seed):
    generator = WorkloadGenerator(seed)
    spec = WorkloadSpec(seed=seed, relations=3, views=3, users=2,
                        rows_per_relation=8)
    return generator, spec, generator.workload(spec)


def sorted_rows(rows):
    """Canonical order for cross-backend comparison.

    ``repr`` as the key because delivered rows mix values with the
    (unorderable) ``MASKED`` sentinel.
    """
    return sorted(rows, key=repr)


def oracle_pair(database):
    return (PythonBackend(database), SQLiteBackend(database))


class TestExecuteParity:
    @SLOW
    @given(seeds)
    def test_answers_are_set_identical(self, seed):
        generator, spec, workload = make_workload(seed)
        schema = workload.database.schema
        python, sqlite = oracle_pair(workload.database)
        for _ in range(3):
            plan = compile_query(generator.query(spec, schema), schema)
            assert python.execute(plan) == sqlite.execute(plan), \
                f"seed={seed} plan={plan.describe(schema)}"

    @SLOW
    @given(seeds)
    def test_parity_survives_mutation(self, seed):
        # Version-counter sync: inserting, deleting, and reloading
        # relations must be observed by the SQL backend's store.
        generator, spec, workload = make_workload(seed)
        database = workload.database
        schema = database.schema
        python, sqlite = oracle_pair(database)
        plan = compile_query(generator.query(spec, schema), schema)
        assert python.execute(plan) == sqlite.execute(plan)
        mutated = generator.mutate(spec, database)
        python.load(mutated)
        sqlite.load(mutated)
        plan2 = compile_query(generator.query(spec, schema), schema)
        assert python.execute(plan2) == sqlite.execute(plan2)
        # In-place mutation of the already-loaded database.
        name = next(iter(plan.relation_names()))
        rel_schema = schema.get(name)
        new_row = next(iter(generator.iter_rows(spec, rel_schema, 1)))
        mutated.insert(name, new_row)
        assert python.execute(plan) == sqlite.execute(plan), \
            f"seed={seed} stale after insert into {name}"


class TestMaskedParity:
    @SLOW
    @given(seeds, st.booleans(), st.booleans())
    def test_delivered_rows_agree(self, seed, use_compiled, drop):
        generator, spec, workload = make_workload(seed)
        schema = workload.database.schema
        engine = AuthorizationEngine(workload.database, workload.catalog)
        python, sqlite = oracle_pair(workload.database)
        for _ in range(2):
            query = generator.query(spec, schema)
            plan = compile_query(query, schema)
            for user in workload.users:
                derivation = engine.derive(user, query)
                assert derivation.mask is not None
                mask = Mask.from_table(derivation.mask)
                compiled = compile_mask(mask) if use_compiled else None
                expect = python.execute_masked(
                    plan, mask, compiled, drop_fully_masked=drop
                )
                got = sqlite.execute_masked(
                    plan, mask, compiled, drop_fully_masked=drop
                )
                assert sorted_rows(expect) == sorted_rows(got), (
                    f"seed={seed} user={user} drop={drop} "
                    f"pushdown={sql_predicate_view(mask) is not None} "
                    f"plan={plan.describe(schema)}"
                )

    @SLOW
    @given(seeds, st.integers(min_value=0, max_value=EMPTY_LEVEL))
    def test_degraded_ladder_masks_agree(self, seed, floor):
        # Masks from every degradation rung — including the empty
        # mask — must push down (or fall back) identically.
        generator, spec, workload = make_workload(seed)
        schema = workload.database.schema
        engine = AuthorizationEngine(workload.database, workload.catalog)
        python, sqlite = oracle_pair(workload.database)
        query = generator.query(spec, schema)
        plan = compile_query(query, schema)
        for user in workload.users:
            answer = engine.authorize_degraded(user, query, floor)
            mask = answer.mask
            expect = python.execute_masked(plan, mask)
            got = sqlite.execute_masked(plan, mask)
            assert sorted_rows(expect) == sorted_rows(got), \
                f"seed={seed} floor={floor} user={user}"


class TestEngineParity:
    @SLOW
    @given(seeds)
    def test_authorize_delivers_identically(self, seed):
        generator, spec, workload = make_workload(seed)
        schema = workload.database.schema
        default_engine = AuthorizationEngine(
            workload.database, workload.catalog, DEFAULT_CONFIG
        )
        sqlite_engine = AuthorizationEngine(
            workload.database, workload.catalog,
            DEFAULT_CONFIG.but(backend="sqlite"),
        )
        assert isinstance(default_engine.backend, PythonBackend)
        assert isinstance(sqlite_engine.backend, SQLiteBackend)
        for _ in range(2):
            query = generator.query(spec, schema)
            for user in workload.users:
                via_python = default_engine.authorize(user, query)
                via_sqlite = sqlite_engine.authorize(user, query)
                assert via_python.answer == via_sqlite.answer
                assert sorted_rows(via_python.delivered) \
                    == sorted_rows(via_sqlite.delivered), \
                    f"seed={seed} user={user} query={query}"
                assert [str(p) for p in via_python.permits] \
                    == [str(p) for p in via_sqlite.permits]


@pytest.mark.skipif(
    importlib.util.find_spec("duckdb") is None,
    reason="optional duckdb driver not installed",
)
class TestDuckDBParity:
    """Runs only when the optional duckdb driver is installed.

    DuckDBBackend shares the SQL compiler with SQLiteBackend; this
    repeats the core parity checks against PythonBackend so an
    installed driver is actually exercised (SL008's registered suite
    for ``repro.backends.duckdb.DuckDBBackend``).
    """

    @SLOW
    @given(seeds)
    def test_execute_and_masked_parity(self, seed):
        generator, spec, workload = make_workload(seed)
        schema = workload.database.schema
        engine = AuthorizationEngine(workload.database, workload.catalog)
        python = PythonBackend(workload.database)
        duck = make_backend("duckdb", workload.database)
        query = generator.query(spec, schema)
        plan = compile_query(query, schema)
        assert python.execute(plan) == duck.execute(plan)
        for user in workload.users:
            derivation = engine.derive(user, query)
            assert derivation.mask is not None
            mask = Mask.from_table(derivation.mask)
            assert sorted_rows(python.execute_masked(plan, mask)) \
                == sorted_rows(duck.execute_masked(plan, mask))
