# soundlint: disable-file=SL006 -- differential/property harness: direct evaluation is the oracle the masked path is compared against
"""Property tests for the update-permission extension.

Invariants:

* an authorized insert leaves the inserted row *fully visible* to the
  inserter (you can see what you wrote);
* an authorized delete leaves no fully visible row matching the
  qualification (you deleted everything you could see);
* denied updates leave the database byte-identical.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.calculus.ast import AttrRef, Condition, ConstTerm
from repro.core.engine import AuthorizationEngine
from repro.core.mask import MASKED
from repro.errors import AuthorizationError
from repro.extensions.updates import UpdateAuthorizer
from repro.meta.catalog import PermissionCatalog
from repro.predicates.comparators import Comparator
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


def build(seed):
    generator = WorkloadGenerator(seed)
    spec = WorkloadSpec(seed=seed, relations=2, views=3, users=1,
                        rows_per_relation=6)
    workload = generator.workload(spec)
    engine = AuthorizationEngine(workload.database, workload.catalog)
    return generator, spec, workload, engine


def full_row_query(schema, relation):
    from repro.calculus.ast import Query

    rel = schema.get(relation)
    return Query(tuple(
        AttrRef(relation, name) for name in rel.attribute_names
    ))


@SLOW
@given(seeds)
def test_authorized_insert_is_visible(seed):
    generator, spec, workload, engine = build(seed)
    authorizer = UpdateAuthorizer(engine)
    user = workload.users[0]
    schema = workload.database.schema

    for relation in schema.names():
        rel = schema.get(relation)
        row = tuple(
            generator._random_value(spec, a.domain.name)
            for a in rel.attributes
        )
        decision = authorizer.check_insert(user, relation, row)
        if not decision.allowed:
            continue
        authorizer.insert(user, relation, row)
        answer = engine.authorize(user, full_row_query(schema, relation))
        visible = {
            r for r in answer.delivered
            if all(v is not MASKED for v in r)
        }
        assert row in visible, (seed, relation, row)


@SLOW
@given(seeds)
def test_denied_updates_change_nothing(seed):
    generator, spec, workload, engine = build(seed)
    authorizer = UpdateAuthorizer(engine)
    user = workload.users[0]
    schema = workload.database.schema

    snapshot = {
        name: workload.database.instance(name).rows
        for name in schema.names()
    }
    for relation in schema.names():
        rel = schema.get(relation)
        row = tuple(
            generator._random_value(spec, a.domain.name)
            for a in rel.attributes
        )
        if authorizer.check_insert(user, relation, row).allowed:
            continue
        try:
            authorizer.insert(user, relation, row)
        except AuthorizationError:
            pass
    for name, rows in snapshot.items():
        assert workload.database.instance(name).rows == rows


@SLOW
@given(seeds)
def test_lenient_delete_removes_exactly_the_visible(seed):
    generator, spec, workload, engine = build(seed)
    authorizer = UpdateAuthorizer(engine, strict=False)
    user = workload.users[0]
    schema = workload.database.schema
    relation = schema.names()[0]
    rel = schema.get(relation)

    # Qualify on the key attribute of the first existing row.
    rows = workload.database.instance(relation).rows
    if not rows:
        return
    key_attr = rel.attribute_names[0]
    key_value = rows[0][0]
    conditions = [Condition(
        AttrRef(relation, key_attr), Comparator.EQ, ConstTerm(key_value)
    )]

    answer = engine.authorize(
        user,
        type(full_row_query(schema, relation))(
            full_row_query(schema, relation).target, tuple(conditions)
        ),
    )
    visible = {
        r for r in answer.delivered if all(v is not MASKED for v in r)
    }
    removed = authorizer.delete(user, relation, conditions)
    assert removed == len(visible)
    remaining = set(workload.database.instance(relation).rows)
    assert visible & remaining == set()
