"""Property tests for the canonical plan key.

Stability: the key is invariant under conjunct reordering, comparison
flipping, printer/parser round-trips, and renumbering of same-relation
occurrences.  Injectivity: plans that differ in their projection (or
their conditions) never share a key.  Semantic link: whenever two of
the generated paraphrases share a key, authorizing them delivers the
same answer — the property the derivation cache relies on.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.calculus.ast import AttrRef, Condition, ConstTerm, Query
from repro.calculus.to_algebra import compile_query
from repro.lang.parser import parse_statement
from repro.lang.printer import format_statement
from repro.metaalgebra.canonical import canonical_plan_key
from repro.predicates.comparators import Comparator
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

pytestmark = pytest.mark.slow

MAX_EXAMPLES = int(os.environ.get("REPRO_HYPOTHESIS_MAX_EXAMPLES", "40"))

SLOW = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


def make_query(seed):
    generator = WorkloadGenerator(seed)
    spec = WorkloadSpec(seed=seed, relations=3, views=2,
                        max_view_relations=2)
    schema = generator.schema(spec)
    return generator.query(spec, schema), schema


def key_of(query, schema):
    return canonical_plan_key(compile_query(query, schema), schema)


def flip(condition: Condition) -> Condition:
    return Condition(condition.rhs, condition.op.flipped(), condition.lhs)


class TestStability:
    @SLOW
    @given(seeds, seeds)
    def test_conjunct_reordering_and_flipping(self, seed, shuffle_seed):
        query, schema = make_query(seed)
        rng = random.Random(shuffle_seed)
        conditions = list(query.conditions)
        rng.shuffle(conditions)
        conditions = [
            flip(c) if rng.random() < 0.5 and isinstance(c.lhs, AttrRef)
            else c
            for c in conditions
        ]
        paraphrase = Query(query.target, tuple(conditions))
        assert key_of(query, schema) == key_of(paraphrase, schema), (
            f"seed={seed} shuffle={shuffle_seed}"
        )

    @SLOW
    @given(seeds)
    def test_printer_parser_round_trip(self, seed):
        query, schema = make_query(seed)
        reparsed = parse_statement(format_statement(query))
        assert isinstance(reparsed, Query)
        assert key_of(query, schema) == key_of(reparsed, schema), (
            f"seed={seed}: {format_statement(query)}"
        )

    @SLOW
    @given(seeds)
    def test_occurrence_relabeling(self, seed):
        query, schema = make_query(seed)
        doubled = {
            ref.relation
            for ref in query.attr_refs() if ref.occurrence > 1
        }
        if not doubled:
            return  # no self-join in this example; vacuous

        def swap(ref: AttrRef) -> AttrRef:
            if ref.relation in doubled and ref.occurrence in (1, 2):
                return AttrRef(ref.relation, ref.attribute,
                               3 - ref.occurrence)
            return ref

        def swap_term(term):
            return swap(term) if isinstance(term, AttrRef) else term

        relabeled = Query(
            tuple(swap(t) for t in query.target),
            tuple(
                Condition(swap_term(c.lhs), c.op, swap_term(c.rhs))
                for c in query.conditions
            ),
        )
        assert key_of(query, schema) == key_of(relabeled, schema), (
            f"seed={seed}"
        )


class TestInjectivity:
    @SLOW
    @given(seeds)
    def test_different_projections_differ(self, seed):
        query, schema = make_query(seed)
        if len(query.target) < 2:
            return
        key = key_of(query, schema)
        reversed_targets = Query(tuple(reversed(query.target)),
                                 query.conditions)
        if reversed_targets.target != query.target:
            assert key != key_of(reversed_targets, schema), f"seed={seed}"
        truncated = Query(query.target[:-1], query.conditions)
        assert key != key_of(truncated, schema), f"seed={seed}"

    @SLOW
    @given(seeds)
    def test_different_conditions_differ(self, seed):
        query, schema = make_query(seed)
        ref = query.target[0]
        attribute = next(
            a for a in schema.get(ref.relation).attributes
            if a.name == ref.attribute
        )
        if attribute.domain.name == "string":
            extra = Condition(ref, Comparator.NE,
                              ConstTerm("zz-never-generated"))
        else:
            extra = Condition(ref, Comparator.LE, ConstTerm(10**9))
        widened = Query(query.target, query.conditions + (extra,))
        assert key_of(query, schema) != key_of(widened, schema), (
            f"seed={seed}"
        )


class TestSemanticLink:
    @SLOW
    @given(seeds, seeds)
    def test_shared_key_implies_identical_delivery(self, seed,
                                                   shuffle_seed):
        """Paraphrases that share a key must authorize identically."""
        from repro.core.engine import AuthorizationEngine

        generator = WorkloadGenerator(seed)
        spec = WorkloadSpec(seed=seed, relations=3, views=3, users=1,
                            rows_per_relation=6, max_view_relations=2)
        workload = generator.workload(spec)
        engine = AuthorizationEngine(workload.database, workload.catalog)
        user = workload.users[0]
        query = generator.query(spec, workload.database.schema)

        rng = random.Random(shuffle_seed)
        conditions = list(query.conditions)
        rng.shuffle(conditions)
        paraphrase = Query(query.target, tuple(conditions))

        schema = workload.database.schema
        assert key_of(query, schema) == key_of(paraphrase, schema)
        a = engine.authorize(user, query)
        b = engine.authorize(user, paraphrase)
        assert b.cache_hit or not engine.config.derivation_cache_size
        assert a.delivered == b.delivered
        assert tuple(map(str, a.permits)) == tuple(map(str, b.permits))
