"""Property tests: delivery under injected faults never exceeds the
fault-free delivery.

Random workloads (schemas, instances, views, grants, queries from
:class:`~repro.workloads.generator.WorkloadGenerator`) are authorized
twice — once clean, once with a fault plan installed at a random site
with a random action — and the fault run must (a) never raise and
(b) deliver a subset of the clean run's visible cells.  This is the
fail-closed contract stated as a property rather than as examples.

The example budget is small by default so the tier-1 run stays fast;
the resilience CI job raises ``REPRO_HYPOTHESIS_MAX_EXAMPLES`` (see
``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.core.engine import AuthorizationEngine
from repro.core.mask import MASKED
from repro.testing.faults import Fault, inject
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

pytestmark = pytest.mark.slow

MAX_EXAMPLES = int(os.environ.get("REPRO_HYPOTHESIS_MAX_EXAMPLES", "20"))

SLOW = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)

#: Every instrumented site on the authorize path.
SITES = (
    "plan", "selfjoin", "product", "prune", "selection", "projection",
    "closure", "cache.get", "cache.put", "cache.entry",
    "engine.evaluate", "backend.execute",
)

fault_specs = st.tuples(
    st.sampled_from(SITES),
    st.sampled_from(["raise", "corrupt", "slow"]),
    st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
)


def make_workload(seed):
    generator = WorkloadGenerator(seed)
    spec = WorkloadSpec(seed=seed, relations=3, views=3, users=2,
                        rows_per_relation=6)
    return generator, spec, generator.workload(spec)


def visible_cells(answer):
    return {
        (i, j, cell)
        for i, row in enumerate(answer.delivered)
        for j, cell in enumerate(row)
        if cell is not MASKED
    }


class TestFaultedDelivery:
    @SLOW
    @given(seeds, st.lists(fault_specs, min_size=1, max_size=3))
    def test_faults_only_ever_shrink_delivery(self, seed, fault_list):
        generator, spec, workload = make_workload(seed)
        query = generator.query(spec, workload.database.schema)
        clean_engine = AuthorizationEngine(
            workload.database, workload.catalog, DEFAULT_CONFIG
        )
        faulted_engine = AuthorizationEngine(
            workload.database, workload.catalog, DEFAULT_CONFIG
        )
        plan = {
            site: Fault(action, times=times)
            for site, action, times in fault_list
        }
        for user in workload.users:
            clean = clean_engine.authorize(user, query)
            with inject(plan):
                faulted = faulted_engine.authorize(user, query)
            assert visible_cells(faulted) <= visible_cells(clean), (
                f"seed={seed} user={user} plan={sorted(plan)}: "
                f"fault widened the delivery"
            )

    @SLOW
    @given(seeds, st.sampled_from(SITES))
    def test_persistent_raise_fault_never_escapes(self, seed, site):
        generator, spec, workload = make_workload(seed)
        query = generator.query(spec, workload.database.schema)
        engine = AuthorizationEngine(
            workload.database, workload.catalog, DEFAULT_CONFIG
        )
        with inject({site: "raise"}):
            for user in workload.users:
                answer = engine.authorize(user, query)  # must not raise
                assert answer.user == user

    @SLOW
    @given(seeds)
    def test_slow_faults_under_deadline_shrink_delivery(self, seed):
        generator, spec, workload = make_workload(seed)
        query = generator.query(spec, workload.database.schema)
        clean = AuthorizationEngine(
            workload.database, workload.catalog, DEFAULT_CONFIG
        )
        budgeted = AuthorizationEngine(
            workload.database, workload.catalog,
            DEFAULT_CONFIG.but(derivation_deadline_ms=100.0),
        )
        plan = {"selection": Fault("slow", seconds=5.0)}
        for user in workload.users:
            baseline = clean.authorize(user, query)
            with inject(plan):
                answer = budgeted.authorize(user, query)
            assert visible_cells(answer) <= visible_cells(baseline)

    @SLOW
    @given(seeds)
    def test_transient_faults_recover_to_full_fidelity(self, seed):
        """After a fault plan is exhausted, the next authorize is
        indistinguishable from a fault-free engine's."""
        generator, spec, workload = make_workload(seed)
        query = generator.query(spec, workload.database.schema)
        clean_engine = AuthorizationEngine(
            workload.database, workload.catalog, DEFAULT_CONFIG
        )
        faulted_engine = AuthorizationEngine(
            workload.database, workload.catalog, DEFAULT_CONFIG
        )
        user = workload.users[0]
        clean = clean_engine.authorize(user, query)
        with inject({"plan": Fault("raise", times=1)}):
            faulted_engine.authorize(user, query)
        recovered = faulted_engine.authorize(user, query)
        assert visible_cells(recovered) == visible_cells(clean)
        assert recovered.degradation_level == 0
