"""The ladder's soundness: every rung delivers a subset of the rung above.

This is the acceptance property of the resilience layer, checked on
every bundled scenario: for each user and query, the visible cells at
ladder rung N+1 are a subset of the visible cells at rung N (rungs only
ever disable refinements, and by ablation dominance refinements only
ever widen the mask).  A second block checks the *dynamic* path: an
engine forced down the ladder by a budget delivers a subset of the
unbudgeted engine, whichever rung it lands on.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.core.engine import AuthorizationEngine
from repro.core.mask import MASKED
from repro.metaalgebra.ladder import (
    DEGRADATION_LEVELS,
    EMPTY_LEVEL,
    rung_config,
)
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.paperdb import (
    EXAMPLE_1_QUERY,
    EXAMPLE_2_QUERY,
    EXAMPLE_3_QUERY,
    build_paper_catalog,
    build_paper_database,
)
from repro.workloads.scenarios import corporate_scenario, hospital_scenario

MAX_EXAMPLES = int(os.environ.get("REPRO_HYPOTHESIS_MAX_EXAMPLES", "10"))

SHED = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def paper_case():
    database = build_paper_database()
    catalog = build_paper_catalog(database)
    queries = (EXAMPLE_1_QUERY, EXAMPLE_2_QUERY, EXAMPLE_3_QUERY)
    return database, catalog, ("Brown", "Klein"), queries


def hospital_case():
    scenario = hospital_scenario()
    queries = (
        "retrieve (PATIENT.NAME, PATIENT.WARD)",
        "retrieve (TREATMENT.PID, TREATMENT.DRUG, TREATMENT.COST) "
        "where TREATMENT.COST >= 1000",
        """retrieve (PATIENT.NAME, TREATMENT.DRUG, TREATMENT.COST)
           where PATIENT.PID = TREATMENT.PID""",
        "retrieve (PATIENT.PID, PATIENT.DIAGNOSIS)",
    )
    return (scenario.engine.database, scenario.engine.catalog,
            scenario.users, queries)


def corporate_case():
    scenario = corporate_scenario()
    queries = (
        "retrieve (EMP.ENAME, EMP.DEPT)",
        "retrieve (EMP.ENAME, EMP.SALARY) where EMP.DEPT = eng",
        """retrieve (EMP.ENAME, DEPT.BUDGET)
           where EMP.DEPT = DEPT.DNAME""",
    )
    return (scenario.engine.database, scenario.engine.catalog,
            scenario.users, queries)


CASES = {
    "paper": paper_case,
    "hospital": hospital_case,
    "corporate": corporate_case,
}


def visible_cells(answer):
    return {
        (i, j, cell)
        for i, row in enumerate(answer.delivered)
        for j, cell in enumerate(row)
        if cell is not MASKED
    }


@pytest.mark.parametrize("name", sorted(CASES))
def test_each_rung_delivers_a_subset_of_the_rung_above(name):
    database, catalog, users, queries = CASES[name]()
    engines = [
        AuthorizationEngine(database, catalog,
                            rung_config(DEFAULT_CONFIG, level))
        for level in range(EMPTY_LEVEL)
    ]
    for user in users:
        for query in queries:
            answers = [engine.authorize(user, query)
                       for engine in engines]
            for level in range(1, EMPTY_LEVEL):
                below = visible_cells(answers[level])
                above = visible_cells(answers[level - 1])
                assert below <= above, (
                    f"{name}: rung {DEGRADATION_LEVELS[level]} delivered"
                    f" cells rung {DEGRADATION_LEVELS[level - 1]} did"
                    f" not, for {user}: {query}"
                )


@pytest.mark.parametrize("name", sorted(CASES))
def test_rungs_preserve_answer_shape(name):
    """Degradation shrinks the mask, never the raw answer relation."""
    database, catalog, users, queries = CASES[name]()
    for level in range(EMPTY_LEVEL):
        engine = AuthorizationEngine(database, catalog,
                                     rung_config(DEFAULT_CONFIG, level))
        for user in users:
            for query in queries:
                answer = engine.authorize(user, query)
                assert len(answer.delivered) == answer.answer.cardinality


@pytest.mark.parametrize("name", sorted(CASES))
@pytest.mark.parametrize("cap", [1, 2, 4, 8])
def test_budgeted_engine_delivers_a_subset(name, cap):
    """Wherever the ladder lands, delivery stays inside the baseline."""
    database, catalog, users, queries = CASES[name]()
    baseline = AuthorizationEngine(database, catalog, DEFAULT_CONFIG)
    budgeted = AuthorizationEngine(
        database, catalog, DEFAULT_CONFIG.but(max_mask_rows=cap)
    )
    for user in users:
        for query in queries:
            full = baseline.authorize(user, query)
            capped = budgeted.authorize(user, query)
            assert visible_cells(capped) <= visible_cells(full), (
                f"{name} cap={cap} {user}: {query} delivered beyond"
                f" the unbudgeted baseline at rung {capped.degradation}"
            )
            if capped.degradation_level == 0:
                assert visible_cells(capped) == visible_cells(full)


@pytest.mark.slow
class TestAdmissionShedding:
    """The serving layer's shed path (``authorize_degraded``) obeys
    the ladder: whatever floor admission control imposes, the shed
    answer's visible cells are a subset of the unshed answer's — on
    random workloads, not just the bundled scenarios."""

    @SHED
    @given(st.integers(min_value=0, max_value=2_000))
    def test_shed_answers_stay_inside_the_unshed_mask(self, seed):
        generator = WorkloadGenerator(seed)
        spec = WorkloadSpec(seed=seed, relations=3, views=3, users=2,
                            rows_per_relation=6)
        workload = generator.workload(spec)
        queries = [
            generator.query(spec, workload.database.schema)
            for _ in range(3)
        ]
        unshed = AuthorizationEngine(workload.database,
                                     workload.catalog)
        # Cache off so every floor genuinely re-derives at its rung
        # (a live cached hit would trivially serve the full mask).
        shed_engine = AuthorizationEngine(
            workload.database, workload.catalog,
            DEFAULT_CONFIG.but(derivation_cache_size=0),
        )
        for user in workload.users:
            for query in queries:
                full = visible_cells(unshed.authorize(user, query))
                previous = full
                for floor in range(1, EMPTY_LEVEL + 1):
                    shed = shed_engine.authorize_degraded(
                        user, query, floor,
                        reason="admission shed (property test)",
                    )
                    assert shed.degradation_level >= floor
                    cells = visible_cells(shed)
                    assert cells <= full, (
                        f"seed={seed} floor={floor} {user}: shed "
                        f"answer delivered outside the unshed mask"
                    )
                    assert cells <= previous, (
                        f"seed={seed} floor={floor} {user}: deeper "
                        f"shed delivered more than shallower shed"
                    )
                    previous = cells
                assert previous == set(), (
                    f"seed={seed} {user}: the EMPTY floor delivered"
                )


@pytest.mark.parametrize("name", sorted(CASES))
def test_empty_rung_delivers_nothing(name):
    database, catalog, users, queries = CASES[name]()
    engine = AuthorizationEngine(
        database, catalog,
        DEFAULT_CONFIG.but(max_mask_rows=1, degradation_ladder=False),
    )
    for user in users:
        for query in queries:
            answer = engine.authorize(user, query)
            if answer.degradation_level == EMPTY_LEVEL:
                assert visible_cells(answer) == set()
                assert answer.permits == ()
