"""Differential property tests: streaming product ≡ materialize-then-prune.

``meta_product_streaming`` folds Section 4.1's dangling-reference
pruning and the provenance-aware dedupe into the combination loop.
This suite pins the contract that makes that an *optimization* rather
than a semantics change:

* **row identity** — on generated workloads, with and without padding,
  with and without an excuse predicate, the streamed table equals
  ``prune_dangling(meta_product(...).deduped(provenance), ...)``
  row for row, in order;
* **pipeline identity** — ``derive_mask`` under ``streaming_product``
  on/off produces the same mask (and the same selection trace);
* **budget dominance** — streaming meters only surviving rows, so any
  row budget the materializing product survives, the streaming one
  survives too (never the other way around).
"""

import os

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.calculus.to_algebra import compile_query
from repro.config import DEFAULT_CONFIG
from repro.errors import BudgetExceededError
from repro.metaalgebra.budget import Budget
from repro.metaalgebra.plan import derive_mask
from repro.metaalgebra.product import meta_product, meta_product_streaming
from repro.metaalgebra.prune import prune_dangling
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

MAX_EXAMPLES = int(os.environ.get("REPRO_HYPOTHESIS_MAX_EXAMPLES", "40"))

SLOW = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


def product_inputs(seed):
    """Generated product operands with their catalog context."""
    generator = WorkloadGenerator(seed)
    spec = WorkloadSpec(seed=seed, relations=3, views=4, users=2,
                        rows_per_relation=4)
    workload = generator.workload(spec)
    schema = workload.database.schema
    plan = compile_query(generator.query(spec, schema), schema)
    catalog = workload.catalog
    user = workload.users[0]
    relations = sorted(plan.relation_names())
    admissible = catalog.admissible_views(user, relations)
    store = catalog.store_for(admissible)
    defining = catalog.defining_tuples(admissible)
    columns = plan.product_columns(schema)
    arities = [schema.get(o.relation).arity for o in plan.occurrences]
    operands = [
        list(catalog.tuples_for(o.relation, admissible))
        for o in plan.occurrences
    ]
    return columns, operands, arities, store, defining, plan, workload, user


def reference(columns, operands, arities, store, defining,
              padding, excuse, prune):
    table = meta_product(columns, operands, arities, store,
                         padding=padding)
    if prune:
        table = prune_dangling(table, defining, excuse)
    return table


class TestRowIdentity:
    @SLOW
    @given(seeds, st.booleans())
    def test_streaming_equals_materialize_then_prune(self, seed, padding):
        columns, operands, arities, store, defining, *_ = \
            product_inputs(seed)
        want = reference(columns, operands, arities, store, defining,
                         padding, None, True)
        got = meta_product_streaming(
            columns, operands, arities, store, defining, padding=padding
        )
        assert got.rows == want.rows, f"seed={seed} padding={padding}"

    @SLOW
    @given(seeds, st.booleans())
    def test_prune_disabled_still_dedupes_identically(self, seed, padding):
        columns, operands, arities, store, defining, *_ = \
            product_inputs(seed)
        want = reference(columns, operands, arities, store, defining,
                         padding, None, False)
        got = meta_product_streaming(
            columns, operands, arities, store, defining, padding=padding,
            prune=False,
        )
        assert got.rows == want.rows, f"seed={seed} padding={padding}"

    @SLOW
    @given(seeds, st.integers(min_value=0, max_value=3))
    def test_excused_pruning_agrees(self, seed, salt):
        # A deterministic, meta-dependent excuse: both paths must call
        # it with the same rows and honour the same verdicts.
        columns, operands, arities, store, defining, *_ = \
            product_inputs(seed)

        def excuse(meta, tuple_id):
            return (len(meta.variables()) + len(tuple_id) + salt) % 2 == 0

        want = reference(columns, operands, arities, store, defining,
                         True, excuse, True)
        got = meta_product_streaming(
            columns, operands, arities, store, defining, excuse=excuse
        )
        assert got.rows == want.rows, f"seed={seed} salt={salt}"


class TestPipelineIdentity:
    @SLOW
    @given(seeds)
    def test_derive_mask_agrees_across_modes(self, seed):
        columns, operands, arities, store, defining, plan, workload, \
            user = product_inputs(seed)
        schema = workload.database.schema
        streaming = derive_mask(
            plan, schema, workload.catalog, user,
            DEFAULT_CONFIG.but(streaming_product=True),
        )
        materializing = derive_mask(
            plan, schema, workload.catalog, user,
            DEFAULT_CONFIG.but(streaming_product=False),
        )
        assert streaming.mask.rows == materializing.mask.rows, \
            f"seed={seed}"
        assert [t.rows for _, t in streaming.after_selections] \
            == [t.rows for _, t in materializing.after_selections]
        assert streaming.streamed and not materializing.streamed


class TestBudgetDominance:
    @SLOW
    @given(seeds, st.integers(min_value=1, max_value=6))
    def test_streaming_never_admits_more_rows(self, seed, cap):
        columns, operands, arities, store, defining, *_ = \
            product_inputs(seed)

        def run(fn, **kwargs):
            try:
                return fn(columns, operands, arities, store,
                          budget=Budget(max_rows=cap), **kwargs), None
            except BudgetExceededError as error:
                return None, error

        materialized, mat_error = run(meta_product)
        streamed, stream_error = run(
            lambda c, o, a, s, budget: meta_product_streaming(
                c, o, a, s, defining, budget=budget
            )
        )
        if mat_error is None:
            # The streaming product meters a subset of what the
            # materializing one does: it must fit wherever that fits.
            assert stream_error is None, f"seed={seed} cap={cap}"
        if streamed is not None and materialized is not None:
            pruned = prune_dangling(materialized, defining, None)
            assert len(streamed) == len(pruned) <= len(materialized)
