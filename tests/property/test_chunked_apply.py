# soundlint: disable-file=SL006 -- differential/property harness: direct evaluation is the oracle the masked path is compared against
"""Differential property tests: chunk-streamed paths ≡ materializing.

Two streaming fast paths carry PR 9's bounded-memory delivery, and
both are pinned to materializing oracles by soundlint SL005:

* ``iter_apply_chunked`` — masking chunk by chunk must concatenate to
  exactly what the interpreted ``Mask.apply`` (and the whole-relation
  kernels) produce, for any chunk size including 1 and sizes larger
  than the row count, numpy on or off;
* ``iter_evaluate_optimized`` — the streaming evaluator's chunks must
  concatenate to ``evaluate_optimized``'s rows exactly, including
  order (set semantics dedupe across chunk boundaries).

The composition — stream evaluation into chunked masking — is what
``AuthorizationEngine.authorize_stream`` runs; its end-to-end parity
with ``authorize`` lives in ``tests/test_stream.py``.
"""

from hypothesis import given, strategies as st

from repro.algebra.columnar import have_numpy, iter_chunks
from repro.algebra.optimize import (
    evaluate_optimized,
    iter_evaluate_optimized,
)
from repro.core.compiled_mask import compile_mask, iter_apply_chunked
from repro.lang.parser import parse_query
from repro.calculus.to_algebra import compile_query
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

from tests.property.test_compiled_mask import (
    SLOW,
    masks_and_answers,
    seeds,
)

# 1 (degenerate), small odd (chunk boundaries mid-answer), larger than
# any generated answer, and non-positive (degrades to 1 by contract).
chunk_sizes = st.sampled_from((1, 3, 7, 100, 0))

numpy_flags = (
    st.booleans() if have_numpy() else st.just(False)
)


def concat(chunks):
    return tuple(row for chunk in chunks for row in chunk)


class TestChunkedApplyMatchesOracle:
    @SLOW
    @given(masks_and_answers(), chunk_sizes, st.booleans(), numpy_flags)
    def test_concatenation_is_byte_identical(self, case, size, drop,
                                             numpy):
        mask, answer = case
        compiled = compile_mask(mask)
        streamed = concat(iter_apply_chunked(
            compiled, answer.rows, chunk_size=size,
            drop_fully_masked=drop, use_numpy=numpy,
        ))
        assert streamed == mask.apply(answer, drop_fully_masked=drop)
        assert streamed == compiled.apply(answer,
                                          drop_fully_masked=drop)

    @SLOW
    @given(masks_and_answers(), chunk_sizes)
    def test_chunk_shapes(self, case, size):
        # Without dropping, chunk sizes partition the answer exactly:
        # every chunk is full except possibly the last.
        mask, answer = case
        compiled = compile_mask(mask)
        chunks = list(iter_apply_chunked(
            compiled, answer.rows, chunk_size=size,
        ))
        effective = max(size, 1)
        assert all(len(c) == effective for c in chunks[:-1])
        assert sum(len(c) for c in chunks) == len(answer.rows)


class TestIterChunks:
    @SLOW
    @given(st.lists(st.tuples(st.integers(), st.integers())),
           chunk_sizes)
    def test_regrouping_preserves_rows(self, rows, size):
        assert concat(iter_chunks(rows, size)) == tuple(rows)


class TestStreamingEvaluatorMatchesOracle:
    @SLOW
    @given(seeds, chunk_sizes)
    def test_chunks_concatenate_to_evaluate_optimized(self, seed, size):
        generator = WorkloadGenerator(seed)
        spec = WorkloadSpec(seed=seed, relations=3,
                            rows_per_relation=10)
        db_schema = generator.schema(spec)
        database = generator.instance(spec, db_schema)
        for _ in range(3):
            query = generator.query(spec, db_schema)
            plan = compile_query(query, db_schema)
            streamed = concat(iter_evaluate_optimized(
                plan, database, chunk_size=size,
            ))
            # Exact order: the streaming evaluator is a regrouping of
            # the materializing one, not a reordering.
            assert streamed == evaluate_optimized(plan, database).rows

    def test_paper_example_streams_identically(self, paper_db):
        plan = compile_query(
            parse_query(
                "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)"
            ),
            paper_db.schema,
        )
        for size in (1, 2, 100):
            assert concat(iter_evaluate_optimized(
                plan, paper_db, chunk_size=size,
            )) == evaluate_optimized(plan, paper_db).rows
