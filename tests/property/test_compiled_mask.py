"""Differential property tests: compiled masks ≡ the interpreted oracle.

The compiled matcher (``repro.core.compiled_mask``) must be
*differentially identical* to ``Mask.visible_positions`` /
``Mask.apply`` — same visible cells, same delivered bytes, same
``drop_fully_masked`` behaviour — over masks with blanks, constants,
repeated variables, interval constraints and variable-to-variable
COMPARISON relations.  The interpreted path stays in the tree as the
reference oracle precisely so this suite can say "identical", not
"close".

A second group checks the property end to end: an engine with
``compiled_masks`` on and one with it off deliver byte-identical
answers on generated workloads.
"""

import os

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.relation import Column, Relation
from repro.algebra.types import INTEGER
from repro.config import DEFAULT_CONFIG
from repro.core.compiled_mask import compile_mask
from repro.core.engine import AuthorizationEngine
from repro.core.mask import Mask
from repro.meta.cell import MetaCell
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.table import MaskRow
from repro.predicates.comparators import Comparator
from repro.predicates.store import ConstraintStore
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

MAX_EXAMPLES = int(os.environ.get("REPRO_HYPOTHESIS_MAX_EXAMPLES", "60"))

SLOW = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# A small value universe makes constant hits, repeated-variable
# agreement, and interval boundaries all likely.
VALUES = st.integers(min_value=0, max_value=4)
VARIABLES = ("x1", "x2", "x3")
COMPARATORS = tuple(Comparator)

cells = st.one_of(
    st.booleans().map(MetaCell.blank),
    st.tuples(VALUES, st.booleans()).map(
        lambda cv: MetaCell.constant(cv[0], cv[1])
    ),
    st.tuples(st.sampled_from(VARIABLES), st.booleans()).map(
        lambda nv: MetaCell.variable(nv[0], nv[1])
    ),
)

interval_constraints = st.lists(
    st.tuples(st.sampled_from(VARIABLES), st.sampled_from(COMPARATORS),
              VALUES),
    max_size=3,
)

# Variable equality is handled by unification in the store, never as a
# stored relation — so it is excluded here, as it is in derivations.
RELATORS = tuple(c for c in COMPARATORS if c is not Comparator.EQ)

relation_constraints = st.lists(
    st.tuples(st.sampled_from(VARIABLES), st.sampled_from(RELATORS),
              st.sampled_from(VARIABLES)),
    max_size=2,
)


@st.composite
def stores(draw):
    store = ConstraintStore.empty()
    for var, op, value in draw(interval_constraints):
        store = store.constrain(var, op, value)
    for left, op, right in draw(relation_constraints):
        if left != right:
            store = store.relate(left, op, right)
    return store


@st.composite
def masks_and_answers(draw):
    arity = draw(st.integers(min_value=1, max_value=4))
    columns = tuple(
        Column(f"C{i}", INTEGER) for i in range(arity)
    )
    nrows = draw(st.integers(min_value=0, max_value=5))
    rows = []
    for _ in range(nrows):
        meta = MetaTuple(
            frozenset({"V"}),
            tuple(draw(cells) for _ in range(arity)),
            frozenset(),
        )
        rows.append(MaskRow(meta, draw(stores())))
    mask = Mask(columns, tuple(rows))
    answer_rows = draw(st.lists(
        st.tuples(*[VALUES] * arity), max_size=8,
    ))
    answer = Relation(columns, answer_rows, validate=False)
    return mask, answer


class TestCompiledMatchesInterpreted:
    @SLOW
    @given(masks_and_answers())
    def test_visible_positions_agree(self, case):
        mask, answer = case
        compiled = compile_mask(mask)
        for values in answer.rows:
            assert compiled.visible_positions(values) \
                == mask.visible_positions(values), \
                f"mask={[str(r) for r in mask.rows]} values={values}"

    @SLOW
    @given(masks_and_answers(), st.booleans())
    def test_apply_is_byte_identical(self, case, drop):
        mask, answer = case
        compiled = compile_mask(mask)
        assert compiled.apply(answer, drop_fully_masked=drop) \
            == mask.apply(answer, drop_fully_masked=drop)

    @SLOW
    @given(masks_and_answers())
    def test_compilation_is_pure(self, case):
        # Compiling twice, or applying twice, never changes the result:
        # the matcher holds no per-application state.
        mask, answer = case
        compiled = compile_mask(mask)
        first = compiled.apply(answer)
        assert compiled.apply(answer) == first
        assert compile_mask(mask).apply(answer) == first


seeds = st.integers(min_value=0, max_value=10_000)


class TestEndToEnd:
    @SLOW
    @given(seeds)
    def test_engines_agree_on_workloads(self, seed):
        generator = WorkloadGenerator(seed)
        spec = WorkloadSpec(seed=seed, relations=3, views=3, users=2,
                            rows_per_relation=8)
        workload = generator.workload(spec)
        compiled_engine = AuthorizationEngine(
            workload.database, workload.catalog,
            DEFAULT_CONFIG.but(compiled_masks=True),
        )
        interpreted_engine = AuthorizationEngine(
            workload.database, workload.catalog,
            DEFAULT_CONFIG.but(compiled_masks=False),
        )
        for _ in range(2):
            query = generator.query(spec, workload.database.schema)
            for user in workload.users:
                fast = compiled_engine.authorize(user, query)
                slow = interpreted_engine.authorize(user, query)
                assert fast.delivered == slow.delivered, \
                    f"seed={seed} user={user} query={query}"
                assert [str(p) for p in fast.permits] \
                    == [str(p) for p in slow.permits]
