# soundlint: disable-file=SL006 -- differential/property harness: direct evaluation is the oracle the masked path is compared against
"""Property tests: persistence round-trips on random workloads."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import storage
from repro.core.engine import AuthorizationEngine
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


@SLOW
@given(seeds)
def test_snapshot_roundtrip_preserves_everything(seed):
    generator = WorkloadGenerator(seed)
    spec = WorkloadSpec(seed=seed, relations=3, views=3, users=2,
                        rows_per_relation=6)
    workload = generator.workload(spec)

    database, catalog = storage.loads(
        storage.dumps(workload.database, workload.catalog)
    )

    assert database.relation_names() == workload.database.relation_names()
    for name in database.relation_names():
        assert database.instance(name).same_rows(
            workload.database.instance(name)
        )
    assert catalog.view_names() == workload.catalog.view_names()
    assert catalog.permission_rows() == workload.catalog.permission_rows()


@SLOW
@given(seeds)
def test_reloaded_engine_is_behaviourally_identical(seed):
    generator = WorkloadGenerator(seed)
    spec = WorkloadSpec(seed=seed, relations=3, views=3, users=2,
                        rows_per_relation=6)
    workload = generator.workload(spec)
    database, catalog = storage.loads(
        storage.dumps(workload.database, workload.catalog)
    )

    original = AuthorizationEngine(workload.database, workload.catalog)
    reloaded = AuthorizationEngine(database, catalog)
    for _ in range(3):
        query = generator.query(spec, workload.database.schema)
        for user in workload.users:
            first = original.authorize(user, query)
            second = reloaded.authorize(user, query)
            assert first.delivered == second.delivered, (seed, query)
            assert [str(p) for p in first.permits] == \
                [str(p) for p in second.permits]
