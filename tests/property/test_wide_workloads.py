# soundlint: disable-file=SL006 -- differential/property harness: direct evaluation is the oracle the masked path is compared against
"""Stress property tests on wider workloads (3-relation views).

The default property workloads use views over at most two relations;
these push the generator to three-relation views and bigger schemas,
exercising the n-ary padded product, deeper dangling pruning, and
longer join chains — under the same soundness and agreement oracles.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.evaluate import evaluate_naive
from repro.algebra.optimize import evaluate_optimized
from repro.baselines.oracle import check_non_interference
from repro.calculus.to_algebra import compile_query
from repro.core.engine import AuthorizationEngine
from repro.core.mask import MASKED
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


def wide_workload(seed):
    generator = WorkloadGenerator(seed)
    spec = WorkloadSpec(
        seed=seed, relations=4, views=4, users=2,
        rows_per_relation=6, max_view_relations=3,
        comparison_probability=0.8,
    )
    return generator, spec, generator.workload(spec)


@SLOW
@given(seeds)
def test_non_interference_on_wide_views(seed):
    generator, spec, workload = wide_workload(seed)
    query = generator.query(spec, workload.database.schema)
    mutated = generator.mutate(spec, workload.database)
    for user in workload.users:
        ok, message = check_non_interference(
            workload.catalog, user, query, workload.database, mutated
        )
        assert ok, f"seed={seed} user={user}: {message}"


@SLOW
@given(seeds)
def test_evaluators_agree_on_wide_queries(seed):
    generator, spec, workload = wide_workload(seed)
    schema = workload.database.schema
    for _ in range(2):
        plan = compile_query(generator.query(spec, schema), schema)
        assert evaluate_naive(plan, workload.database).same_rows(
            evaluate_optimized(plan, workload.database)
        )


@SLOW
@given(seeds)
def test_delivery_shape_on_wide_queries(seed):
    generator, spec, workload = wide_workload(seed)
    engine = AuthorizationEngine(workload.database, workload.catalog)
    query = generator.query(spec, workload.database.schema)
    for user in workload.users:
        answer = engine.authorize(user, query)
        for delivered, raw in zip(answer.delivered, answer.answer.rows):
            for masked_cell, raw_cell in zip(delivered, raw):
                assert masked_cell is MASKED or masked_cell == raw_cell
