"""Property tests: the sharded serving cache is the single-lock cache.

Two layers of evidence.  Sequentially, Hypothesis drives random op
interleavings through a :class:`ShardedDerivationCache` and the
reference :class:`DerivationCache` side by side and demands identical
observable behaviour — every lookup result, the live-entry population,
and the statistics.  Concurrently, thread hammers check the properties
that cannot be shown by sequential equivalence: a lookup never returns
an entry stored under a different token (the transparency invariant
that makes revocation safe), statistics account for every lookup with
no lost increments, user invalidation never touches a bystander's
entries, and per-shard LRU keeps total occupancy within the configured
bound.

Payloads are plain tagged strings: the cache stores and serves
derivations opaquely (the engine revalidates types on the way out), so
the properties here are purely about bookkeeping under interleaving.
"""

from __future__ import annotations

import os
import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.cache import DerivationCache
from repro.serving.shards import ShardedDerivationCache

pytestmark = pytest.mark.slow

MAX_EXAMPLES = int(os.environ.get("REPRO_HYPOTHESIS_MAX_EXAMPLES", "30"))

SLOW = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

USERS = ["ann", "bob", "cay"]
KEYS = [f"plan{i}" for i in range(6)]
TOKENS = [(0, 0), (0, 1), (1, 0), (2, 3)]

#: One step: (opcode, user pick, key pick, token pick).
ops = st.lists(
    st.tuples(
        st.sampled_from(["get", "put", "invalidate", "clear"]),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    ),
    min_size=1,
    max_size=40,
)


def stat_triple(cache):
    stats = cache.stats
    return (stats.hits, stats.misses, stats.invalidations,
            stats.evictions)


class TestSequentialEquivalence:
    @SLOW
    @given(ops, st.integers(min_value=1, max_value=7))
    def test_sharded_matches_the_reference_cache(self, steps, shards):
        """Same ops in, same observations out — for any shard count.

        Capacity is large enough that eviction never fires: per-shard
        LRU is the one deliberate behavioural difference, and it gets
        its own bound test below.
        """
        sharded = ShardedDerivationCache(1024, shards=shards)
        reference = DerivationCache(1024)
        for seq, (opcode, a, b, c) in enumerate(steps):
            user = USERS[a % len(USERS)]
            key = KEYS[b % len(KEYS)]
            token = TOKENS[c % len(TOKENS)]
            if opcode == "get":
                assert sharded.get(user, key, token) == \
                    reference.get(user, key, token), f"step {seq}"
            elif opcode == "put":
                value = f"derivation#{seq}"
                sharded.put(user, key, token, value)
                reference.put(user, key, token, value)
            elif opcode == "invalidate":
                sharded.invalidate_user(user)
                reference.invalidate_user(user)
            else:
                sharded.clear()
                reference.clear()
        assert len(sharded) == len(reference)
        assert set(sharded.users()) == set(reference.users())
        assert stat_triple(sharded) == stat_triple(reference)

    @SLOW
    @given(ops)
    def test_compiled_attachments_match_too(self, steps):
        sharded = ShardedDerivationCache(1024, shards=3)
        reference = DerivationCache(1024)
        for seq, (opcode, a, b, c) in enumerate(steps):
            user = USERS[a % len(USERS)]
            key = KEYS[b % len(KEYS)]
            token = TOKENS[c % len(TOKENS)]
            if opcode == "get":
                assert sharded.get_compiled(user, key, token) == \
                    reference.get_compiled(user, key, token), \
                    f"step {seq}"
            elif opcode == "put":
                value = f"derivation#{seq}"
                sharded.put(user, key, token, value)
                reference.put(user, key, token, value)
                sharded.put_compiled(user, key, token, f"kernel#{seq}")
                reference.put_compiled(user, key, token,
                                       f"kernel#{seq}")
            elif opcode == "invalidate":
                sharded.invalidate_user(user)
                reference.invalidate_user(user)
            else:
                sharded.clear()
                reference.clear()


class TestConcurrentHammer:
    def test_lookups_never_cross_token_generations(self):
        """The transparency invariant under real interleavings: a get
        with token T only ever returns a value stored under exactly T
        — so a revoked user's old derivations are unservable the
        instant the catalog bumps their token, no matter how many
        threads are racing the bump."""
        cache = ShardedDerivationCache(256, shards=4)
        current = {"version": 0}
        violations = []
        stop = threading.Event()

        def hammer(user):
            while not stop.is_set():
                version = current["version"]
                token = (0, version)
                for key in KEYS:
                    cache.put(user, key, token, f"{user}@{version}")
                probe_version = current["version"]
                probe = (0, probe_version)
                for key in KEYS:
                    value = cache.get(user, key, probe)
                    if value is not None and \
                            value != f"{user}@{probe_version}":
                        violations.append((user, value, probe))

        def revoker():
            for _ in range(200):
                current["version"] += 1

        threads = [
            threading.Thread(target=hammer, args=(user,), daemon=True)
            for user in USERS for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        bumper = threading.Thread(target=revoker, daemon=True)
        bumper.start()
        bumper.join()
        stop.set()
        for thread in threads:
            thread.join()
        assert violations == []

    def test_statistics_lose_no_increments(self):
        """hits + misses must equal the exact number of lookups even
        when every counter is contended — a lost increment means the
        stats lock is broken."""
        cache = ShardedDerivationCache(256, shards=4)
        token = (0, 0)
        lookups_per_thread = 500
        threads = 6

        def worker(index):
            user = USERS[index % len(USERS)]
            for i in range(lookups_per_thread):
                key = KEYS[i % len(KEYS)]
                if i % 3 == 0:
                    cache.put(user, key, token, f"{user}/{key}")
                cache.get(user, key, token)

        pool = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        stats = cache.stats
        assert stats.lookups == threads * lookups_per_thread
        assert stats.evictions == 0
        assert stats.invalidations == 0

    def test_invalidation_never_touches_bystanders(self):
        """Concurrent invalidate_user('ann') storms must leave bob's
        live entries exactly as stored."""
        cache = ShardedDerivationCache(256, shards=4)
        token = (0, 0)
        stop = threading.Event()

        def ann_writer():
            while not stop.is_set():
                for key in KEYS:
                    cache.put("ann", key, token, f"ann/{key}")

        def invalidator():
            for _ in range(300):
                cache.invalidate_user("ann")

        for key in KEYS:
            cache.put("bob", key, token, f"bob/{key}")

        writer = threading.Thread(target=ann_writer, daemon=True)
        storm = threading.Thread(target=invalidator, daemon=True)
        writer.start()
        storm.start()
        storm.join()
        stop.set()
        writer.join()
        for key in KEYS:
            assert cache.get("bob", key, token) == f"bob/{key}"


class TestEvictionBound:
    @SLOW
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=120),
    )
    def test_occupancy_never_exceeds_the_rounded_capacity(
            self, capacity, shards, puts):
        """Per-shard LRU bounds total occupancy by
        ``shards * ceil(capacity / shards)`` — within ``shards - 1``
        slots of the configured capacity, never unbounded."""
        cache = ShardedDerivationCache(capacity, shards=shards)
        token = (0, 0)
        for i in range(puts):
            cache.put("ann", f"plan{i}", token, f"d{i}")
        per_shard = -(-capacity // shards)
        assert len(cache) <= shards * per_shard
        assert len(cache) <= min(puts, capacity + shards - 1)
        assert cache.stats.evictions == puts - len(cache)

    def test_disabled_cache_stores_nothing(self):
        cache = ShardedDerivationCache(0, shards=4)
        assert not cache.enabled
        cache.put("ann", "plan0", (0, 0), "d")
        assert cache.get("ann", "plan0", (0, 0)) is None
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            ShardedDerivationCache(16, shards=0)
