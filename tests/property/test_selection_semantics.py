"""Property test: meta-selection preserves subview semantics over the
answer.

For a meta-tuple m (all cells starred, so every Definition 2 outcome is
in play) with predicate mu, and a query predicate lambda applied both
to the data (producing the answer A = sigma_lambda(R)) and to the
meta-tuple (producing m'), the delivered content must be exactly the
mu-subview of A:

    materialize(m', A)  ==  materialize(m, A)

— whichever of the four cases fired (clear, retain, conjoin, discard as
the empty mask).  This is the operator-level statement of the Theorem
under the refinement, checked against brute-force materialization on
random relations.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.expression import AtomicCondition, Col, Const
from repro.algebra.relation import Column, Relation
from repro.algebra.types import INTEGER, STRING
from repro.config import BASE_MODEL_CONFIG, DEFAULT_CONFIG
from repro.core.mask import materialize_meta_tuple
from repro.meta.cell import MetaCell
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.selection import meta_select
from repro.metaalgebra.table import MaskRow, MaskTable
from repro.predicates.comparators import Comparator
from repro.predicates.store import ConstraintStore

SLOW = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

COLUMNS = (
    Column("S", STRING),
    Column("N", INTEGER),
    Column("M", INTEGER),
)

seeds = st.integers(min_value=0, max_value=100_000)


def random_relation(rng):
    rows = [
        (f"s{rng.randrange(3)}", rng.randrange(8), rng.randrange(8))
        for _ in range(12)
    ]
    return Relation(COLUMNS, rows, validate=False)


def random_meta(rng):
    """An all-starred meta-tuple with a random mix of cell kinds."""
    store = ConstraintStore.empty()
    cells = []
    # String column: blank or constant.
    if rng.random() < 0.4:
        cells.append(MetaCell.constant(f"s{rng.randrange(3)}", True))
    else:
        cells.append(MetaCell.blank(True))
    # Two int columns: blank, constant, a constrained variable, or a
    # shared variable across both.
    shared = rng.random() < 0.25
    if shared:
        cells.append(MetaCell.variable("v", True))
        cells.append(MetaCell.variable("v", True))
    else:
        for _ in range(2):
            kind = rng.randrange(3)
            if kind == 0:
                cells.append(MetaCell.blank(True))
            elif kind == 1:
                cells.append(MetaCell.constant(rng.randrange(8), True))
            else:
                name = f"x{len(cells)}"
                cells.append(MetaCell.variable(name, True))
                op = rng.choice((Comparator.GE, Comparator.LE))
                store = store.constrain(name, op, rng.randrange(8),
                                        discrete=True)
    meta = MetaTuple(frozenset({"V"}), tuple(cells),
                     frozenset({("V", 0)}))
    return meta, store


def random_condition(rng):
    index = rng.randrange(3)
    if index == 0:
        op = rng.choice((Comparator.EQ, Comparator.NE))
        return AtomicCondition(Col(0), op, Const(f"s{rng.randrange(3)}"))
    op = rng.choice((Comparator.EQ, Comparator.NE, Comparator.LT,
                     Comparator.LE, Comparator.GT, Comparator.GE))
    return AtomicCondition(Col(index), op, Const(rng.randrange(8)))


@SLOW
@given(seeds, st.sampled_from([DEFAULT_CONFIG, BASE_MODEL_CONFIG]))
def test_selection_preserves_subview_of_answer(seed, config):
    rng = random.Random(seed)
    relation = random_relation(rng)
    meta, store = random_meta(rng)
    condition = random_condition(rng)

    answer = relation.select(condition.evaluate)

    table = MaskTable(COLUMNS, (MaskRow(meta, store),))
    selected = meta_select(table, condition, config)

    if selected.rows:
        row = selected.rows[0]
        delivered = materialize_meta_tuple(row.meta, row.store, answer)
    else:
        delivered = answer.select(lambda _: False)

    expected = materialize_meta_tuple(meta, store, answer)

    if config is DEFAULT_CONFIG:
        # The refined operator must deliver exactly the mu-subview of
        # the answer... except where the star policy forces a drop —
        # but all cells are starred here, so exactness is required
        # unless the row was dropped for provable emptiness.
        if selected.rows:
            assert delivered.same_rows(expected), (
                f"seed={seed} condition={condition} "
                f"meta={[str(c) for c in meta.cells]} store={store}"
            )
        else:
            assert expected.cardinality == 0
    else:
        # The base operator conjoins: never more than the mu-subview.
        assert set(delivered.rows) <= set(expected.rows)
