"""Property tests: the surface language round-trips, and masks agree
with per-row materialization."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.mask import MASKED, materialize_meta_tuple
from repro.core.engine import AuthorizationEngine
from repro.lang.parser import parse_statement
from repro.lang.printer import format_statement
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

SLOW = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


class TestLanguageRoundTrip:
    @SLOW
    @given(seeds)
    def test_generated_views_roundtrip(self, seed):
        generator = WorkloadGenerator(seed)
        spec = WorkloadSpec(seed=seed)
        schema = generator.schema(spec)
        for i in range(5):
            view = generator.view(spec, schema, f"V{i}")
            assert parse_statement(str(view)) == view
            assert parse_statement(format_statement(view)) == view

    @SLOW
    @given(seeds)
    def test_generated_queries_roundtrip(self, seed):
        generator = WorkloadGenerator(seed)
        spec = WorkloadSpec(seed=seed)
        schema = generator.schema(spec)
        for _ in range(5):
            query = generator.query(spec, schema)
            assert parse_statement(str(query)) == query


class TestMaskSemantics:
    @SLOW
    @given(seeds)
    def test_apply_agrees_with_materialization(self, seed):
        """A cell is delivered iff some mask row's materialized subview
        of the answer contains it (the two mask semantics used in the
        codebase must coincide)."""
        generator = WorkloadGenerator(seed)
        spec = WorkloadSpec(seed=seed, relations=3, views=3, users=1,
                            rows_per_relation=7)
        workload = generator.workload(spec)
        engine = AuthorizationEngine(workload.database, workload.catalog)
        query = generator.query(spec, workload.database.schema)
        answer = engine.authorize(workload.users[0], query)

        # Per-row materialization of every mask row over the answer.
        visible_by_row = {
            row_values: set() for row_values in answer.answer.rows
        }
        for mask_row in answer.mask.rows:
            starred = mask_row.meta.starred_positions()
            materialized = materialize_meta_tuple(
                mask_row.meta, mask_row.store, answer.answer
            )
            allowed = set(materialized.rows)
            for row_values in answer.answer.rows:
                projected = tuple(row_values[i] for i in starred)
                if projected in allowed:
                    # The projection may collide; double-check via the
                    # matching predicate (the authoritative semantics).
                    if answer.mask.row_matches(mask_row, row_values):
                        visible_by_row[row_values].update(starred)

        for delivered, raw in zip(answer.delivered, answer.answer.rows):
            expected_visible = visible_by_row[raw]
            for position, cell in enumerate(delivered):
                if cell is MASKED:
                    assert position not in expected_visible
                else:
                    assert position in expected_visible
