"""Differential property tests: the columnar kernel ≡ the row paths.

PR 9's columnar data plane must change *nothing* observable:

* ``apply_mask_columnar`` (and the underlying
  ``CompiledMask.apply_rows``) must be byte-identical to the
  interpreted oracle ``Mask.apply`` and to the PR 4 row kernel
  ``CompiledMask.apply`` — same cells, same row order, same
  ``drop_fully_masked`` behaviour — with the numpy broadcast path on
  or off (soundlint SL005 pins this suite to that pair);
* the :class:`Relation` columnar view (``column_data`` /
  ``from_columns`` / ``column_values``) must round-trip rows exactly;
* ``Interval.membership`` (the hoisted closure the kernel evaluates
  per column) must agree with ``Interval.contains`` pointwise;
* an engine with ``columnar_masks`` on and one with it off must
  deliver byte-identical answers end to end.
"""

from hypothesis import given, strategies as st

from repro.algebra.columnar import have_numpy
from repro.algebra.relation import Column, Relation
from repro.algebra.types import INTEGER
from repro.config import DEFAULT_CONFIG
from repro.core.compiled_mask import apply_mask_columnar, compile_mask
from repro.core.engine import AuthorizationEngine
from repro.predicates.intervals import Interval
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

from tests.property.test_compiled_mask import (
    SLOW,
    VALUES,
    masks_and_answers,
    seeds,
)

# Exercise the numpy broadcast path only where the library exists; the
# pure path is always exercised (use_numpy=False).
numpy_flags = (
    st.booleans() if have_numpy() else st.just(False)
)


class TestColumnarKernelMatchesOracles:
    @SLOW
    @given(masks_and_answers(), st.booleans(), numpy_flags)
    def test_columnar_matches_interpreted_apply(self, case, drop, numpy):
        mask, answer = case
        compiled = compile_mask(mask)
        assert apply_mask_columnar(
            compiled, answer, drop_fully_masked=drop, use_numpy=numpy,
        ) == mask.apply(answer, drop_fully_masked=drop)

    @SLOW
    @given(masks_and_answers(), st.booleans(), numpy_flags)
    def test_apply_rows_matches_row_kernel(self, case, drop, numpy):
        mask, answer = case
        compiled = compile_mask(mask)
        assert compiled.apply_rows(
            answer.rows, drop_fully_masked=drop, use_numpy=numpy,
        ) == compiled.apply(answer, drop_fully_masked=drop)

    @SLOW
    @given(masks_and_answers())
    def test_columnar_application_is_pure(self, case):
        mask, answer = case
        compiled = compile_mask(mask)
        first = apply_mask_columnar(compiled, answer)
        assert apply_mask_columnar(compiled, answer) == first
        assert apply_mask_columnar(compile_mask(mask), answer) == first


class TestRelationColumnarView:
    @SLOW
    @given(st.integers(min_value=1, max_value=4), st.data())
    def test_column_data_roundtrip(self, arity, data):
        columns = tuple(Column(f"C{i}", INTEGER) for i in range(arity))
        rows = data.draw(st.lists(
            st.tuples(*[VALUES] * arity), max_size=8,
        ))
        relation = Relation(columns, rows, validate=False)
        cols = relation.column_data()
        assert len(cols) == arity
        assert all(len(col) == len(relation.rows) for col in cols)
        rebuilt = Relation.from_columns(columns, cols)
        # Exact row order, not just set equality: the columnar view is
        # a transpose, never a reordering.
        assert rebuilt.rows == relation.rows
        for i in range(arity):
            assert relation.column_values(i) == cols[i]

    def test_zero_column_relation(self):
        relation = Relation((), [()], validate=False)
        assert relation.column_data() == ()
        assert Relation.from_columns((), ()).rows == ()


class TestMembershipMatchesContains:
    bounds = st.one_of(st.none(), VALUES)

    @SLOW
    @given(bounds, st.booleans(), bounds, st.booleans(),
           st.frozensets(VALUES, max_size=3), st.booleans(), VALUES)
    def test_pointwise_equal(self, lo, lo_strict, hi, hi_strict,
                             excluded, discrete, probe):
        interval = Interval(lo=lo, lo_strict=lo_strict, hi=hi,
                            hi_strict=hi_strict, excluded=excluded,
                            discrete=discrete)
        assert interval.membership()(probe) == interval.contains(probe)


class TestEndToEnd:
    @SLOW
    @given(seeds, numpy_flags)
    def test_engines_agree_on_workloads(self, seed, numpy):
        generator = WorkloadGenerator(seed)
        spec = WorkloadSpec(seed=seed, relations=3, views=3, users=2,
                            rows_per_relation=8)
        workload = generator.workload(spec)
        columnar_engine = AuthorizationEngine(
            workload.database, workload.catalog,
            DEFAULT_CONFIG.but(columnar_masks=True,
                               columnar_numpy=numpy),
        )
        row_engine = AuthorizationEngine(
            workload.database, workload.catalog,
            DEFAULT_CONFIG.but(columnar_masks=False),
        )
        for _ in range(2):
            query = generator.query(spec, workload.database.schema)
            for user in workload.users:
                fast = columnar_engine.authorize(user, query)
                slow = row_engine.authorize(user, query)
                assert fast.delivered == slow.delivered, \
                    f"seed={seed} user={user} query={query}"
