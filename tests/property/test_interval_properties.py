# soundlint: disable-file=SL006 -- differential/property harness: direct evaluation is the oracle the masked path is compared against
"""Property tests: the interval abstraction against brute force.

Intervals are the decision core of the four-case refinement; a wrong
``is_subset`` would mis-clear a field and break soundness, so the
decision procedures are checked exhaustively against enumeration over a
small integer universe.
"""

from hypothesis import given, strategies as st

from repro.predicates.comparators import Comparator
from repro.predicates.intervals import Interval

UNIVERSE = list(range(-3, 18))

_comparison = st.tuples(
    st.sampled_from(list(Comparator)),
    st.integers(min_value=-2, max_value=16),
)


@st.composite
def intervals(draw):
    """An interval built from 1-3 random comparisons (conjoined)."""
    comparisons = draw(st.lists(_comparison, min_size=1, max_size=3))
    discrete = draw(st.booleans())
    interval = Interval.top(discrete)
    for op, value in comparisons:
        interval = interval.intersect(
            Interval.from_comparison(op, value, discrete)
        )
    return interval


def extension(interval):
    return {v for v in UNIVERSE if interval.contains(v)}


class TestAgainstBruteForce:
    @given(intervals())
    def test_emptiness_is_conservative(self, interval):
        # is_empty may only say True when no universe point is inside
        # (for integer-built intervals the universe is representative
        # when bounds lie inside it; conservativeness is what matters).
        if interval.is_empty():
            assert extension(interval) == set()

    @given(intervals(), intervals())
    def test_subset_is_conservative(self, a, b):
        if a.is_subset(b):
            assert extension(a) <= extension(b)

    @given(intervals(), intervals())
    def test_disjoint_is_conservative(self, a, b):
        if a.is_disjoint(b):
            assert extension(a) & extension(b) == set()

    @given(intervals(), intervals())
    def test_intersection_is_exact_on_universe(self, a, b):
        assert extension(a.intersect(b)) == extension(a) & extension(b)

    @given(intervals())
    def test_normalization_preserves_extension(self, interval):
        assert extension(interval.normalized()) == extension(interval)

    @given(intervals())
    def test_self_subset(self, interval):
        assert interval.is_subset(interval)

    @given(intervals(), intervals(), intervals())
    def test_subset_transitive(self, a, b, c):
        if a.is_subset(b) and b.is_subset(c):
            assert extension(a) <= extension(c)

    @given(intervals())
    def test_point_detection(self, interval):
        if interval.is_point:
            value = interval.the_point()
            assert interval.contains(value)
            inside = extension(interval)
            assert inside <= {value}

    @given(intervals())
    def test_describe_roundtrip(self, interval):
        """The rendered clauses must denote the same extension."""
        clauses = interval.normalized().describe("x")
        survivors = set(UNIVERSE)
        for clause in clauses:
            _, op_text, bound_text = clause.split(" ", 2)
            bound = int(bound_text.replace(",", ""))
            op = {
                ">": Comparator.GT, ">=": Comparator.GE,
                "<": Comparator.LT, "<=": Comparator.LE,
                "=": Comparator.EQ, "!=": Comparator.NE,
            }[op_text]
            survivors = {v for v in survivors if op.evaluate(v, bound)}
        assert survivors == extension(interval)
