# soundlint: disable-file=SL006 -- differential/property harness: direct evaluation is the oracle the masked path is compared against
"""Property test: containment certificates hold on random instances.

``is_contained_in`` is conservative by design; this test checks its
*soundness*: whenever it issues a certificate for Q1 ⊆ Q2, the
materialized extensions on random instances must be in subset relation.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.evaluate import evaluate_naive
from repro.calculus.containment import is_contained_in
from repro.calculus.to_algebra import compile_query
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


@SLOW
@given(seeds)
def test_certificates_are_sound(seed):
    generator = WorkloadGenerator(seed)
    spec = WorkloadSpec(seed=seed, relations=3, rows_per_relation=8)
    schema = generator.schema(spec)
    database = generator.instance(spec, schema)

    queries = [generator.query(spec, schema) for _ in range(5)]
    extensions = []
    for query in queries:
        plan = compile_query(query, schema)
        extensions.append(set(evaluate_naive(plan, database).rows))

    for i, first in enumerate(queries):
        for j, second in enumerate(queries):
            if is_contained_in(first, second, schema):
                assert extensions[i] <= extensions[j], (
                    f"seed={seed}: {first}  vs  {second}"
                )


@SLOW
@given(seeds)
def test_reflexivity_on_generated_queries(seed):
    generator = WorkloadGenerator(seed)
    spec = WorkloadSpec(seed=seed)
    schema = generator.schema(spec)
    for _ in range(5):
        query = generator.query(spec, schema)
        assert is_contained_in(query, query, schema), str(query)
