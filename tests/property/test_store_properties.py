# soundlint: disable-file=SL006 -- differential/property harness: direct evaluation is the oracle the masked path is compared against
"""Property tests: constraint-store decisions against brute force.

The store's ``is_definitely_unsat`` must never claim unsatisfiability
of a satisfiable constraint set (that would prune a legitimate mask
row), and ``satisfied_by`` must agree with direct evaluation on full
bindings.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.predicates.comparators import Comparator
from repro.predicates.store import ConstraintStore

VARS = ("x", "y", "z")
VALUES = list(range(0, 7))

_interval_constraint = st.tuples(
    st.sampled_from(VARS),
    st.sampled_from(list(Comparator)),
    st.integers(min_value=0, max_value=6),
)
_relation_constraint = st.tuples(
    st.sampled_from(VARS),
    st.sampled_from([c for c in Comparator if c is not Comparator.EQ]),
    st.sampled_from(VARS),
)


@st.composite
def stores(draw):
    store = ConstraintStore.empty()
    for var, op, value in draw(
        st.lists(_interval_constraint, max_size=4)
    ):
        store = store.constrain(var, op, value, discrete=True)
    for left, op, right in draw(
        st.lists(_relation_constraint, max_size=3)
    ):
        if left != right:
            store = store.relate(left, op, right)
    return store


def brute_force_satisfiable(store):
    for assignment in itertools.product(VALUES, repeat=len(VARS)):
        binding = dict(zip(VARS, assignment))
        if _holds(store, binding):
            return True
    return False


def _holds(store, binding):
    for var, value in binding.items():
        if not store.interval_for(var).contains(value):
            return False
    for relation in store.relations():
        if not relation.op.evaluate(
            binding[relation.left], binding[relation.right]
        ):
            return False
    return True


class TestConservativeness:
    @settings(max_examples=300)
    @given(stores())
    def test_unsat_claims_are_correct(self, store):
        """is_definitely_unsat=True implies no assignment exists.

        (Bounds are drawn within the brute-force universe, so the
        enumeration is decisive.)
        """
        if store.is_definitely_unsat():
            assert not brute_force_satisfiable(store)

    @settings(max_examples=300)
    @given(stores(), st.tuples(*[st.integers(0, 6)] * 3))
    def test_satisfied_by_agrees_on_full_bindings(self, store, values):
        binding = dict(zip(VARS, values))
        assert store.satisfied_by(binding) == _holds(store, binding)

    @settings(max_examples=200)
    @given(stores(), st.sampled_from(VARS), st.integers(0, 6))
    def test_substitute_preserves_satisfiability_semantics(
            self, store, var, value):
        """Substituting a concrete value never invents satisfiability:
        if the substituted store is satisfiable by brute force over the
        remaining variables, the original accepted some binding with
        var=value."""
        substituted = store.substitute(var, value)
        if substituted.is_definitely_unsat():
            # No binding with var=value may satisfy the original.
            others = [v for v in VARS if v != var]
            for assignment in itertools.product(VALUES,
                                                repeat=len(others)):
                binding = dict(zip(others, assignment))
                binding[var] = value
                assert not _holds(store, binding)

    @settings(max_examples=200)
    @given(stores(), stores())
    def test_merge_is_conjunction(self, a, b):
        merged = a.merge(b)
        for assignment in itertools.product(VALUES, repeat=len(VARS)):
            binding = dict(zip(VARS, assignment))
            assert _holds(merged, binding) == (
                _holds(a, binding) and _holds(b, binding)
            )

    @settings(max_examples=200)
    @given(stores())
    def test_restrict_closure_never_tightens(self, store):
        """Restriction may drop constraints but never add any."""
        restricted = store.restrict_closure({"x"})
        for assignment in itertools.product(VALUES, repeat=len(VARS)):
            binding = dict(zip(VARS, assignment))
            if _holds(store, binding):
                assert _holds(restricted, binding)
