"""Property tests: the derivation cache never serves a stale mask.

Random interleavings of ``permit`` / ``revoke`` / ``define_view`` /
``authorize`` run against two engines over the *same* database and
catalog — one with the cache on, one with it off.  After every single
operation the cached engine must deliver exactly what the uncached
engine delivers, for every user: in particular, after any revoke the
very next authorize for that user reflects it.  Cache keys are scoped
by user, so one user's entries can never answer another's request.

The example budget is small by default so the tier-1 run stays fast;
the nightly CI job raises ``REPRO_HYPOTHESIS_MAX_EXAMPLES`` (see
``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.core.engine import AuthorizationEngine
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

pytestmark = pytest.mark.slow

MAX_EXAMPLES = int(os.environ.get("REPRO_HYPOTHESIS_MAX_EXAMPLES", "20"))

SLOW = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)

#: One interleaving step: (opcode, pick-a, pick-b); the picks are
#: reduced modulo the live view/user/query pools.
ops = st.lists(
    st.tuples(
        st.sampled_from(["permit", "revoke", "define", "authorize"]),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    ),
    min_size=1,
    max_size=12,
)


def observable(answer):
    return (
        answer.labels,
        answer.delivered,
        tuple(str(p) for p in answer.permits),
    )


def build_pair(seed):
    """Two engines over one shared database and catalog."""
    generator = WorkloadGenerator(seed)
    spec = WorkloadSpec(seed=seed, relations=3, views=3, users=2,
                        rows_per_relation=6)
    workload = generator.workload(spec)
    cached = AuthorizationEngine(
        workload.database, workload.catalog, DEFAULT_CONFIG
    )
    uncached = AuthorizationEngine(
        workload.database, workload.catalog,
        DEFAULT_CONFIG.but(derivation_cache_size=0),
    )
    queries = [
        generator.query(spec, workload.database.schema) for _ in range(3)
    ]
    return generator, spec, workload, cached, uncached, queries


class TestInterleavings:
    @SLOW
    @given(seeds, ops)
    def test_cached_engine_tracks_every_mutation(self, seed, steps):
        generator, spec, workload, cached, uncached, queries = \
            build_pair(seed)
        catalog = workload.catalog
        users = list(workload.users)
        fresh_views = 0

        for opcode, a, b in steps:
            views = list(catalog.view_names())
            user = users[a % len(users)]
            if opcode == "permit":
                catalog.permit(views[b % len(views)], user)
            elif opcode == "revoke":
                granted = catalog.views_of(user)
                if granted:
                    catalog.revoke(granted[b % len(granted)], user)
            elif opcode == "define":
                name = f"W{fresh_views}"
                fresh_views += 1
                catalog.define_view(generator.view(
                    spec, workload.database.schema, name
                ))
                catalog.permit(name, user)
            else:  # authorize
                query = queries[b % len(queries)]
                hot = cached.authorize(user, query)
                cold = uncached.authorize(user, query)
                assert observable(hot) == observable(cold), (
                    f"seed={seed} op=authorize user={user}"
                )
            # After *every* mutation, every user's next authorize must
            # agree with the uncached engine — a cached mask that
            # survives a revoke is a security hole.
            probe = queries[a % len(queries)]
            for probe_user in users:
                hot = cached.authorize(probe_user, probe)
                cold = uncached.authorize(probe_user, probe)
                assert observable(hot) == observable(cold), (
                    f"seed={seed} op={opcode} probe_user={probe_user}"
                )

    @SLOW
    @given(seeds)
    def test_revoke_never_leaves_a_stale_grant(self, seed):
        _, _, workload, cached, uncached, queries = build_pair(seed)
        catalog = workload.catalog
        for user in workload.users:
            for query in queries:
                cached.authorize(user, query)  # warm the cache
        for user in workload.users:
            for view_name in list(catalog.views_of(user)):
                catalog.revoke(view_name, user)
                for query in queries:
                    hot = cached.authorize(user, query)
                    cold = uncached.authorize(user, query)
                    assert observable(hot) == observable(cold), (
                        f"seed={seed} user={user} revoked={view_name}"
                    )

    @SLOW
    @given(seeds)
    def test_cache_entries_are_user_scoped(self, seed):
        _, _, workload, cached, _, queries = build_pair(seed)
        query = queries[0]
        for user in workload.users:
            cached.authorize(user, query)
        # Same plan, two users: two distinct entries, never shared.
        assert sorted(cached._derivation_cache.users()) == \
            sorted(set(workload.users))
        for user in workload.users:
            assert cached.authorize(user, query).cache_hit, (
                f"seed={seed} user={user}"
            )
