# soundlint: disable-file=SL006 -- differential/property harness: direct evaluation is the oracle the masked path is compared against
"""Property tests on the engine: soundness and structural invariants.

These are the heavyweight checks:

* **non-interference** — the semantic content of the paper's Theorem:
  on randomly generated workloads, a mutation invisible to a user's
  permitted views never changes what that user receives;
* **evaluator agreement** — naive and optimized data evaluation agree
  on random conjunctive queries;
* **delivery shape** — delivered rows always align with the raw answer
  (masking only ever replaces cells, never invents values);
* **grant monotonicity** — granting an additional view never shrinks a
  delivery; revoking never grows one;
* **ablation dominance** — disabling refinements never delivers more.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.evaluate import evaluate_naive
from repro.algebra.optimize import evaluate_optimized
from repro.baselines.oracle import check_non_interference
from repro.calculus.to_algebra import compile_query
from repro.config import BASE_MODEL_CONFIG, DEFAULT_CONFIG
from repro.core.engine import AuthorizationEngine
from repro.core.mask import MASKED
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


def make_workload(seed):
    generator = WorkloadGenerator(seed)
    spec = WorkloadSpec(seed=seed, relations=3, views=3, users=2,
                        rows_per_relation=8)
    return generator, spec, generator.workload(spec)


class TestNonInterference:
    @SLOW
    @given(seeds)
    def test_invisible_mutations_change_nothing(self, seed):
        generator, spec, workload = make_workload(seed)
        query = generator.query(spec, workload.database.schema)
        for _ in range(2):
            mutated = generator.mutate(spec, workload.database)
            for user in workload.users:
                ok, message = check_non_interference(
                    workload.catalog, user, query,
                    workload.database, mutated,
                )
                assert ok, f"seed={seed} user={user} query={query}: {message}"

    @SLOW
    @given(seeds)
    def test_non_interference_of_base_model(self, seed):
        generator, spec, workload = make_workload(seed)
        query = generator.query(spec, workload.database.schema)
        mutated = generator.mutate(spec, workload.database)
        for user in workload.users:
            ok, message = check_non_interference(
                workload.catalog, user, query,
                workload.database, mutated,
                config=BASE_MODEL_CONFIG,
            )
            assert ok, f"seed={seed}: {message}"


class TestEvaluatorAgreement:
    @SLOW
    @given(seeds)
    def test_naive_equals_optimized(self, seed):
        generator, spec, workload = make_workload(seed)
        schema = workload.database.schema
        for _ in range(3):
            plan = compile_query(generator.query(spec, schema), schema)
            naive = evaluate_naive(plan, workload.database)
            fast = evaluate_optimized(plan, workload.database)
            assert naive.same_rows(fast), f"seed={seed}: {plan}"


class TestDeliveryShape:
    @SLOW
    @given(seeds)
    def test_masking_only_replaces_cells(self, seed):
        generator, spec, workload = make_workload(seed)
        engine = AuthorizationEngine(workload.database, workload.catalog)
        query = generator.query(spec, workload.database.schema)
        for user in workload.users:
            answer = engine.authorize(user, query)
            assert len(answer.delivered) == answer.answer.cardinality
            for delivered, raw in zip(answer.delivered,
                                      answer.answer.rows):
                for masked_cell, raw_cell in zip(delivered, raw):
                    assert masked_cell is MASKED or masked_cell == raw_cell

    @SLOW
    @given(seeds)
    def test_stats_are_consistent(self, seed):
        generator, spec, workload = make_workload(seed)
        engine = AuthorizationEngine(workload.database, workload.catalog)
        query = generator.query(spec, workload.database.schema)
        stats = engine.authorize(workload.users[0], query).stats()
        assert stats.full_rows + stats.partial_rows + stats.masked_rows \
            == stats.total_rows
        assert 0 <= stats.delivered_cells <= stats.total_cells


class TestMonotonicity:
    @SLOW
    @given(seeds)
    def test_granting_more_never_delivers_less(self, seed):
        generator, spec, workload = make_workload(seed)
        user = workload.users[0]
        engine = AuthorizationEngine(workload.database, workload.catalog)
        query = generator.query(spec, workload.database.schema)

        before = engine.authorize(user, query).stats().delivered_cells
        # Grant every remaining view.
        for view in workload.views:
            workload.catalog.permit(view.name, user)
        after = engine.authorize(user, query).stats().delivered_cells
        assert after >= before, f"seed={seed}"

    @SLOW
    @given(seeds)
    def test_refinements_only_add(self, seed):
        generator, spec, workload = make_workload(seed)
        query = generator.query(spec, workload.database.schema)
        full_engine = AuthorizationEngine(
            workload.database, workload.catalog, DEFAULT_CONFIG
        )
        base_engine = AuthorizationEngine(
            workload.database, workload.catalog, BASE_MODEL_CONFIG
        )
        for user in workload.users:
            full = full_engine.authorize(user, query).stats()
            base = base_engine.authorize(user, query).stats()
            assert base.delivered_cells <= full.delivered_cells, \
                f"seed={seed} user={user} query={query}"
