"""Unit tests for repro.algebra.types."""

import pytest

from repro.algebra.types import (
    INTEGER,
    REAL,
    STRING,
    domain_named,
    domain_of_value,
)
from repro.errors import TypeMismatchError


class TestDomainMembership:
    def test_integer_contains_ints(self):
        assert INTEGER.contains(0)
        assert INTEGER.contains(-42)
        assert INTEGER.contains(10**12)

    def test_integer_rejects_floats_and_strings(self):
        assert not INTEGER.contains(1.5)
        assert not INTEGER.contains("1")

    def test_integer_rejects_booleans(self):
        # bool subclasses int in Python; the domain must not admit it.
        assert not INTEGER.contains(True)
        assert not INTEGER.contains(False)

    def test_real_contains_ints_and_floats(self):
        assert REAL.contains(1)
        assert REAL.contains(1.5)
        assert not REAL.contains("x")

    def test_string_contains_strings_only(self):
        assert STRING.contains("Acme")
        assert STRING.contains("")
        assert not STRING.contains(3)

    def test_check_passes_value_through(self):
        assert STRING.check("ok") == "ok"

    def test_check_raises_on_mismatch(self):
        with pytest.raises(TypeMismatchError):
            STRING.check(7)


class TestDomainProperties:
    def test_integer_is_discrete(self):
        assert INTEGER.discrete

    def test_string_and_real_are_dense(self):
        assert not STRING.discrete
        assert not REAL.discrete

    def test_all_domains_ordered(self):
        for domain in (INTEGER, STRING, REAL):
            assert domain.ordered

    def test_numeric_domains_mutually_comparable(self):
        assert INTEGER.comparable_with(REAL)
        assert REAL.comparable_with(INTEGER)

    def test_string_not_comparable_with_numbers(self):
        assert not STRING.comparable_with(INTEGER)
        assert not INTEGER.comparable_with(STRING)

    def test_every_domain_comparable_with_itself(self):
        for domain in (INTEGER, STRING, REAL):
            assert domain.comparable_with(domain)


class TestLookups:
    def test_domain_named(self):
        assert domain_named("integer") is INTEGER
        assert domain_named("string") is STRING
        assert domain_named("real") is REAL

    def test_domain_named_unknown(self):
        with pytest.raises(TypeMismatchError):
            domain_named("blob")

    def test_domain_of_value(self):
        assert domain_of_value(3) is INTEGER
        assert domain_of_value(3.5) is REAL
        assert domain_of_value("x") is STRING

    def test_domain_of_boolean_rejected(self):
        with pytest.raises(TypeMismatchError):
            domain_of_value(True)

    def test_domain_of_unsupported(self):
        with pytest.raises(TypeMismatchError):
            domain_of_value(object())
