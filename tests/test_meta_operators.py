"""Unit tests for the extended meta-algebra operators (Definitions 1-3)."""

import pytest

from repro.algebra.expression import AtomicCondition, Col, Const
from repro.algebra.relation import Column
from repro.algebra.types import INTEGER, STRING
from repro.config import BASE_MODEL_CONFIG, DEFAULT_CONFIG
from repro.meta.cell import MetaCell
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.product import meta_product
from repro.metaalgebra.projection import meta_project
from repro.metaalgebra.selection import meta_select
from repro.metaalgebra.table import MaskRow, MaskTable
from repro.predicates.comparators import Comparator
from repro.predicates.store import ConstraintStore


def tup(*cells, views=("V",), provenance=(("V", 0),)):
    return MetaTuple(frozenset(views), tuple(cells), frozenset(provenance))


def columns(*specs):
    return tuple(
        Column(name, INTEGER if numeric else STRING)
        for name, numeric in specs
    )


STR2 = columns(("A", False), ("B", False))
MIXED = columns(("A", False), ("N", True))


class TestMetaProduct:
    def test_concatenation(self):
        left = [tup(MetaCell.blank(True), views=("L",),
                    provenance=(("L", 0),))]
        right = [tup(MetaCell.constant("c", True), views=("R",),
                     provenance=(("R", 0),))]
        table = meta_product(
            columns(("A", False), ("B", False)),
            [left, right], [1, 1], ConstraintStore.empty(), padding=False,
        )
        assert table.cardinality == 1
        row = table.rows[0]
        assert row.meta.views == frozenset({"L", "R"})
        assert row.meta.cells[1].const_value == "c"

    def test_padding_adds_one_sided_rows(self):
        left = [tup(MetaCell.blank(True), views=("L",),
                    provenance=(("L", 0),))]
        right = [tup(MetaCell.constant("c", True), views=("R",),
                     provenance=(("R", 0),))]
        table = meta_product(
            STR2, [left, right], [1, 1],
            ConstraintStore.empty(), padding=True,
        )
        # (L, R), (L, pad), (pad, R); all-pads excluded.
        assert table.cardinality == 3

    def test_all_blank_rows_dropped(self):
        left = [tup(MetaCell.blank(), views=("L",), provenance=(("L", 0),))]
        table = meta_product(
            columns(("A", False)), [left], [1],
            ConstraintStore.empty(), padding=True,
        )
        assert table.cardinality == 0

    def test_row_store_restricted_to_row_vars(self):
        store = (ConstraintStore.empty()
                 .constrain("x1", Comparator.GE, 10)
                 .constrain("zz", Comparator.LE, 5))
        left = [tup(MetaCell.variable("x1", True))]
        table = meta_product(
            columns(("N", True)), [left], [1], store, padding=False
        )
        row_store = table.rows[0].store
        assert not row_store.interval_for("x1").is_top
        assert row_store.interval_for("zz").is_top

    def test_replications_removed_provenance_aware(self):
        a = tup(MetaCell.blank(True), provenance=(("V", 0),))
        b = tup(MetaCell.blank(True), provenance=(("V", 1),))
        table = meta_product(
            columns(("A", False)), [[a, b]], [1],
            ConstraintStore.empty(), padding=False,
        )
        # identical cells, different provenance: both kept here...
        assert table.cardinality == 2
        # ...and collapsed by the provenance-blind (display) dedupe.
        assert table.deduped().cardinality == 1


class TestMetaSelectionStrict:
    """Definition 2 without refinements (BASE_MODEL_CONFIG)."""

    def test_unstarred_cell_drops_row(self):
        table = MaskTable(MIXED, (MaskRow(
            tup(MetaCell.blank(True), MetaCell.blank(False)),
            ConstraintStore.empty(),
        ),))
        out = meta_select(
            table, AtomicCondition(Col(1), Comparator.GE, Const(5)),
            BASE_MODEL_CONFIG,
        )
        assert out.cardinality == 0

    def test_conjoin_introduces_query_variable(self):
        table = MaskTable(MIXED, (MaskRow(
            tup(MetaCell.blank(True), MetaCell.blank(True)),
            ConstraintStore.empty(),
        ),))
        out = meta_select(
            table, AtomicCondition(Col(1), Comparator.GE, Const(5)),
            BASE_MODEL_CONFIG,
        )
        cell = out.rows[0].meta.cells[1]
        assert cell.is_variable
        assert out.rows[0].store.interval_for(cell.var_name).contains(5)

    def test_constant_cell_statically_decided(self):
        table = MaskTable(STR2, (MaskRow(
            tup(MetaCell.constant("Acme", True), MetaCell.blank(True)),
            ConstraintStore.empty(),
        ),))
        keep = meta_select(
            table, AtomicCondition(Col(0), Comparator.EQ, Const("Acme")),
            BASE_MODEL_CONFIG,
        )
        drop = meta_select(
            table, AtomicCondition(Col(0), Comparator.EQ, Const("Apex")),
            BASE_MODEL_CONFIG,
        )
        assert keep.cardinality == 1
        assert keep.rows[0].meta.cells[0].const_value == "Acme"
        assert drop.cardinality == 0

    def test_equality_pins_variable_everywhere(self):
        table = MaskTable(STR2, (MaskRow(
            tup(MetaCell.variable("x1", True),
                MetaCell.variable("x1", True)),
            ConstraintStore.empty(),
        ),))
        out = meta_select(
            table, AtomicCondition(Col(0), Comparator.EQ, Const("v")),
            BASE_MODEL_CONFIG,
        )
        cells = out.rows[0].meta.cells
        assert cells[0].const_value == "v"
        assert cells[1].const_value == "v"

    def test_narrowing_to_empty_drops(self):
        store = ConstraintStore.empty().constrain("x1", Comparator.LE, 3)
        table = MaskTable(MIXED, (MaskRow(
            tup(MetaCell.blank(True), MetaCell.variable("x1", True)),
            store,
        ),))
        out = meta_select(
            table, AtomicCondition(Col(1), Comparator.GE, Const(10)),
            BASE_MODEL_CONFIG,
        )
        assert out.cardinality == 0

    def test_blank_blank_equality_shares_fresh_var(self):
        table = MaskTable(STR2, (MaskRow(
            tup(MetaCell.blank(True), MetaCell.blank(True)),
            ConstraintStore.empty(),
        ),))
        out = meta_select(
            table, AtomicCondition(Col(0), Comparator.EQ, Col(1)),
            BASE_MODEL_CONFIG,
        )
        cells = out.rows[0].meta.cells
        assert cells[0].var_name == cells[1].var_name


class TestMetaSelectionRefined:
    """The Section 4.2 four-case behaviour (DEFAULT_CONFIG)."""

    def test_clear_single_occurrence_variable(self):
        store = ConstraintStore.empty().constrain(
            "x1", Comparator.GE, 250_000
        )
        table = MaskTable(MIXED, (MaskRow(
            tup(MetaCell.blank(True), MetaCell.variable("x1", True)),
            store,
        ),))
        out = meta_select(
            table,
            AtomicCondition(Col(1), Comparator.GT, Const(300_000)),
            DEFAULT_CONFIG,
        )
        assert out.rows[0].meta.cells[1].is_blank
        assert out.rows[0].meta.cells[1].starred

    def test_clear_refused_for_linked_variable(self):
        # x1 joins two columns; a one-column lambda must not clear it.
        table = MaskTable(
            columns(("N", True), ("M", True)),
            (MaskRow(
                tup(MetaCell.variable("x1", True),
                    MetaCell.variable("x1", True)),
                ConstraintStore.empty(),
            ),),
        )
        out = meta_select(
            table, AtomicCondition(Col(0), Comparator.GE, Const(0)),
            DEFAULT_CONFIG,
        )
        # retained unmodified (RETAIN fallback), never cleared
        assert out.rows[0].meta.cells[0].var_name == "x1"
        assert out.rows[0].meta.cells[1].var_name == "x1"

    def test_clear_refused_for_store_related_variable(self):
        store = ConstraintStore.empty().relate("x1", Comparator.LT, "x2")
        table = MaskTable(
            columns(("N", True), ("M", True)),
            (MaskRow(
                tup(MetaCell.variable("x1", True),
                    MetaCell.variable("x2", True)),
                store,
            ),),
        )
        out = meta_select(
            table, AtomicCondition(Col(0), Comparator.GE, Const(-10**9)),
            DEFAULT_CONFIG,
        )
        assert out.rows[0].meta.cells[0].var_name == "x1"

    def test_retain(self):
        store = ConstraintStore.empty().constrain(
            "x1", Comparator.GE, 300_000
        ).constrain("x1", Comparator.LE, 600_000)
        table = MaskTable(MIXED, (MaskRow(
            tup(MetaCell.blank(True), MetaCell.variable("x1", True)),
            store,
        ),))
        out = meta_select(
            table, AtomicCondition(Col(1), Comparator.GE, Const(200_000)),
            DEFAULT_CONFIG,
        )
        assert out.rows[0].meta.cells[1].var_name == "x1"
        assert out.rows[0].store == store

    def test_discard(self):
        store = ConstraintStore.empty().constrain(
            "x1", Comparator.GE, 300_000
        )
        table = MaskTable(MIXED, (MaskRow(
            tup(MetaCell.blank(True), MetaCell.variable("x1", True)),
            store,
        ),))
        out = meta_select(
            table, AtomicCondition(Col(1), Comparator.LT, Const(100)),
            DEFAULT_CONFIG,
        )
        assert out.cardinality == 0

    def test_conjoin_narrows_interval(self):
        store = ConstraintStore.empty().constrain(
            "x1", Comparator.GE, 300_000
        ).constrain("x1", Comparator.LE, 600_000)
        table = MaskTable(MIXED, (MaskRow(
            tup(MetaCell.blank(True), MetaCell.variable("x1", True)),
            store,
        ),))
        out = meta_select(
            table, AtomicCondition(Col(1), Comparator.LE, Const(400_000)),
            DEFAULT_CONFIG,
        )
        interval = out.rows[0].store.interval_for("x1")
        assert interval.contains(350_000)
        assert not interval.contains(500_000)

    def test_same_var_equality_clears_unconstrained_pair(self):
        table = MaskTable(STR2, (MaskRow(
            tup(MetaCell.variable("x1", True),
                MetaCell.variable("x1", True)),
            ConstraintStore.empty(),
        ),))
        out = meta_select(
            table, AtomicCondition(Col(0), Comparator.EQ, Col(1)),
            DEFAULT_CONFIG,
        )
        cells = out.rows[0].meta.cells
        assert cells[0].is_blank and cells[0].starred
        assert cells[1].is_blank and cells[1].starred

    def test_same_var_equality_retains_constrained_pair(self):
        store = ConstraintStore.empty().constrain("x1", Comparator.NE, "u")
        table = MaskTable(STR2, (MaskRow(
            tup(MetaCell.variable("x1", True),
                MetaCell.variable("x1", True)),
            store,
        ),))
        out = meta_select(
            table, AtomicCondition(Col(0), Comparator.EQ, Col(1)),
            DEFAULT_CONFIG,
        )
        assert out.rows[0].meta.cells[0].var_name == "x1"

    def test_same_var_ne_is_contradiction(self):
        table = MaskTable(STR2, (MaskRow(
            tup(MetaCell.variable("x1", True),
                MetaCell.variable("x1", True)),
            ConstraintStore.empty(),
        ),))
        out = meta_select(
            table, AtomicCondition(Col(0), Comparator.NE, Col(1)),
            DEFAULT_CONFIG,
        )
        assert out.cardinality == 0

    def test_distinct_vars_unify_on_equality(self):
        store = (ConstraintStore.empty()
                 .constrain("x1", Comparator.GE, 10)
                 .constrain("x2", Comparator.LE, 20))
        table = MaskTable(
            columns(("N", True), ("M", True)),
            (MaskRow(
                tup(MetaCell.variable("x1", True),
                    MetaCell.variable("x2", True)),
                store,
            ),),
        )
        out = meta_select(
            table, AtomicCondition(Col(0), Comparator.EQ, Col(1)),
            DEFAULT_CONFIG,
        )
        cells = out.rows[0].meta.cells
        assert cells[0].var_name == cells[1].var_name
        interval = out.rows[0].store.interval_for(cells[0].var_name)
        assert interval.contains(15)
        assert not interval.contains(5) and not interval.contains(25)

    def test_unification_contradiction_drops(self):
        store = (ConstraintStore.empty()
                 .constrain("x1", Comparator.GE, 100)
                 .constrain("x2", Comparator.LE, 10))
        table = MaskTable(
            columns(("N", True), ("M", True)),
            (MaskRow(
                tup(MetaCell.variable("x1", True),
                    MetaCell.variable("x2", True)),
                store,
            ),),
        )
        out = meta_select(
            table, AtomicCondition(Col(0), Comparator.EQ, Col(1)),
            DEFAULT_CONFIG,
        )
        assert out.cardinality == 0

    def test_var_var_order_adds_relation(self):
        table = MaskTable(
            columns(("N", True), ("M", True)),
            (MaskRow(
                tup(MetaCell.variable("x1", True),
                    MetaCell.variable("x2", True)),
                ConstraintStore.empty(),
            ),),
        )
        out = meta_select(
            table, AtomicCondition(Col(0), Comparator.LT, Col(1)),
            DEFAULT_CONFIG,
        )
        assert out.rows[0].store.relations_of("x1")

    def test_var_var_order_implied_is_retained(self):
        store = (ConstraintStore.empty()
                 .constrain("x1", Comparator.LE, 5)
                 .constrain("x2", Comparator.GE, 10))
        table = MaskTable(
            columns(("N", True), ("M", True)),
            (MaskRow(
                tup(MetaCell.variable("x1", True),
                    MetaCell.variable("x2", True)),
                store,
            ),),
        )
        out = meta_select(
            table, AtomicCondition(Col(0), Comparator.LT, Col(1)),
            DEFAULT_CONFIG,
        )
        # mu implies lambda: no relation added
        assert not out.rows[0].store.relations_of("x1")

    def test_blank_copies_var_on_equality(self):
        table = MaskTable(STR2, (MaskRow(
            tup(MetaCell.variable("x1", True), MetaCell.blank(True)),
            ConstraintStore.empty(),
        ),))
        out = meta_select(
            table, AtomicCondition(Col(0), Comparator.EQ, Col(1)),
            DEFAULT_CONFIG,
        )
        assert out.rows[0].meta.cells[1].var_name == "x1"

    def test_const_vs_var_equality(self):
        table = MaskTable(STR2, (MaskRow(
            tup(MetaCell.constant("c", True),
                MetaCell.variable("x1", True)),
            ConstraintStore.empty(),
        ),))
        condition = AtomicCondition(Col(0), Comparator.EQ, Col(1))
        # Refined: lambda (col1 = c, given col0 = c) implies the free
        # mu on x1 — the variable cell clears.
        refined = meta_select(table, condition, DEFAULT_CONFIG)
        cell = refined.rows[0].meta.cells[1]
        assert cell.is_blank and cell.starred
        # Base Definition 2: mu AND lambda is represented by pinning.
        base = meta_select(table, condition, BASE_MODEL_CONFIG)
        assert base.rows[0].meta.cells[1].const_value == "c"

    def test_const_const_equality(self):
        table = MaskTable(STR2, (MaskRow(
            tup(MetaCell.constant("a", True), MetaCell.constant("a", True)),
            ConstraintStore.empty(),
        ),))
        same = meta_select(
            table, AtomicCondition(Col(0), Comparator.EQ, Col(1)),
            DEFAULT_CONFIG,
        )
        assert same.cardinality == 1
        different = MaskTable(STR2, (MaskRow(
            tup(MetaCell.constant("a", True), MetaCell.constant("b", True)),
            ConstraintStore.empty(),
        ),))
        assert meta_select(
            different, AtomicCondition(Col(0), Comparator.EQ, Col(1)),
            DEFAULT_CONFIG,
        ).cardinality == 0


class TestMetaProjection:
    def test_blank_removed_keeps_row(self):
        table = MaskTable(STR2, (MaskRow(
            tup(MetaCell.blank(True), MetaCell.blank()),
            ConstraintStore.empty(),
        ),))
        out = meta_project(table, (0,))
        assert out.cardinality == 1
        assert out.labels() == ("A",)

    def test_starred_blank_removed_keeps_row(self):
        # Definition 3's footnote: blank "possibly suffixed with *".
        table = MaskTable(STR2, (MaskRow(
            tup(MetaCell.blank(True), MetaCell.blank(True)),
            ConstraintStore.empty(),
        ),))
        assert meta_project(table, (0,)).cardinality == 1

    def test_variable_removed_drops_row(self):
        table = MaskTable(STR2, (MaskRow(
            tup(MetaCell.blank(True), MetaCell.variable("x1", True)),
            ConstraintStore.empty(),
        ),))
        assert meta_project(table, (0,)).cardinality == 0

    def test_constant_removed_drops_row(self):
        table = MaskTable(STR2, (MaskRow(
            tup(MetaCell.blank(True), MetaCell.constant("Acme", True)),
            ConstraintStore.empty(),
        ),))
        assert meta_project(table, (0,)).cardinality == 0

    def test_reordering_projection(self):
        table = MaskTable(STR2, (MaskRow(
            tup(MetaCell.blank(True), MetaCell.constant("c", True)),
            ConstraintStore.empty(),
        ),))
        out = meta_project(table, (1, 0))
        assert out.labels() == ("B", "A")
        assert out.rows[0].meta.cells[0].const_value == "c"
