# soundlint: disable-file=SL006 -- exercises the algebra/evaluation layer directly, below the authorization boundary; nothing is user-delivered
"""Unit tests for view normalization (Section 3's rewriting)."""

import pytest

from repro.algebra.evaluate import evaluate_naive
from repro.calculus.normalize import (
    BlankContent,
    ConstContent,
    VarContent,
    normalize_view,
)
from repro.errors import SafetyError
from repro.lang.parser import parse_view
from repro.predicates.comparators import Comparator


def cells_of(nv):
    return [str(c) for c in nv.cells]


class TestPaperViews:
    def test_sae(self, paper_db):
        nv = normalize_view(
            parse_view("view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)"),
            paper_db.schema,
        )
        assert cells_of(nv) == ["_*", "_", "_*"]
        assert nv.store.is_empty()

    def test_psa_constant_substitution(self, paper_db):
        nv = normalize_view(
            parse_view(
                "view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, "
                "PROJECT.BUDGET) where PROJECT.SPONSOR = Acme"
            ),
            paper_db.schema,
        )
        assert cells_of(nv) == ["_*", "Acme*", "_*"]

    def test_elp_join_variables(self, paper_db):
        nv = normalize_view(
            parse_view(
                "view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, "
                "PROJECT.NUMBER, PROJECT.BUDGET) "
                "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
                "and PROJECT.NUMBER = ASSIGNMENT.P_NO "
                "and PROJECT.BUDGET >= 250,000"
            ),
            paper_db.schema,
        )
        # EMPLOYEE(x1*, _*, _) PROJECT(x2*, _, x3*) ASSIGNMENT(x1*, x2*)
        # — Figure 1 stars the ASSIGNMENT cells too: they carry head
        # variables.
        assert cells_of(nv) == [
            "x1*", "_*", "_", "x2*", "_", "x3*", "x1*", "x2*",
        ]
        assert nv.store.interval_for("x3").contains(250_000)
        assert not nv.store.interval_for("x3").contains(100)

    def test_est_head_variable_stars_both_occurrences(self, paper_db):
        nv = normalize_view(
            parse_view(
                "view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, "
                "EMPLOYEE:1.TITLE) "
                "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"
            ),
            paper_db.schema,
        )
        # Both TITLE cells carry the starred head variable.
        assert cells_of(nv) == ["_*", "x1*", "_", "_*", "x1*", "_"]


class TestClassAnalysis:
    def test_single_occurrence_becomes_blank(self, paper_db):
        nv = normalize_view(
            parse_view("view V (EMPLOYEE.NAME)"), paper_db.schema
        )
        contents = [type(c.content) for c in nv.cells]
        assert contents == [BlankContent, BlankContent, BlankContent]
        assert nv.cells[0].starred

    def test_comparison_forces_variable(self, paper_db):
        nv = normalize_view(
            parse_view(
                "view V (PROJECT.NUMBER) where PROJECT.BUDGET > 100"
            ),
            paper_db.schema,
        )
        assert isinstance(nv.cells[2].content, VarContent)
        assert not nv.cells[2].starred

    def test_constant_class_propagates(self, paper_db):
        nv = normalize_view(
            parse_view(
                "view V (EMPLOYEE.NAME) "
                "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
                "and ASSIGNMENT.E_NAME = Jones"
            ),
            paper_db.schema,
        )
        # The whole equality class is pinned to Jones.
        assert isinstance(nv.cells[0].content, ConstContent)
        assert nv.cells[0].content.value == "Jones"

    def test_var_var_comparison(self, paper_db):
        nv = normalize_view(
            parse_view(
                "view V (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) "
                "where EMPLOYEE:1.SALARY < EMPLOYEE:2.SALARY"
            ),
            paper_db.schema,
        )
        relations = nv.store.relations()
        assert len(relations) == 1
        assert relations[0].op is Comparator.LT


class TestStaticUnsatisfiability:
    def test_conflicting_constants(self, paper_db):
        with pytest.raises(SafetyError):
            normalize_view(
                parse_view(
                    "view V (PROJECT.NUMBER) "
                    "where PROJECT.SPONSOR = Acme "
                    "and PROJECT.SPONSOR = Apex"
                ),
                paper_db.schema,
            )

    def test_constant_violating_comparison(self, paper_db):
        with pytest.raises(SafetyError):
            normalize_view(
                parse_view(
                    "view V (PROJECT.NUMBER) "
                    "where PROJECT.BUDGET = 100 "
                    "and PROJECT.BUDGET >= 200"
                ),
                paper_db.schema,
            )

    def test_contradictory_interval(self, paper_db):
        with pytest.raises(SafetyError):
            normalize_view(
                parse_view(
                    "view V (PROJECT.NUMBER) "
                    "where PROJECT.BUDGET > 200 and PROJECT.BUDGET < 100"
                ),
                paper_db.schema,
            )

    def test_self_inequality_after_substitution(self, paper_db):
        with pytest.raises(SafetyError):
            normalize_view(
                parse_view(
                    "view V (EMPLOYEE:1.NAME) "
                    "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE "
                    "and EMPLOYEE:1.TITLE != EMPLOYEE:2.TITLE"
                ),
                paper_db.schema,
            )

    def test_trivial_self_le_is_dropped(self, paper_db):
        nv = normalize_view(
            parse_view(
                "view V (EMPLOYEE:1.NAME) "
                "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE "
                "and EMPLOYEE:1.TITLE <= EMPLOYEE:2.TITLE"
            ),
            paper_db.schema,
        )
        assert nv.store.relations() == ()


class TestMaterialization:
    def test_psa_extension(self, paper_db):
        nv = normalize_view(
            parse_view(
                "view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, "
                "PROJECT.BUDGET) where PROJECT.SPONSOR = Acme"
            ),
            paper_db.schema,
        )
        relation = evaluate_naive(
            nv.materialization_psj(paper_db.schema), paper_db
        )
        assert set(relation.rows) == {("bq-45", "Acme", 300_000)}

    def test_elp_extension(self, paper_db):
        nv = normalize_view(
            parse_view(
                "view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, "
                "PROJECT.NUMBER, PROJECT.BUDGET) "
                "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
                "and PROJECT.NUMBER = ASSIGNMENT.P_NO "
                "and PROJECT.BUDGET >= 250,000"
            ),
            paper_db.schema,
        )
        relation = evaluate_naive(
            nv.materialization_psj(paper_db.schema), paper_db
        )
        assert ("Jones", "manager", "bq-45", 300_000) in relation
        assert ("Brown", "engineer", "sv-72", 450_000) in relation
        # vg-13's budget (150k) is below the threshold.
        assert all(row[3] >= 250_000 for row in relation.rows)

    def test_est_extension_includes_reflexive_pairs(self, paper_db):
        nv = normalize_view(
            parse_view(
                "view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, "
                "EMPLOYEE:1.TITLE) "
                "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"
            ),
            paper_db.schema,
        )
        relation = evaluate_naive(
            nv.materialization_psj(paper_db.schema), paper_db
        )
        assert ("Jones", "Jones", "manager") in relation
        assert relation.cardinality == 3  # all titles unique in Figure 1

    def test_ne_and_var_var_in_psj(self, paper_db):
        nv = normalize_view(
            parse_view(
                "view V (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) "
                "where EMPLOYEE:1.SALARY < EMPLOYEE:2.SALARY "
                "and EMPLOYEE:1.NAME != Jones"
            ),
            paper_db.schema,
        )
        relation = evaluate_naive(
            nv.materialization_psj(paper_db.schema), paper_db
        )
        assert ("Smith", "Jones") in relation
        assert all(row[0] != "Jones" for row in relation.rows)
