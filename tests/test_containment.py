# soundlint: disable-file=SL006 -- exercises the algebra/evaluation layer directly, below the authorization boundary; nothing is user-delivered
"""Unit tests for conjunctive-query containment."""

import pytest

from repro.calculus.containment import are_equivalent, is_contained_in
from repro.lang.parser import parse_query, parse_view


def q(text):
    return parse_query(text)


class TestBasicContainment:
    def test_reflexive(self, paper_db):
        query = q("retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)")
        assert is_contained_in(query, query, paper_db.schema)

    def test_selection_narrows(self, paper_db):
        narrow = q("retrieve (PROJECT.NUMBER) "
                   "where PROJECT.SPONSOR = Acme")
        wide = q("retrieve (PROJECT.NUMBER)")
        assert is_contained_in(narrow, wide, paper_db.schema)
        assert not is_contained_in(wide, narrow, paper_db.schema)

    def test_interval_implication(self, paper_db):
        narrow = q("retrieve (PROJECT.NUMBER) "
                   "where PROJECT.BUDGET > 500,000")
        wide = q("retrieve (PROJECT.NUMBER) "
                 "where PROJECT.BUDGET >= 250,000")
        assert is_contained_in(narrow, wide, paper_db.schema)
        assert not is_contained_in(wide, narrow, paper_db.schema)

    def test_disjoint_selections_not_contained(self, paper_db):
        acme = q("retrieve (PROJECT.NUMBER) where PROJECT.SPONSOR = Acme")
        apex = q("retrieve (PROJECT.NUMBER) where PROJECT.SPONSOR = Apex")
        assert not is_contained_in(acme, apex, paper_db.schema)

    def test_head_width_must_agree(self, paper_db):
        one = q("retrieve (PROJECT.NUMBER)")
        two = q("retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)")
        assert not is_contained_in(one, two, paper_db.schema)
        assert not is_contained_in(two, one, paper_db.schema)

    def test_head_order_matters(self, paper_db):
        ab = q("retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)")
        ba = q("retrieve (PROJECT.SPONSOR, PROJECT.NUMBER)")
        assert not is_contained_in(ab, ba, paper_db.schema)


class TestJoins:
    def test_join_query_contained_in_projection(self, paper_db):
        joined = q(
            "retrieve (EMPLOYEE.NAME) "
            "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME"
        )
        plain = q("retrieve (EMPLOYEE.NAME)")
        assert is_contained_in(joined, plain, paper_db.schema)
        assert not is_contained_in(plain, joined, paper_db.schema)

    def test_extra_atom_is_superfluous_when_foldable(self, paper_db):
        """Q with a duplicated atom is equivalent to Q (homomorphic
        folding of the duplicate)."""
        doubled = q(
            "retrieve (EMPLOYEE:1.NAME) "
            "where EMPLOYEE:1.NAME = EMPLOYEE:2.NAME"
        )
        single = q("retrieve (EMPLOYEE.NAME)")
        assert are_equivalent(doubled, single, paper_db.schema)

    def test_est_projection_identity(self, paper_db):
        """The EST insight: projecting one side of the same-title pair
        is equivalent to projecting EMPLOYEE directly."""
        est_side = q(
            "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:1.TITLE) "
            "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"
        )
        plain = q("retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)")
        assert are_equivalent(est_side, plain, paper_db.schema)

    def test_elp_narrowed_budget(self, paper_db):
        """Klein's narrowed query is contained in ELP's defining query
        (the containment behind 'the query should be authorized')."""
        elp = parse_view(
            "view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, "
            "PROJECT.BUDGET) "
            "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
            "and PROJECT.NUMBER = ASSIGNMENT.P_NO "
            "and PROJECT.BUDGET >= 250,000"
        )
        narrowed = q(
            "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, "
            "PROJECT.BUDGET) "
            "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
            "and PROJECT.NUMBER = ASSIGNMENT.P_NO "
            "and PROJECT.BUDGET > 500,000"
        )
        assert is_contained_in(narrowed, elp, paper_db.schema)
        assert not is_contained_in(elp, narrowed, paper_db.schema)

    def test_different_join_shapes(self, paper_db):
        chain = q(
            "retrieve (EMPLOYEE.NAME) "
            "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
            "and ASSIGNMENT.P_NO = PROJECT.NUMBER"
        )
        short = q(
            "retrieve (EMPLOYEE.NAME) "
            "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME"
        )
        assert is_contained_in(chain, short, paper_db.schema)
        assert not is_contained_in(short, chain, paper_db.schema)


class TestVariableRelations:
    def test_var_var_relation_implied_by_same_relation(self, paper_db):
        lt = q(
            "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) "
            "where EMPLOYEE:1.SALARY < EMPLOYEE:2.SALARY"
        )
        assert is_contained_in(lt, lt, paper_db.schema)

    def test_lt_contained_in_le(self, paper_db):
        lt = q(
            "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) "
            "where EMPLOYEE:1.SALARY < EMPLOYEE:2.SALARY"
        )
        free = q("retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME)")
        assert is_contained_in(lt, free, paper_db.schema)
        assert not is_contained_in(free, lt, paper_db.schema)

    def test_relation_implied_by_intervals(self, paper_db):
        bounded = q(
            "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) "
            "where EMPLOYEE:1.SALARY <= 10 and EMPLOYEE:2.SALARY >= 20"
        )
        ordered = q(
            "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) "
            "where EMPLOYEE:1.SALARY < EMPLOYEE:2.SALARY"
        )
        assert is_contained_in(bounded, ordered, paper_db.schema)


class TestSemanticCrossCheck:
    """A containment certificate must hold on concrete instances."""

    QUERIES = [
        "retrieve (PROJECT.NUMBER)",
        "retrieve (PROJECT.NUMBER) where PROJECT.SPONSOR = Acme",
        "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET >= 250,000",
        "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET > 400,000",
        "retrieve (PROJECT.NUMBER) "
        "where PROJECT.NUMBER = ASSIGNMENT.P_NO",
        "retrieve (EMPLOYEE.NAME) "
        "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME",
        "retrieve (EMPLOYEE.NAME)",
    ]

    def test_certificates_hold_on_paper_db(self, paper_db):
        from repro.algebra.evaluate import evaluate_naive
        from repro.calculus.to_algebra import compile_query

        extensions = {}
        for text in self.QUERIES:
            plan = compile_query(q(text), paper_db.schema)
            extensions[text] = set(
                evaluate_naive(plan, paper_db).rows
            )
        for a in self.QUERIES:
            for b in self.QUERIES:
                if is_contained_in(q(a), q(b), paper_db.schema):
                    assert extensions[a] <= extensions[b], (a, b)
