"""Unit tests: the anonymous permit form (the emitted language,
accepted as input)."""

import pytest

from repro.core.engine import AuthorizationEngine
from repro.core.session import FrontEnd
from repro.lang.parser import PermitViewCommand, parse_statement
from repro.meta.catalog import PermissionCatalog


class TestParsing:
    def test_basic_form(self):
        command = parse_statement(
            "permit (PROJECT.NUMBER, PROJECT.SPONSOR) "
            "where PROJECT.SPONSOR = Acme to brown"
        )
        assert isinstance(command, PermitViewCommand)
        assert len(command.target) == 2
        assert len(command.conditions) == 1
        assert command.users == ("brown",)

    def test_without_conditions(self):
        command = parse_statement(
            "permit (EMPLOYEE.NAME) to ann, bob"
        )
        assert isinstance(command, PermitViewCommand)
        assert command.conditions == ()
        assert command.users == ("ann", "bob")

    def test_named_form_still_parses(self):
        from repro.lang.parser import PermitCommand

        command = parse_statement("permit SAE to brown")
        assert isinstance(command, PermitCommand)

    def test_roundtrip(self):
        text = ("permit (PROJECT.NUMBER, PROJECT.SPONSOR) "
                "where PROJECT.SPONSOR = Acme to brown")
        command = parse_statement(text)
        assert parse_statement(str(command)) == command


class TestFrontEnd:
    def test_emitted_statement_is_grantable(self, paper_db):
        """The loop closes: take the system's inferred permit output,
        feed it back as a grant for a second user, and the second user
        receives the same portion."""
        catalog = PermissionCatalog(paper_db.schema)
        catalog.define_view(
            "view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
            "where PROJECT.SPONSOR = Acme"
        )
        catalog.permit("PSA", "brown")
        engine = AuthorizationEngine(paper_db, catalog)
        front = FrontEnd(engine)

        query = ("retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
                 "where PROJECT.BUDGET >= 250,000")
        first = engine.authorize("brown", query)
        emitted = str(first.permits[0])  # permit (NUMBER, SPONSOR) where...
        assert emitted.startswith("permit (NUMBER, SPONSOR)")

        # Re-qualify the emitted columns against the base relation and
        # grant to a second user.
        regrant = (
            "permit (PROJECT.NUMBER, PROJECT.SPONSOR) "
            "where PROJECT.SPONSOR = Acme to carol"
        )
        result = front.execute(regrant, "admin")
        assert "anonymous view" in result.message

        # The regranted view does not cover BUDGET, so carol's
        # *unfiltered* request yields the same visible content brown's
        # filtered one did; a budget-filtered request must mask (the
        # filter would reveal a hidden column).
        from repro.core.mask import MASKED

        def visible(answer):
            return {
                row for row in answer.delivered if MASKED not in row
            }

        plain = engine.authorize(
            "carol", "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)"
        )
        assert visible(plain) == visible(first) == {("bq-45", "Acme")}

        filtered = engine.authorize("carol", query)
        assert filtered.is_fully_masked

    def test_generated_names_do_not_collide(self, paper_db):
        engine = AuthorizationEngine(
            paper_db, PermissionCatalog(paper_db.schema)
        )
        front = FrontEnd(engine)
        front.execute("permit (EMPLOYEE.NAME) to a", "admin")
        front.execute("permit (EMPLOYEE.TITLE) to b", "admin")
        names = engine.catalog.view_names()
        assert len(names) == 2 and len(set(names)) == 2

    def test_unsafe_anonymous_view_rejected(self, paper_db):
        from repro.errors import ReproError

        engine = AuthorizationEngine(
            paper_db, PermissionCatalog(paper_db.schema)
        )
        front = FrontEnd(engine)
        with pytest.raises(ReproError):
            front.execute(
                "permit (EMPLOYEE.NAME) "
                "where EMPLOYEE.SALARY = 1 and EMPLOYEE.SALARY = 2 "
                "to eve",
                "admin",
            )
