"""Unit tests for the mask-derivation pipeline (metaalgebra.plan)."""

import pytest

from repro.calculus.to_algebra import compile_query
from repro.config import DEFAULT_CONFIG
from repro.experiments.tables import meta_tuple_cells
from repro.lang.parser import parse_query
from repro.metaalgebra.plan import derive_mask
from repro.workloads.paperdb import (
    EXAMPLE_2_QUERY,
    EXAMPLE_3_QUERY,
    build_paper_catalog,
    build_paper_database,
)


@pytest.fixture
def setup():
    database = build_paper_database()
    catalog = build_paper_catalog(database)
    return database, catalog


def derive(setup, user, query_text, config=DEFAULT_CONFIG, **kwargs):
    database, catalog = setup
    plan = compile_query(parse_query(query_text), database.schema)
    return derive_mask(plan, database.schema, catalog, user, config,
                       **kwargs)


class TestStageOne:
    def test_admissible_views_recorded(self, setup):
        derivation = derive(
            setup, "Klein", EXAMPLE_2_QUERY.replace("\n", " ")
        )
        assert set(derivation.admissible_views) == {"ELP", "EST"}

    def test_unknown_user_yields_empty_everything(self, setup):
        derivation = derive(setup, "nobody", "retrieve (EMPLOYEE.NAME)")
        assert derivation.admissible_views == ()
        assert derivation.raw_product.cardinality == 0
        assert derivation.mask is not None
        assert derivation.mask.cardinality == 0


class TestTraceStages:
    def test_selection_steps_recorded_in_order(self, setup):
        derivation = derive(
            setup, "Klein", EXAMPLE_2_QUERY.replace("\n", " ")
        )
        # Four conditions; the two budget/title constants group per
        # column, the joins stay separate: 4 steps total here.
        assert len(derivation.after_selections) == 4

    def test_projected_stage_before_cleanup(self, setup):
        derivation = derive(
            setup, "Brown", EXAMPLE_3_QUERY.replace("\n", " ")
        )
        assert derivation.projected is not None
        assert derivation.mask is not None
        # Cleanup only ever removes rows.
        assert derivation.mask.cardinality <= \
            derivation.projected.cardinality


class TestConfigurationEffects:
    def test_prune_dangling_off_keeps_rows(self, setup):
        loose = derive(
            setup, "Klein", EXAMPLE_2_QUERY.replace("\n", " "),
            DEFAULT_CONFIG.but(prune_dangling=False, self_joins=False),
        )
        strict = derive(
            setup, "Klein", EXAMPLE_2_QUERY.replace("\n", " "),
            DEFAULT_CONFIG.but(self_joins=False),
        )
        assert loose.pruned_product.cardinality >= \
            strict.pruned_product.cardinality

    def test_dedupe_off_keeps_replications(self, setup):
        raw = derive(
            setup, "Klein", "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)",
            DEFAULT_CONFIG.but(dedupe=False, self_joins=False),
        )
        deduped = derive(
            setup, "Klein", "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)",
            DEFAULT_CONFIG.but(self_joins=False),
        )
        # EST's two identical tuples survive without dedupe.
        assert raw.pruned_product.cardinality >= \
            deduped.pruned_product.cardinality

    def test_selfjoin_pool_filtering(self, setup):
        """Cached combinations involving non-admissible views must not
        enter the product."""
        database, catalog = setup
        plan = compile_query(
            parse_query("retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)"),
            database.schema,
        )
        # A poisoned pool entry claiming a combination with PSA (which
        # is not admissible for an EMPLOYEE-only query is fine — PSA is
        # a PROJECT view; use a fake view name instead).
        from repro.meta.cell import MetaCell
        from repro.meta.metatuple import MetaTuple

        poisoned = MetaTuple(
            views=frozenset({"SAE", "GHOST"}),
            cells=(MetaCell.blank(True), MetaCell.blank(True),
                   MetaCell.blank(True)),
            provenance=frozenset({("SAE", 0), ("GHOST", 0)}),
        )
        derivation = derive_mask(
            plan, database.schema, catalog, "Brown", DEFAULT_CONFIG,
            selfjoin_pool={"EMPLOYEE": (poisoned,)},
        )
        for rows in derivation.selfjoin_added.values():
            assert all("GHOST" not in t.views for t in rows)

    def test_mask_columns_follow_output(self, setup):
        derivation = derive(
            setup, "Brown",
            "retrieve (PROJECT.SPONSOR, PROJECT.NUMBER) "
            "where PROJECT.BUDGET >= 250,000",
        )
        assert derivation.mask is not None
        assert derivation.mask.labels() == ("SPONSOR", "NUMBER")
        assert [meta_tuple_cells(r.meta) for r in derivation.mask.rows] \
            == [("Acme*", "*")]
