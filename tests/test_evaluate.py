# soundlint: disable-file=SL006 -- exercises the algebra/evaluation layer directly, below the authorization boundary; nothing is user-delivered
"""Unit tests for the naive PSJ evaluator."""

import pytest

from repro.algebra.database import build_database
from repro.algebra.evaluate import evaluate_naive, trace_naive
from repro.algebra.expression import (
    AtomicCondition,
    Col,
    Const,
    Occurrence,
    PSJQuery,
)
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.predicates.comparators import Comparator


@pytest.fixture
def db():
    emp = make_schema(
        "EMP", [("NAME", STRING), ("DEPT", STRING), ("SAL", INTEGER)],
        key=["NAME"],
    )
    dept = make_schema("DEPT", [("DNAME", STRING), ("HEAD", STRING)],
                       key=["DNAME"])
    return build_database([emp, dept], {
        "EMP": [("a", "x", 10), ("b", "x", 20), ("c", "y", 30)],
        "DEPT": [("x", "a"), ("y", "c")],
    })


class TestSingleRelation:
    def test_identity(self, db):
        plan = PSJQuery((Occurrence("EMP"),), (), (0, 1, 2))
        assert evaluate_naive(plan, db).same_rows(db.instance("EMP"))

    def test_selection(self, db):
        plan = PSJQuery(
            (Occurrence("EMP"),),
            (AtomicCondition(Col(2), Comparator.GT, Const(15)),),
            (0,),
        )
        assert set(evaluate_naive(plan, db).rows) == {("b",), ("c",)}

    def test_projection_dedupes(self, db):
        plan = PSJQuery((Occurrence("EMP"),), (), (1,))
        assert set(evaluate_naive(plan, db).rows) == {("x",), ("y",)}
        assert evaluate_naive(plan, db).cardinality == 2

    def test_conjunctive_selection(self, db):
        plan = PSJQuery(
            (Occurrence("EMP"),),
            (
                AtomicCondition(Col(1), Comparator.EQ, Const("x")),
                AtomicCondition(Col(2), Comparator.LT, Const(15)),
            ),
            (0,),
        )
        assert set(evaluate_naive(plan, db).rows) == {("a",)}


class TestJoins:
    def test_equijoin(self, db):
        plan = PSJQuery(
            (Occurrence("EMP"), Occurrence("DEPT")),
            (AtomicCondition(Col(1), Comparator.EQ, Col(3)),),
            (0, 4),
        )
        result = set(evaluate_naive(plan, db).rows)
        assert result == {("a", "a"), ("b", "a"), ("c", "c")}

    def test_self_product(self, db):
        plan = PSJQuery(
            (Occurrence("EMP", 1), Occurrence("EMP", 2)),
            (AtomicCondition(Col(1), Comparator.EQ, Col(4)),),
            (0, 3),
        )
        result = set(evaluate_naive(plan, db).rows)
        # same-dept pairs, including reflexive ones
        assert ("a", "b") in result and ("b", "a") in result
        assert ("a", "a") in result
        assert ("a", "c") not in result

    def test_product_labels(self, db):
        plan = PSJQuery(
            (Occurrence("EMP", 1), Occurrence("EMP", 2)), (), (0, 3)
        )
        assert evaluate_naive(plan, db).labels() == ("NAME:1", "NAME:2")


class TestTrace:
    def test_trace_stages(self, db):
        plan = PSJQuery(
            (Occurrence("EMP"), Occurrence("DEPT")),
            (
                AtomicCondition(Col(1), Comparator.EQ, Col(3)),
                AtomicCondition(Col(2), Comparator.GE, Const(20)),
            ),
            (0,),
        )
        trace = trace_naive(plan, db)
        assert trace.after_product.cardinality == 6
        assert len(trace.after_selections) == 2
        assert trace.after_selections[0].cardinality == 3
        assert trace.after_selections[1].cardinality == 2
        assert set(trace.result.rows) == {("b",), ("c",)}
