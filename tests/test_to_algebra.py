# soundlint: disable-file=SL006 -- exercises the algebra/evaluation layer directly, below the authorization boundary; nothing is user-delivered
"""Unit tests for query compilation to PSJ plans."""

import pytest

from repro.algebra.evaluate import evaluate_naive
from repro.calculus.to_algebra import compile_query, compile_view
from repro.errors import SafetyError
from repro.lang.parser import parse_query, parse_view


class TestCompilation:
    def test_example1_plan_shape(self, paper_db):
        plan = compile_query(parse_query(
            "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
            "where PROJECT.BUDGET >= 250,000"
        ), paper_db.schema)
        assert [str(o) for o in plan.occurrences] == ["PROJECT"]
        assert len(plan.conditions) == 1
        assert plan.output == (0, 1)

    def test_example2_occurrence_order(self, paper_db):
        plan = compile_query(parse_query(
            "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) "
            "where EMPLOYEE.TITLE = engineer "
            "and EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
            "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
            "and PROJECT.BUDGET > 300,000"
        ), paper_db.schema)
        # The paper's plan: EMPLOYEE x ASSIGNMENT x PROJECT.
        assert [str(o) for o in plan.occurrences] == \
            ["EMPLOYEE", "ASSIGNMENT", "PROJECT"]
        assert len(plan.conditions) == 4
        assert plan.output == (0, 2)

    def test_example3_self_product(self, paper_db):
        plan = compile_query(parse_query(
            "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:1.SALARY, "
            "EMPLOYEE:2.NAME, EMPLOYEE:2.SALARY) "
            "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"
        ), paper_db.schema)
        assert [str(o) for o in plan.occurrences] == \
            ["EMPLOYEE", "EMPLOYEE:2"]
        assert plan.output == (0, 2, 3, 5)

    def test_constant_oriented_rightward(self, paper_db):
        plan = compile_query(parse_query(
            "retrieve (PROJECT.NUMBER) where 250,000 <= PROJECT.BUDGET"
        ), paper_db.schema)
        condition = plan.conditions[0]
        from repro.algebra.expression import Col

        assert isinstance(condition.lhs, Col)
        assert str(condition.op) == ">="

    def test_compile_view(self, paper_db):
        plan = compile_view(parse_view(
            "view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
            "where PROJECT.SPONSOR = Acme"
        ), paper_db.schema)
        result = evaluate_naive(plan, paper_db)
        assert set(result.rows) == {("bq-45", "Acme", 300_000)}

    def test_unsafe_query_rejected(self, paper_db):
        with pytest.raises(SafetyError):
            compile_query(parse_query("retrieve (EMPLOYEE:3.NAME)"),
                          paper_db.schema)


class TestEndToEndEvaluation:
    def test_example1_answer(self, paper_db):
        plan = compile_query(parse_query(
            "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
            "where PROJECT.BUDGET >= 250,000"
        ), paper_db.schema)
        assert set(evaluate_naive(plan, paper_db).rows) == {
            ("bq-45", "Acme"), ("sv-72", "Apex"),
        }

    def test_example2_answer(self, paper_db):
        plan = compile_query(parse_query(
            "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) "
            "where EMPLOYEE.TITLE = engineer "
            "and EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
            "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
            "and PROJECT.BUDGET > 300,000"
        ), paper_db.schema)
        assert set(evaluate_naive(plan, paper_db).rows) == {
            ("Brown", 32_000),
        }

    def test_example3_answer(self, paper_db):
        plan = compile_query(parse_query(
            "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:1.SALARY, "
            "EMPLOYEE:2.NAME, EMPLOYEE:2.SALARY) "
            "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"
        ), paper_db.schema)
        result = set(evaluate_naive(plan, paper_db).rows)
        # Figure 1's titles are all distinct: only reflexive pairs.
        assert result == {
            ("Jones", 26_000, "Jones", 26_000),
            ("Smith", 22_000, "Smith", 22_000),
            ("Brown", 32_000, "Brown", 32_000),
        }
