"""Unit tests for table renderers, answer rendering, errors, config."""

import pytest

from repro.config import BASE_MODEL_CONFIG, DEFAULT_CONFIG, EngineConfig
from repro.errors import (
    AuthorizationError,
    DuplicateViewError,
    GrantError,
    ParseError,
    ReproError,
    SafetyError,
    SchemaError,
    TypeMismatchError,
    UnknownAttributeError,
    UnknownRelationError,
    UnknownViewError,
)
from repro.experiments.tables import (
    ascii_table,
    comparison_table,
    figure1_table,
    mask_table,
    permission_table,
)
from repro.workloads.paperdb import EXAMPLE_1_QUERY


class TestAsciiTable:
    def test_alignment(self):
        text = ascii_table(("A", "LONG"), [("xx", "y"), ("z", "wwww")])
        lines = text.splitlines()
        assert lines[0].startswith("+")
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_non_string_cells(self):
        text = ascii_table(("N",), [(42,), (None,)])
        assert "42" in text and "None" in text

    def test_empty_rows(self):
        text = ascii_table(("A", "B"), [])
        assert text.count("\n") == 3  # rule, header, rule, rule


class TestFigureTables:
    def test_figure1_table(self, paper_db, paper_catalog):
        text = figure1_table(paper_db, paper_catalog, "PROJECT")
        assert "Acme*" in text
        assert "x2*" in text
        assert "bq-45" in text  # data rows included

    def test_comparison_table(self, paper_catalog):
        text = comparison_table(paper_catalog)
        assert "x3" in text and "250,000" in text

    def test_permission_table(self, paper_catalog):
        text = permission_table(paper_catalog)
        assert "Brown" in text and "Klein" in text

    def test_mask_table_blank_glyph(self, paper_engine):
        derivation = paper_engine.derive("Brown", EXAMPLE_1_QUERY)
        assert derivation.mask is not None
        text = mask_table(derivation.mask)
        assert "Acme*" in text


class TestAnswerRendering:
    def test_empty_answer_renders(self, paper_engine):
        answer = paper_engine.authorize(
            "Brown",
            "retrieve (PROJECT.NUMBER) where PROJECT.BUDGET > 999,999",
        )
        text = answer.render()
        assert "NUMBER" in text

    def test_masked_sentinel_in_render(self, paper_engine):
        answer = paper_engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert "#####" in answer.render()


class TestErrorsHierarchy:
    @pytest.mark.parametrize("error_class", [
        SchemaError, TypeMismatchError, ParseError, SafetyError,
        AuthorizationError, GrantError,
    ])
    def test_all_derive_from_repro_error(self, error_class):
        assert issubclass(error_class, ReproError)

    def test_named_errors_carry_names(self):
        assert UnknownRelationError("R").name == "R"
        assert UnknownViewError("V").name == "V"
        error = UnknownAttributeError("R", "A")
        assert error.relation == "R" and error.attribute == "A"

    def test_parse_error_location(self):
        assert "line 3" in str(ParseError("bad", line=3))
        assert "offset 7" in str(ParseError("bad", position=7))


class TestEngineConfig:
    def test_but_returns_modified_copy(self):
        changed = DEFAULT_CONFIG.but(self_joins=False)
        assert not changed.self_joins
        assert DEFAULT_CONFIG.self_joins  # original untouched

    def test_base_model_disables_refinements(self):
        assert not BASE_MODEL_CONFIG.refine_selection
        assert not BASE_MODEL_CONFIG.product_padding
        assert not BASE_MODEL_CONFIG.self_joins
        assert BASE_MODEL_CONFIG.prune_dangling  # soundness stays on

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.self_joins = False  # type: ignore[misc]

    def test_defaults_are_full_model(self):
        config = EngineConfig()
        assert config.refine_selection
        assert config.product_padding
        assert config.self_joins
        assert not config.existential_closure
