"""Unit tests for the System R baseline (grants, revocation, windows)."""

import pytest

from repro.baselines.interface import Outcome
from repro.baselines.system_r import SystemRModel
from repro.errors import GrantError, UnknownViewError


@pytest.fixture
def model(paper_db):
    return SystemRModel(paper_db)


class TestGrants:
    def test_dba_owns_base_relations(self, model):
        assert "PROJECT" in model.readable_objects("_dba")

    def test_grant_and_read(self, model):
        model.grant("_dba", "alice", "PROJECT")
        assert "PROJECT" in model.readable_objects("alice")

    def test_grant_requires_grant_option(self, model):
        model.grant("_dba", "alice", "PROJECT")  # no grant option
        with pytest.raises(GrantError):
            model.grant("alice", "bob", "PROJECT")

    def test_grant_option_chains(self, model):
        model.grant("_dba", "alice", "PROJECT", grant_option=True)
        model.grant("alice", "bob", "PROJECT")
        assert "PROJECT" in model.readable_objects("bob")

    def test_grant_unknown_object(self, model):
        with pytest.raises(UnknownViewError):
            model.grant("_dba", "alice", "NOPE")


class TestRecursiveRevocation:
    def test_simple_revoke(self, model):
        model.grant("_dba", "alice", "PROJECT")
        model.revoke("_dba", "alice", "PROJECT")
        assert "PROJECT" not in model.readable_objects("alice")

    def test_cascading_revoke(self, model):
        model.grant("_dba", "alice", "PROJECT", grant_option=True)
        model.grant("alice", "bob", "PROJECT", grant_option=True)
        model.grant("bob", "carol", "PROJECT")
        model.revoke("_dba", "alice", "PROJECT")
        assert "PROJECT" not in model.readable_objects("bob")
        assert "PROJECT" not in model.readable_objects("carol")

    def test_independent_support_survives(self, model):
        model.grant("_dba", "alice", "PROJECT", grant_option=True)
        model.grant("_dba", "bob", "PROJECT", grant_option=True)
        model.grant("alice", "carol", "PROJECT")
        model.grant("bob", "carol", "PROJECT")
        model.revoke("_dba", "alice", "PROJECT")
        assert "PROJECT" in model.readable_objects("carol")

    def test_timestamp_ordering_matters(self, model):
        # bob grants to carol BEFORE bob himself gets the privilege:
        # Griffiths-Wade invalidates carol's grant on revocation replay.
        model.grant("_dba", "alice", "PROJECT", grant_option=True)
        model.grant("alice", "bob", "PROJECT", grant_option=True)
        model.grant("bob", "carol", "PROJECT")
        # Later, bob acquires a second, independent source...
        model.grant("_dba", "bob", "PROJECT", grant_option=True)
        # ...but it is newer than bob's grant to carol.
        model.revoke("alice", "bob", "PROJECT")
        assert "PROJECT" not in model.readable_objects("carol")
        assert "PROJECT" in model.readable_objects("bob")


class TestWindows:
    def test_view_creation_and_query(self, model):
        model.create_view(
            "_dba",
            "view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
            "where PROJECT.SPONSOR = Acme",
        )
        model.grant("_dba", "brown", "PSA")
        decision = model.authorize_view_query("brown", "PSA")
        assert decision.outcome is Outcome.FULL
        assert decision.delivered == (("bq-45", "Acme", 300_000),)

    def test_window_denied_without_grant(self, model):
        model.create_view("_dba", "view V (PROJECT.NUMBER)")
        decision = model.authorize_view_query("brown", "V")
        assert decision.outcome is Outcome.DENIED

    def test_base_query_all_or_nothing(self, model):
        model.grant("_dba", "alice", "PROJECT")
        full = model.authorize_query(
            "alice", "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)"
        )
        assert full.outcome is Outcome.FULL
        joined = model.authorize_query(
            "alice",
            "retrieve (PROJECT.NUMBER, ASSIGNMENT.E_NAME) "
            "where PROJECT.NUMBER = ASSIGNMENT.P_NO",
        )
        assert joined.outcome is Outcome.DENIED
        assert "ASSIGNMENT" in joined.note

    def test_view_does_not_open_base_relations(self, model):
        # The paper's core criticism.
        model.create_view("_dba", "view V (PROJECT.NUMBER)")
        model.grant("_dba", "alice", "V")
        decision = model.authorize_query(
            "alice", "retrieve (PROJECT.NUMBER)"
        )
        assert decision.outcome is Outcome.DENIED

    def test_duplicate_object_name_rejected(self, model):
        model.create_view("_dba", "view V (PROJECT.NUMBER)")
        with pytest.raises(GrantError):
            model.create_view("_dba", "view V (PROJECT.SPONSOR)")

    def test_unknown_view_query(self, model):
        with pytest.raises(UnknownViewError):
            model.authorize_view_query("alice", "NOPE")
