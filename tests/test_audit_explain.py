"""Unit tests for the audit trail and the explain renderer."""

import pytest

from repro.core import AuditLog, AuthorizationEngine, explain
from repro.workloads.paperdb import (
    EXAMPLE_1_QUERY,
    EXAMPLE_2_QUERY,
    EXAMPLE_3_QUERY,
    build_paper_catalog,
    build_paper_database,
)


@pytest.fixture
def audited_engine():
    database = build_paper_database()
    catalog = build_paper_catalog(database)
    return AuthorizationEngine(database, catalog, audit=AuditLog())


class TestAuditRecording:
    def test_records_appended(self, audited_engine):
        audited_engine.authorize("Brown", EXAMPLE_1_QUERY)
        audited_engine.authorize("Klein", EXAMPLE_2_QUERY)
        assert len(audited_engine.audit) == 2

    def test_record_contents(self, audited_engine):
        audited_engine.authorize("Brown", EXAMPLE_1_QUERY)
        (entry,) = audited_engine.audit.records()
        assert entry.user == "Brown"
        assert entry.outcome == "partial"
        assert entry.admissible_views == ("PSA",)
        assert "SPONSOR = Acme" in entry.permit_statements[0]
        assert "retrieve" in entry.statement

    def test_outcomes(self, audited_engine):
        audited_engine.authorize("Brown", EXAMPLE_1_QUERY)   # partial
        audited_engine.authorize("Brown", EXAMPLE_3_QUERY)   # full
        audited_engine.authorize("nobody", EXAMPLE_1_QUERY)  # denied
        counts = audited_engine.audit.outcome_counts()
        assert counts == {"denied": 1, "partial": 1, "full": 1}

    def test_per_user_filter(self, audited_engine):
        audited_engine.authorize("Brown", EXAMPLE_1_QUERY)
        audited_engine.authorize("Klein", EXAMPLE_2_QUERY)
        assert len(audited_engine.audit.records("Brown")) == 1
        assert audited_engine.audit.outcome_counts("Klein")["partial"] == 1

    def test_delivered_fraction(self, audited_engine):
        audited_engine.authorize("Brown", EXAMPLE_1_QUERY)  # 2/4 cells
        assert audited_engine.audit.delivered_fraction() == pytest.approx(0.5)
        assert audited_engine.audit.delivered_fraction("ghost") == 1.0

    def test_capacity_bound(self):
        database = build_paper_database()
        catalog = build_paper_catalog(database)
        engine = AuthorizationEngine(
            database, catalog, audit=AuditLog(capacity=2)
        )
        for _ in range(5):
            engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert len(engine.audit) == 2
        assert engine.audit.records()[0].sequence == 4

    def test_report_rendering(self, audited_engine):
        audited_engine.authorize("Brown", EXAMPLE_1_QUERY)
        report = audited_engine.audit.report()
        assert "Brown: partial (2/4 cells) via PSA" in report
        assert "1 requests" in report

    def test_empty_report(self):
        assert "no authorizations" in AuditLog().report()

    def test_no_audit_by_default(self, paper_engine):
        paper_engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert paper_engine.audit is None


class TestExplain:
    def test_contains_all_stages(self, paper_engine):
        text = explain(paper_engine, "Klein", EXAMPLE_2_QUERY)
        for heading in (
            "-- query --",
            "-- algebra plan (S) --",
            "-- stage-one pruning --",
            "-- pruned EMPLOYEE' --",
            "-- meta-product after replications are removed --",
            "-- after projection --",
            "-- the mask A' --",
            "-- delivered answer --",
            "-- delivery statistics --",
        ):
            assert heading in text, heading

    def test_selection_steps_labelled(self, paper_engine):
        text = explain(paper_engine, "Klein", EXAMPLE_2_QUERY)
        assert "after selection TITLE = engineer" in text
        assert "after selection NAME = E_NAME" in text

    def test_selfjoin_section_for_example3(self, paper_engine):
        text = explain(paper_engine, "Brown", EXAMPLE_3_QUERY)
        assert "self-join yields in EMPLOYEE'" in text
        assert "x4*" in text

    def test_cli_explain_command(self):
        from repro.cli import Repl
        from repro.workloads import build_paper_engine

        repl = Repl(build_paper_engine(), user="Brown")
        output = repl.process_line(f".explain {EXAMPLE_1_QUERY}")
        assert "the mask A'" in output
        assert "usage" in repl.process_line(".explain")
        assert "error" in repl.process_line(".explain retrieve (X.Y)")
