"""Concurrency differential suite for the serving layer.

The load-bearing assertion: traffic pushed through the concurrent
multi-tenant server is *byte-identical* to a serial replay of each
client's ops through a fresh single-threaded engine.  Around it:
tenant isolation, the revoke-vs-lookup barrier stress (no post-revoke
derivation is ever served), admission-control shedding (degraded
answers stay inside the full-fidelity mask), bounded overload, and
fault injection at the serving sites (one request fails closed, the
shared caches stay clean for everyone else).
"""

from __future__ import annotations

import threading

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.engine import AuthorizationEngine
from repro.core.mask import MASKED
from repro.errors import FaultInjected, ServingError, UnknownTenantError
from repro.metaalgebra.ladder import EMPTY_LEVEL
from repro.resilience.breaker import OPEN
from repro.serving import (
    AdmissionPolicy,
    AuthorizationServer,
    ServerConfig,
)
from repro.testing import faults
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.scenarios import hospital_scenario
from repro.workloads.traffic import (
    TrafficSpec,
    build_traffic,
    delivery_signature,
    drive_server,
    fresh_stack,
    replay_serial,
)


def observable(answer):
    return (
        answer.labels,
        answer.delivered,
        tuple(str(p) for p in answer.permits),
    )


def visible_cells(answer):
    return {
        (i, j, cell)
        for i, row in enumerate(answer.delivered)
        for j, cell in enumerate(row)
        if cell is not MASKED
    }


def small_workload(seed=5):
    generator = WorkloadGenerator(seed)
    spec = WorkloadSpec(seed=seed, relations=3, views=4, users=2,
                        rows_per_relation=8)
    workload = generator.workload(spec)
    queries = [
        generator.query(spec, workload.database.schema)
        for _ in range(4)
    ]
    return workload, queries


# ----------------------------------------------------------------------
# oracle parity
# ----------------------------------------------------------------------

class TestOracleParity:
    @pytest.mark.parametrize("workers", [2, 8])
    def test_concurrent_equals_serial_replay(self, workers):
        spec = TrafficSpec(clients=6, ops_per_client=25, seed=21,
                           distinct_queries=8)
        script = build_traffic(spec)
        workload = fresh_stack(spec)
        with AuthorizationServer(ServerConfig(workers=workers)) \
                as server:
            server.add_tenant("acme", workload.database,
                              workload.catalog)
            concurrent = drive_server(script, server, "acme")
        serial = replay_serial(script)
        for client, (hot, cold) in enumerate(zip(concurrent, serial)):
            assert delivery_signature(hot) == \
                delivery_signature(cold), f"client {client} diverged"

    @pytest.mark.parametrize("workers", [2, 8])
    def test_parity_survives_grant_churn(self, workers):
        """Permit/revoke churn mid-traffic: still byte-identical."""
        spec = TrafficSpec(clients=5, ops_per_client=30, seed=33,
                           churn_every=4, distinct_queries=6)
        script = build_traffic(spec)
        assert any(
            op.kind != "query"
            for ops in script.clients for op in ops
        ), "spec produced no churn — the test would prove nothing"
        workload = fresh_stack(spec)
        with AuthorizationServer(ServerConfig(workers=workers)) \
                as server:
            server.add_tenant("acme", workload.database,
                              workload.catalog)
            concurrent = drive_server(script, server, "acme")
        serial = replay_serial(script)
        for client, (hot, cold) in enumerate(zip(concurrent, serial)):
            assert delivery_signature(hot) == \
                delivery_signature(cold), f"client {client} diverged"

    def test_traffic_scripts_are_deterministic(self):
        spec = TrafficSpec(clients=4, ops_per_client=20, seed=9,
                           churn_every=3)
        assert build_traffic(spec).clients == \
            build_traffic(spec).clients

    def test_batching_actually_happens(self):
        """The throughput story rests on batch formation; prove the
        server forms multi-request batches under a backed-up queue."""
        workload, queries = small_workload()
        server = AuthorizationServer(ServerConfig(workers=1))
        server.add_tenant("t", workload.database, workload.catalog)
        user = workload.users[0]
        futures = [
            server.submit("t", user, queries[i % len(queries)])
            for i in range(40)
        ]
        for future in futures:
            future.result()
        server.close()
        telemetry = server.telemetry()
        assert telemetry.served == 40
        assert telemetry.largest_batch > 1


# ----------------------------------------------------------------------
# tenant isolation
# ----------------------------------------------------------------------

class TestTenantIsolation:
    def test_grants_do_not_cross_tenants(self):
        """Same database, same users, different tenants: a grant in
        one tenant is invisible in the other."""
        workload, queries = small_workload()
        other = small_workload()[0]  # independent catalog, same spec
        user, query = workload.users[0], queries[0]
        with AuthorizationServer() as server:
            server.add_tenant("a", workload.database, workload.catalog)
            server.add_tenant("b", other.database, other.catalog)
            before_b = server.authorize("b", user, query)
            # Mutate tenant a only: revoke everything from the user.
            engine_a = server.tenants.get("a").engine
            for view in list(engine_a.catalog.views_of(user)):
                engine_a.revoke(view, user)
            after_a = server.authorize("a", user, query)
            after_b = server.authorize("b", user, query)
        assert visible_cells(after_a) == set()
        assert observable(after_b) == observable(before_b)

    def test_caches_are_per_tenant(self):
        workload, queries = small_workload()
        other = small_workload()[0]
        user, query = workload.users[0], queries[0]
        with AuthorizationServer() as server:
            server.add_tenant("a", workload.database, workload.catalog)
            server.add_tenant("b", other.database, other.catalog)
            server.authorize("a", user, query)
            telemetry = server.telemetry()
        assert telemetry.cache_stats["a"].lookups > 0
        assert telemetry.cache_stats["b"].lookups == 0

    def test_unknown_tenant_is_refused_synchronously(self):
        with AuthorizationServer() as server:
            with pytest.raises(UnknownTenantError):
                server.submit("ghost", "user", "retrieve (R.A)")

    def test_duplicate_tenant_is_refused(self):
        workload, _ = small_workload()
        with AuthorizationServer() as server:
            server.add_tenant("a", workload.database, workload.catalog)
            with pytest.raises(ServingError):
                server.add_tenant("a", workload.database,
                                  workload.catalog)

    def test_submit_after_close_is_refused(self):
        workload, queries = small_workload()
        server = AuthorizationServer()
        server.add_tenant("a", workload.database, workload.catalog)
        server.close()
        with pytest.raises(ServingError):
            server.submit("a", workload.users[0], queries[0])


# ----------------------------------------------------------------------
# revoke-vs-lookup stress
# ----------------------------------------------------------------------

class TestRevokeVersusLookup:
    def test_no_post_revoke_derivation_is_served(self):
        """Hammer one hot (user, query) from many threads while the
        grant behind it is revoked.  Every answer must match one of
        the two legal states (pre- or post-revoke), and every answer
        issued after the revoke returns must match the post state —
        a cached pre-revoke mask surviving is a security hole."""
        scenario = hospital_scenario()
        engine = scenario.engine
        user = "nurse"
        query = "retrieve (PATIENT.NAME, PATIENT.WARD)"
        view = engine.catalog.views_of(user)[0]

        oracle = AuthorizationEngine(
            engine.database, engine.catalog,
            DEFAULT_CONFIG.but(derivation_cache_size=0),
        )
        pre = observable(oracle.authorize(user, query))

        server = AuthorizationServer(ServerConfig(workers=4))
        server.adopt_tenant("hospital", engine)
        server.authorize("hospital", user, query)  # warm the cache

        threads = 6
        barrier = threading.Barrier(threads + 1)
        revoked = threading.Event()
        in_flight = []
        post_revoke = []

        def hammer():
            barrier.wait()
            while not revoked.is_set():
                in_flight.append(
                    observable(server.authorize("hospital", user,
                                                query))
                )
            # Issued strictly after revoke() returned:
            post_revoke.append(
                observable(server.authorize("hospital", user, query))
            )

        workers = [threading.Thread(target=hammer, daemon=True)
                   for _ in range(threads)]
        for worker in workers:
            worker.start()
        barrier.wait()
        engine.revoke(view, user)
        revoked.set()
        for worker in workers:
            worker.join()
        server.close()

        post = observable(oracle.authorize(user, query))
        assert post != pre, "revoke did not change the answer — vacuous"
        for answer in in_flight:
            assert answer in (pre, post), \
                "answer matches neither legal grant state"
        for answer in post_revoke:
            assert answer == post, \
                "stale pre-revoke derivation served after revoke"


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------

def flood(server, tenant, user, queries, count):
    """Open-loop submits (no waiting), so backlog actually builds."""
    return [
        server.submit(tenant, user, queries[i % len(queries)])
        for i in range(count)
    ]


class TestAdmissionControl:
    def test_degraded_answers_stay_inside_the_full_mask(self):
        workload, queries = small_workload(seed=13)
        user = workload.users[0]
        oracle = AuthorizationEngine(workload.database,
                                     workload.catalog)
        full = {
            str(query): visible_cells(oracle.authorize(user, query))
            for query in queries
        }
        policy = AdmissionPolicy(shed_thresholds=(2, 4, 6, 8))
        # max_batch=2 keeps a backed-up queue *behind* each drained
        # batch, so the mid rungs actually fire (the floor excludes
        # the batch in hand).
        server = AuthorizationServer(
            ServerConfig(workers=1, max_batch=2, admission=policy)
        )
        server.add_tenant("t", workload.database, workload.catalog)
        futures = flood(server, "t", user, queries, 60)
        answers = [future.result() for future in futures]
        server.close()
        levels = {answer.degradation_level for answer in answers}
        assert levels - {0}, "flood never shed — the test is vacuous"
        for answer in answers:
            assert visible_cells(answer) <= full[str(answer.query)], (
                f"degraded answer (rung {answer.degradation_level}) "
                f"delivered cells outside the full-fidelity mask"
            )

    def test_backlog_is_bounded_by_the_hard_limit(self):
        workload, queries = small_workload(seed=17)
        policy = AdmissionPolicy(shed_thresholds=(1, 2, 3, 4))
        server = AuthorizationServer(
            ServerConfig(workers=1, admission=policy)
        )
        server.add_tenant("t", workload.database, workload.catalog)
        futures = flood(server, "t", workload.users[0], queries, 50)
        answers = [future.result() for future in futures]
        server.close()
        telemetry = server.telemetry()
        assert telemetry.admission.max_backlog <= policy.hard_limit
        assert telemetry.admission.hard_sheds > 0
        shed = [a for a in answers
                if a.degradation_level == EMPTY_LEVEL]
        assert shed, "hard limit never produced an EMPTY answer"
        for answer in shed:
            assert answer.delivered == ()
            assert answer.error is not None

    def test_recovery_after_overload(self):
        """Once the flood drains, fresh requests run full fidelity."""
        workload, queries = small_workload(seed=19)
        policy = AdmissionPolicy(shed_thresholds=(1, 2, 3, 4))
        server = AuthorizationServer(
            ServerConfig(workers=2, admission=policy)
        )
        server.add_tenant("t", workload.database, workload.catalog)
        user = workload.users[0]
        for future in flood(server, "t", user, queries, 30):
            future.result()
        calm = server.authorize("t", user, queries[0])
        server.close()
        assert calm.degradation_level == 0
        assert calm.error is None

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(shed_thresholds=())
        with pytest.raises(ValueError):
            AdmissionPolicy(shed_thresholds=(4, 2))
        with pytest.raises(ValueError):
            AdmissionPolicy(shed_thresholds=(0, 1))
        with pytest.raises(ValueError):
            AdmissionPolicy(breaker_floor=5)


# ----------------------------------------------------------------------
# per-request deadlines and breaker-fed admission
# ----------------------------------------------------------------------

class TestRequestDeadlines:
    def test_expired_requests_degrade_instead_of_stalling(self):
        workload, queries = small_workload(seed=23)
        user = workload.users[0]
        # A 100ns budget expires before any worker can drain, so
        # every request takes the deadline path deterministically.
        server = AuthorizationServer(ServerConfig(
            workers=1, max_batch=4, cache_capacity=0,
            request_deadline_ms=1e-4,
        ))
        server.add_tenant("t", workload.database, workload.catalog)
        futures = flood(server, "t", user, queries, 20)
        answers = [future.result() for future in futures]
        server.close()
        telemetry = server.telemetry()
        assert telemetry.admission.deadline_sheds == len(answers)
        for answer in answers:
            # Default deadline floor is the EMPTY rung: answered
            # immediately, nothing delivered, fail-closed error set.
            assert answer.degradation_level == EMPTY_LEVEL
            assert answer.delivered == ()
            assert "deadline" in (answer.error or "")

    def test_mid_rung_deadline_floor_still_answers(self):
        workload, queries = small_workload(seed=23)
        user = workload.users[0]
        oracle = AuthorizationEngine(workload.database,
                                     workload.catalog)
        full = {
            str(query): visible_cells(oracle.authorize(user, query))
            for query in queries
        }
        server = AuthorizationServer(ServerConfig(
            workers=1, max_batch=4, cache_capacity=0,
            request_deadline_ms=1e-4, deadline_floor=1,
        ))
        server.add_tenant("t", workload.database, workload.catalog)
        futures = flood(server, "t", user, queries, 12)
        answers = [future.result() for future in futures]
        server.close()
        assert server.telemetry().admission.deadline_sheds \
            == len(answers)
        for answer in answers:
            assert answer.degradation_level >= 1
            # Deadline shedding narrows delivery, never widens it.
            assert visible_cells(answer) <= full[str(answer.query)]

    def test_deadline_config_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(request_deadline_ms=-1.0)
        with pytest.raises(ValueError):
            ServerConfig(deadline_floor=0)
        with pytest.raises(ValueError):
            ServerConfig(deadline_floor=5)


class TestBreakerAdmission:
    def test_open_breaker_raises_only_that_tenants_floor(self):
        workload, queries = small_workload(seed=29)
        user = workload.users[0]
        server = AuthorizationServer(ServerConfig(
            workers=1, cache_capacity=0,
            engine=DEFAULT_CONFIG.but(
                backend="sqlite",
                breaker_recovery_ms=3.6e6,  # stays open for the test
            ),
        ))
        server.add_tenant("a", workload.database, workload.catalog)
        server.add_tenant("b", workload.database, workload.catalog)
        breaker = server.tenants.get("a").engine.executor.breaker
        for _ in range(DEFAULT_CONFIG.breaker_failure_threshold):
            breaker.record_failure()
        assert breaker.state == OPEN

        degraded = server.authorize("a", user, queries[0])
        healthy = server.authorize("b", user, queries[0])
        snapshot = server.telemetry().admission
        # Tenant a runs on oracle failover under the breaker floor;
        # tenant b is untouched — breaker state is per tenant.
        assert degraded.degradation_level \
            == server.config.admission.breaker_floor
        assert degraded.error is None
        assert degraded.backend_used == "python"
        assert healthy.degradation_level == 0
        assert healthy.backend_used == "sqlite"
        assert ("a", server.config.admission.breaker_floor) \
            in snapshot.tenant_floors
        assert all(name != "b" for name, _ in snapshot.tenant_floors)

        # The floor lifts on the first drain after the breaker closes.
        breaker.record_success()
        recovered = server.authorize("a", user, queries[1])
        server.close()
        assert recovered.degradation_level == 0
        assert recovered.backend_used == "sqlite"
        assert server.telemetry().admission.tenant_floors == ()


# ----------------------------------------------------------------------
# fault injection at the serving sites
# ----------------------------------------------------------------------

class TestServingFaults:
    def test_batch_fault_fails_closed_for_that_batch_only(self):
        workload, queries = small_workload(seed=23)
        user, query = workload.users[0], queries[0]
        server = AuthorizationServer(ServerConfig(workers=1))
        server.add_tenant("t", workload.database, workload.catalog)
        clean = server.authorize("t", user, query)
        assert clean.error is None

        with faults.inject(
            {"serving.batch": faults.Fault("raise", times=1)}
        ) as plan:
            denied = server.authorize("t", user, query)
            after = server.authorize("t", user, query)
        server.close()
        assert plan.trips["serving.batch"] == 1
        assert denied.error is not None
        assert denied.delivered == ()
        assert denied.degradation_level == EMPTY_LEVEL
        # The failure denied one request; it did not poison the
        # shared cache or the engine for the next request.
        assert observable(after) == observable(clean)

    def test_batch_fault_does_not_leak_across_tenants(self):
        workload, queries = small_workload(seed=29)
        other = small_workload(seed=29)[0]
        user, query = workload.users[0], queries[0]
        server = AuthorizationServer(ServerConfig(workers=1))
        server.add_tenant("a", workload.database, workload.catalog)
        server.add_tenant("b", other.database, other.catalog)
        baseline = server.authorize("b", user, query)
        with faults.inject(
            {"serving.batch": faults.Fault("raise", times=1)}
        ):
            denied = server.authorize("a", user, query)
            fine = server.authorize("b", user, query)
        server.close()
        assert denied.error is not None
        assert observable(fine) == observable(baseline)

    def test_submit_fault_rejects_before_admission(self):
        workload, queries = small_workload(seed=31)
        server = AuthorizationServer()
        server.add_tenant("t", workload.database, workload.catalog)
        with faults.inject(
            {"serving.submit": faults.Fault("raise", times=1)}
        ):
            with pytest.raises(FaultInjected):
                server.submit("t", workload.users[0], queries[0])
        # The refused request consumed no admission slot.
        assert server.telemetry().admission.backlog == 0
        answer = server.authorize("t", workload.users[0], queries[0])
        server.close()
        assert answer.error is None


# ----------------------------------------------------------------------
# audit under concurrency
# ----------------------------------------------------------------------

class TestConcurrentAudit:
    def test_audit_trail_is_gapless_under_concurrency(self):
        spec = TrafficSpec(clients=6, ops_per_client=20, seed=41,
                           distinct_queries=5)
        script = build_traffic(spec)
        workload = fresh_stack(spec)
        with AuthorizationServer(ServerConfig(workers=8)) as server:
            server.add_tenant("t", workload.database, workload.catalog)
            drive_server(script, server, "t")
            audit = server.tenants.get("t").audit
            records = audit.records()
        assert len(records) == script.total_queries
        sequences = [record.sequence for record in records]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)
        assert sequences[0] == 1 and sequences[-1] == len(sequences)
