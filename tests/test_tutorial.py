"""Execute docs/TUTORIAL.md as doctests — the tutorial cannot rot."""

import doctest
from pathlib import Path

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


def test_tutorial_examples_run():
    results = doctest.testfile(
        str(TUTORIAL),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.failed == 0, f"{results.failed} tutorial example(s) failed"
    assert results.attempted > 10  # the tutorial actually ran
