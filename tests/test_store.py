"""Unit tests for the constraint store (the COMPARISON relation)."""

import pytest

from repro.errors import ReproError
from repro.predicates.comparators import Comparator
from repro.predicates.intervals import Interval
from repro.predicates.store import ConstraintStore, VarRelation


class TestVarRelation:
    def test_canonical_orientation(self):
        assert VarRelation.make("x", Comparator.GT, "y") == \
            VarRelation.make("y", Comparator.LT, "x")

    def test_ne_sorted(self):
        assert VarRelation.make("y", Comparator.NE, "x") == \
            VarRelation.make("x", Comparator.NE, "y")

    def test_eq_rejected(self):
        with pytest.raises(ReproError):
            VarRelation.make("x", Comparator.EQ, "y")

    def test_other(self):
        relation = VarRelation.make("x", Comparator.LT, "y")
        assert relation.other("x") == "y"
        assert relation.other("y") == "x"


class TestBasics:
    def test_empty(self):
        store = ConstraintStore.empty()
        assert store.is_empty()
        assert store.interval_for("x").is_top
        assert not store.is_definitely_unsat()

    def test_constrain(self):
        store = ConstraintStore.empty().constrain(
            "x", Comparator.GE, 250_000
        )
        assert store.interval_for("x").contains(250_000)
        assert not store.interval_for("x").contains(249_999)

    def test_constrain_accumulates(self):
        store = (ConstraintStore.empty()
                 .constrain("x", Comparator.GE, 10)
                 .constrain("x", Comparator.LE, 20))
        interval = store.interval_for("x")
        assert interval.contains(15)
        assert not interval.contains(25)

    def test_immutability(self):
        base = ConstraintStore.empty()
        base.constrain("x", Comparator.GE, 1)
        assert base.is_empty()

    def test_mentioned_vars(self):
        store = (ConstraintStore.empty()
                 .constrain("x", Comparator.GE, 1)
                 .relate("y", Comparator.LT, "z"))
        assert store.mentioned_vars() == frozenset({"x", "y", "z"})

    def test_equality_and_hash(self):
        a = ConstraintStore.empty().constrain("x", Comparator.GE, 1)
        b = ConstraintStore.empty().constrain("x", Comparator.GE, 1)
        assert a == b and hash(a) == hash(b)


class TestSubstitute:
    def test_in_range(self):
        store = ConstraintStore.empty().constrain("x", Comparator.GE, 10)
        assert not store.substitute("x", 15).is_definitely_unsat()

    def test_out_of_range(self):
        store = ConstraintStore.empty().constrain("x", Comparator.GE, 10)
        assert store.substitute("x", 5).is_definitely_unsat()

    def test_relation_folds_onto_other_var(self):
        store = ConstraintStore.empty().relate("x", Comparator.LT, "y")
        bound = store.substitute("x", 10)
        assert not bound.interval_for("y").contains(10)
        assert bound.interval_for("y").contains(11)

    def test_relation_folds_flipped(self):
        store = ConstraintStore.empty().relate("x", Comparator.LT, "y")
        bound = store.substitute("y", 10)
        assert bound.interval_for("x").contains(9)
        assert not bound.interval_for("x").contains(10)

    def test_ne_relation_folds(self):
        store = ConstraintStore.empty().relate("x", Comparator.NE, "y")
        bound = store.substitute("x", 10)
        assert not bound.interval_for("y").contains(10)


class TestUnify:
    def test_intervals_intersect(self):
        store = (ConstraintStore.empty()
                 .constrain("x", Comparator.GE, 10)
                 .constrain("y", Comparator.LE, 20))
        merged = store.unify("x", "y")
        interval = merged.interval_for("x")
        assert interval.contains(15)
        assert not interval.contains(5) and not interval.contains(25)

    def test_self_relation_becomes_unsat(self):
        store = ConstraintStore.empty().relate("x", Comparator.LT, "y")
        assert store.unify("x", "y").is_definitely_unsat()

    def test_le_self_relation_is_fine(self):
        store = ConstraintStore.empty().relate("x", Comparator.LE, "y")
        assert not store.unify("x", "y").is_definitely_unsat()

    def test_unify_identity(self):
        store = ConstraintStore.empty().constrain("x", Comparator.GE, 1)
        assert store.unify("x", "x") is store


class TestSatisfiability:
    def test_empty_interval_unsat(self):
        store = (ConstraintStore.empty()
                 .constrain("x", Comparator.GT, 10)
                 .constrain("x", Comparator.LT, 5))
        assert store.is_definitely_unsat()

    def test_chain_propagation(self):
        # x >= 10, x < y, y < z, z <= 11 is unsatisfiable over ints.
        store = (ConstraintStore.empty()
                 .constrain("x", Comparator.GE, 10)
                 .relate("x", Comparator.LT, "y")
                 .relate("y", Comparator.LT, "z")
                 .constrain("z", Comparator.LE, 10))
        assert store.is_definitely_unsat()

    def test_satisfiable_chain(self):
        store = (ConstraintStore.empty()
                 .constrain("x", Comparator.GE, 10)
                 .relate("x", Comparator.LT, "y")
                 .constrain("y", Comparator.LE, 100))
        assert not store.is_definitely_unsat()

    def test_ne_between_equal_points(self):
        store = (ConstraintStore.empty()
                 .constrain("x", Comparator.EQ, 5)
                 .constrain("y", Comparator.EQ, 5)
                 .relate("x", Comparator.NE, "y"))
        assert store.is_definitely_unsat()

    def test_satisfied_by_binding(self):
        store = (ConstraintStore.empty()
                 .constrain("x", Comparator.GE, 10)
                 .relate("x", Comparator.LT, "y"))
        assert store.satisfied_by({"x": 10, "y": 11})
        assert not store.satisfied_by({"x": 10, "y": 10})
        assert not store.satisfied_by({"x": 9})
        # Partial binding with a satisfiable residual is accepted.
        assert store.satisfied_by({"x": 10})


class TestScoping:
    def test_restrict_closure_direct(self):
        store = (ConstraintStore.empty()
                 .constrain("x", Comparator.GE, 1)
                 .constrain("z", Comparator.GE, 9))
        restricted = store.restrict_closure({"x"})
        assert not restricted.interval_for("x").is_top
        assert restricted.interval_for("z").is_top

    def test_restrict_closure_transitive(self):
        # x relates to y, y is bounded: y's bound must survive.
        store = (ConstraintStore.empty()
                 .relate("x", Comparator.LT, "y")
                 .constrain("y", Comparator.LE, 5)
                 .constrain("w", Comparator.GE, 0))
        restricted = store.restrict_closure({"x"})
        assert not restricted.interval_for("y").is_top
        assert restricted.interval_for("w").is_top

    def test_merge(self):
        a = ConstraintStore.empty().constrain("x", Comparator.GE, 10)
        b = ConstraintStore.empty().constrain("x", Comparator.LE, 20)
        merged = a.merge(b)
        assert not merged.interval_for("x").contains(25)
        assert merged.interval_for("x").contains(15)

    def test_rename(self):
        store = (ConstraintStore.empty()
                 .constrain("x", Comparator.GE, 1)
                 .relate("x", Comparator.LT, "y"))
        renamed = store.rename({"x": "a", "y": "b"})
        assert not renamed.interval_for("a").is_top
        assert renamed.relations_of("a")[0].other("a") == "b"

    def test_replace_interval_with_top_removes(self):
        store = ConstraintStore.empty().constrain("x", Comparator.GE, 1)
        assert store.replace_interval("x", Interval.top()).is_empty()
