"""The experimental ``require_star_for_selection=False`` flag.

The flag enables INGRES-flavoured delivery of query-predicate-selected
subsets of views.  These tests document both what it buys (the
Section 6(3)-style reductions) and what it costs: a demonstrable
non-interference violation — which is exactly why it is off by default.
"""

import pytest

from repro.baselines.oracle import check_non_interference
from repro.config import DEFAULT_CONFIG
from repro.core.engine import AuthorizationEngine
from repro.core.mask import MASKED
from repro.meta.catalog import PermissionCatalog
from repro.workloads.paperdb import build_paper_database

EXPERIMENTAL = DEFAULT_CONFIG.but(require_star_for_selection=False)


def catalog_with_names_view(database):
    catalog = PermissionCatalog(database.schema)
    # Names of employees; SALARY is neither projected nor constrained.
    catalog.define_view("view N (EMPLOYEE.NAME)")
    catalog.permit("N", "eve")
    return catalog


QUERY = "retrieve (EMPLOYEE.NAME) where EMPLOYEE.SALARY > 30,000"


class TestWhatItBuys:
    def test_sound_default_masks(self):
        database = build_paper_database()
        engine = AuthorizationEngine(
            database, catalog_with_names_view(database), DEFAULT_CONFIG
        )
        assert engine.authorize("eve", QUERY).is_fully_masked

    def test_flag_delivers_the_selected_subset(self):
        database = build_paper_database()
        engine = AuthorizationEngine(
            database, catalog_with_names_view(database), EXPERIMENTAL
        )
        answer = engine.authorize("eve", QUERY)
        assert ("Brown",) in answer.delivered  # salary 32k > 30k


class TestWhatItCosts:
    def test_non_interference_violation_is_demonstrable(self):
        """Two instances agreeing on view N (same names) but differing
        in hidden salaries produce different deliveries under the flag
        — the leak the sound default prevents."""
        first = build_paper_database()
        second = build_paper_database()
        second.load("EMPLOYEE", [
            ("Jones", "manager", 26_000),
            ("Smith", "technician", 22_000),
            ("Brown", "engineer", 29_000),   # now below the probe
        ])
        catalog = catalog_with_names_view(first)

        ok_default, _ = check_non_interference(
            catalog, "eve", QUERY, first, second, config=DEFAULT_CONFIG
        )
        assert ok_default

        ok_flag, message = check_non_interference(
            catalog, "eve", QUERY, first, second, config=EXPERIMENTAL
        )
        assert not ok_flag
        assert "VIOLATION" in message
