"""Unit and differential-parity tests for ``repro.resilience``.

This is the parity suite soundlint SL009 pins the
``ResilientExecutor`` to: every failover path must deliver answers
identical to its registered oracle (``PythonBackend``) — the property
that makes failover an availability mechanism rather than a soundness
hole.  Alongside the parity pins, the suite unit-tests the
deterministic ``RetryPolicy``, the ``CircuitBreaker`` state machine
(with a fake clock), and the engine-level wiring: ``backend_used`` /
``failover_reason`` on answers and audit records, construction-time
failover, and the typed ``BackendUnavailableError`` escape when
failover is disabled.
"""

from __future__ import annotations

import pytest

from repro.algebra.database import build_database
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.backends import PythonBackend, SQLiteBackend, make_backend
from repro.config import DEFAULT_CONFIG
from repro.core.audit import AuditLog
from repro.core.engine import AuthorizationEngine
from repro.errors import (
    BackendError,
    BackendUnavailableError,
    FaultInjected,
)
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
    ResilientExecutor,
    RetryPolicy,
)
from repro.testing import faults


def small_database():
    emp = make_schema(
        "EMP", [("NAME", STRING), ("DEPT", STRING), ("SAL", INTEGER)],
        key=["NAME"],
    )
    return build_database([emp], {
        "EMP": [("amy", "toys", 30), ("bob", "tools", 45),
                ("cal", "toys", 52)],
    })


def make_engine(**config_changes):
    engine = AuthorizationEngine(
        small_database(),
        config=DEFAULT_CONFIG.but(**config_changes),
        audit=AuditLog(),
    )
    engine.define_view("view V (EMP.NAME, EMP.DEPT)")
    engine.permit("V", "u")
    return engine


QUERY = "retrieve (EMP.NAME, EMP.DEPT)"


class FakeClock:
    """A hand-advanced monotonic clock for breaker tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FlakyBackend:
    """A backend that fails a scripted number of times, then works."""

    name = "flaky"

    def __init__(self, inner, failures):
        self.inner = inner
        self.failures = failures
        self.calls = 0

    def load(self, database):
        self.inner.load(database)

    def execute(self, plan):
        self.calls += 1
        if self.failures > 0:
            self.failures -= 1
            raise BackendError("scripted failure")
        return self.inner.execute(plan)

    def execute_masked(self, plan, mask, compiled=None,
                       drop_fully_masked=False):
        self.calls += 1
        if self.failures > 0:
            self.failures -= 1
            raise BackendError("scripted failure")
        return self.inner.execute_masked(
            plan, mask, compiled=compiled,
            drop_fully_masked=drop_fully_masked,
        )


class TestRetryPolicy:
    def test_defaults_are_immediate(self):
        policy = RetryPolicy()
        assert policy.attempts == 2
        assert list(policy.delays_ms()) == [0.0]

    def test_exponential_schedule(self):
        policy = RetryPolicy(attempts=4, base_delay_ms=10.0)
        assert list(policy.delays_ms()) == [10.0, 20.0, 40.0]

    def test_max_delay_caps_the_schedule(self):
        policy = RetryPolicy(
            attempts=8, base_delay_ms=10.0, max_delay_ms=25.0
        )
        assert max(policy.delays_ms()) == 25.0

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(attempts=5, base_delay_ms=10.0,
                        jitter_ms=5.0, seed=7)
        b = RetryPolicy(attempts=5, base_delay_ms=10.0,
                        jitter_ms=5.0, seed=7)
        c = RetryPolicy(attempts=5, base_delay_ms=10.0,
                        jitter_ms=5.0, seed=8)
        assert list(a.delays_ms()) == list(b.delays_ms())
        assert list(a.delays_ms()) != list(c.delays_ms())
        for attempt in range(1, 5):
            assert 0.0 <= a.jitter_fraction(attempt) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ms=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay_ms(0)


class TestCircuitBreaker:
    def make(self, threshold=2, recovery_ms=1000.0):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=threshold,
                          recovery_ms=recovery_ms),
            clock,
        )
        return breaker, clock

    def test_opens_at_threshold(self):
        breaker, _ = self.make(threshold=3)
        assert breaker.state == CLOSED
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opened_count == 1

    def test_success_resets_the_failure_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_single_probe(self):
        breaker, clock = self.make(threshold=1, recovery_ms=500.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(0.6)
        # First caller after the cool-down claims the probe...
        assert breaker.allow()
        assert breaker.state == HALF_OPEN
        # ...and everyone else keeps failing over meanwhile.
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        breaker, clock = self.make(threshold=1, recovery_ms=500.0)
        breaker.record_failure()
        clock.advance(0.6)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opened_count == 2
        assert not breaker.allow()
        clock.advance(0.6)
        assert breaker.allow()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(recovery_ms=-1.0)


class TestResilientExecutor:
    """Direct executor tests over a scripted flaky backend."""

    def make(self, failures, attempts=2, failover=True,
             threshold=5, recovery_ms=1000.0):
        database = small_database()
        oracle = PythonBackend(database)
        flaky = FlakyBackend(SQLiteBackend(database), failures)
        clock = FakeClock()
        executor = ResilientExecutor(
            primary=flaky,
            oracle=oracle,
            retry=RetryPolicy(attempts=attempts),
            breaker_policy=BreakerPolicy(
                failure_threshold=threshold, recovery_ms=recovery_ms,
            ),
            failover=failover,
            clock=clock,
        )
        plan = AuthorizationEngine(database)._compile(
            AuthorizationEngine._parse_query(QUERY, "test")
        )
        return executor, flaky, clock, plan, oracle

    def test_clean_call_uses_the_primary(self):
        executor, flaky, _, plan, oracle = self.make(failures=0)
        outcome = executor.execute(plan)
        assert outcome.backend_used == "flaky"
        assert outcome.failover_reason is None
        assert outcome.attempts == 1
        assert outcome.answer == oracle.execute(plan)

    def test_transient_failure_is_retried(self):
        executor, flaky, _, plan, oracle = self.make(
            failures=1, attempts=3
        )
        outcome = executor.execute(plan)
        assert outcome.backend_used == "flaky"
        assert outcome.failover_reason is None
        assert outcome.attempts == 2
        assert outcome.answer == oracle.execute(plan)
        assert executor.breaker.state == CLOSED

    def test_exhaustion_fails_over_with_parity(self):
        executor, flaky, _, plan, oracle = self.make(
            failures=99, attempts=2
        )
        outcome = executor.execute(plan)
        assert outcome.backend_used == "python"
        assert "retry exhausted" in outcome.failover_reason
        assert outcome.attempts == 2
        # The SL009 parity property: the failover answer is exactly
        # what the ResilientExecutor's oracle (PythonBackend) returns.
        assert outcome.answer == oracle.execute(plan)

    def test_open_breaker_skips_the_primary(self):
        executor, flaky, clock, plan, oracle = self.make(
            failures=99, attempts=1, threshold=1,
        )
        first = executor.execute(plan)
        assert "retry exhausted" in first.failover_reason
        assert executor.breaker.state == OPEN
        calls_before = flaky.calls
        second = executor.execute(plan)
        assert flaky.calls == calls_before  # primary never touched
        assert second.backend_used == "python"
        assert second.failover_reason == "circuit breaker open"
        assert second.attempts == 0
        assert second.answer == oracle.execute(plan)

    def test_successful_probe_recloses_the_breaker(self):
        executor, flaky, clock, plan, _ = self.make(
            failures=1, attempts=1, threshold=1, recovery_ms=500.0,
        )
        executor.execute(plan)  # trips the breaker
        assert executor.breaker.state == OPEN
        clock.advance(0.6)
        outcome = executor.execute(plan)  # the half-open probe
        assert outcome.backend_used == "flaky"
        assert executor.breaker.state == CLOSED

    def test_unavailable_backend_fails_over_immediately(self):
        class VanishingBackend(FlakyBackend):
            def execute(self, plan):
                self.calls += 1
                raise BackendUnavailableError("duckdb", "driver gone")

        database = small_database()
        oracle = PythonBackend(database)
        vanishing = VanishingBackend(oracle, 0)
        executor = ResilientExecutor(
            primary=vanishing, oracle=oracle,
            retry=RetryPolicy(attempts=3),
        )
        plan = AuthorizationEngine(database)._compile(
            AuthorizationEngine._parse_query(QUERY, "test")
        )
        outcome = executor.execute(plan)
        assert vanishing.calls == 1  # no retry: it cannot come back
        assert outcome.backend_used == "python"
        assert "driver gone" in outcome.failover_reason
        assert outcome.answer == oracle.execute(plan)

    def test_exhaustion_raises_when_failover_disabled(self):
        executor, _, _, plan, _ = self.make(
            failures=99, attempts=2, failover=False
        )
        with pytest.raises(BackendError):
            executor.execute(plan)

    def test_masked_execution_fails_over_with_parity(self):
        database = small_database()
        engine = AuthorizationEngine(database)
        engine.define_view("view V (EMP.NAME, EMP.DEPT)")
        engine.permit("V", "u")
        derivation = engine.derive("u", QUERY)
        from repro.core.mask import Mask
        mask = Mask.from_table(derivation.mask)
        executor, flaky, _, plan, oracle = self.make(failures=99)
        outcome = executor.execute_masked(plan, mask)
        assert outcome.backend_used == "python"
        assert sorted(outcome.delivered) \
            == sorted(oracle.execute_masked(plan, mask))

    def test_standing_reason_pins_every_outcome(self):
        database = small_database()
        oracle = PythonBackend(database)
        executor = ResilientExecutor(
            primary=oracle, oracle=oracle,
            standing_reason="unavailable at construction: no driver",
        )
        plan = AuthorizationEngine(database)._compile(
            AuthorizationEngine._parse_query(QUERY, "test")
        )
        outcome = executor.execute(plan)
        assert outcome.backend_used == "python"
        assert "unavailable at construction" in outcome.failover_reason
        assert outcome.attempts == 0


class TestEngineFailover:
    """Engine- and audit-level wiring of the failover machinery."""

    def test_failover_answer_matches_the_clean_answer(self):
        engine = make_engine(backend="sqlite")
        clean = engine.authorize("u", QUERY)
        assert clean.backend_used == "sqlite"
        assert not clean.failed_over
        with faults.inject({"backend.execute": faults.Fault("raise")}):
            failed_over = engine.authorize("u", QUERY)
        assert failed_over.error is None
        assert failed_over.backend_used == "python"
        assert failed_over.failed_over
        assert sorted(failed_over.delivered) == sorted(clean.delivered)
        assert failed_over.mask == clean.mask
        assert failed_over.permits == clean.permits

    def test_audit_records_the_reroute(self):
        engine = make_engine(backend="sqlite")
        with faults.inject({"backend.execute": faults.Fault("raise")}):
            engine.authorize("u", QUERY)
        record = engine.audit.records()[-1]
        assert record.backend_used == "python"
        assert "retry exhausted" in record.failover_reason
        assert engine.audit.failover_count() == 1
        assert "[failover:python]" in engine.audit.report()

    def test_transient_fault_is_absorbed_by_retry(self):
        engine = make_engine(backend="sqlite")
        with faults.inject(
            {"backend.execute": faults.Fault("raise", times=1)}
        ) as plan:
            answer = engine.authorize("u", QUERY)
        assert plan.trips["backend.execute"] == 1
        assert answer.backend_used == "sqlite"
        assert not answer.failed_over
        assert answer.error is None

    def test_batch_memo_carries_failover_fields(self):
        engine = make_engine(backend="sqlite")
        with faults.inject({"backend.execute": faults.Fault("raise")}):
            answers = engine.authorize_batch("u", [QUERY, QUERY])
        assert all(a.backend_used == "python" for a in answers)
        assert all(a.failed_over for a in answers)
        assert answers[1].cache_hit

    def test_failover_execute_fault_fails_closed(self):
        # Break the safety net itself: the oracle re-evaluation
        # faults too, and the engine falls back to the fail-closed
        # denial — never an unsound answer.
        engine = make_engine(backend="sqlite")
        with faults.inject({
            "backend.execute": faults.Fault("raise"),
            "failover.execute": faults.Fault("raise"),
        }):
            answer = engine.authorize("u", QUERY)
        assert answer.error is not None
        assert answer.delivered == ()

    def test_python_primary_does_not_pretend_to_fail_over(self):
        engine = make_engine(backend="python")
        with faults.inject({"backend.execute": faults.Fault("raise")}):
            answer = engine.authorize("u", QUERY)
        # Primary *is* the oracle: exhaustion fails closed instead of
        # re-running identical code under a failover banner.
        assert answer.error is not None
        assert answer.delivered == ()

    def test_unknown_backend_still_fails_construction(self):
        with pytest.raises(BackendUnavailableError):
            AuthorizationEngine(
                small_database(),
                config=DEFAULT_CONFIG.but(backend="mystery"),
            )

    def test_retry_sleep_site_is_part_of_the_machinery(self):
        engine = make_engine(backend="sqlite")
        with faults.inject({
            "backend.execute": faults.Fault("raise", times=1),
            "retry.sleep": faults.Fault("raise"),
        }):
            answer = engine.authorize("u", QUERY)
        # The backoff itself faulted; the executor treats that as the
        # end of the retry schedule and the engine still fails closed
        # or over — never raises to the caller.
        assert answer is not None

    def test_breaker_probe_site_fires_on_half_open(self):
        executor_engine = make_engine(
            backend="sqlite",
            breaker_failure_threshold=1,
            breaker_recovery_ms=0.0,
        )
        with faults.inject({"backend.execute": faults.Fault("raise")}):
            executor_engine.authorize("u", QUERY)  # trips breaker
        assert executor_engine.executor.breaker.opened_count >= 1
        with faults.inject(
            {"breaker.probe": faults.Fault("raise")}
        ) as plan:
            answer = executor_engine.authorize("u", QUERY)
        # recovery_ms=0 means the very next call probes; the injected
        # probe fault is retried/failed over like a backend fault.
        assert plan.visits["breaker.probe"] >= 1
        assert answer.error is None


class TestBackendDisappearsMidFlight:
    """Satellite: a lazily-imported driver vanishing between engine
    construction and first execute."""

    def make_vanishing_engine(self, **config_changes):
        engine = AuthorizationEngine(
            small_database(),
            config=DEFAULT_CONFIG.but(
                backend="sqlite", **config_changes
            ),
            audit=AuditLog(),
        )
        engine.define_view("view V (EMP.NAME, EMP.DEPT)")
        engine.permit("V", "u")

        class GoneBackend:
            name = "duckdb"

            def load(self, database):
                pass

            def execute(self, plan):
                raise BackendUnavailableError(
                    "duckdb", "driver disappeared after construction"
                )

            def execute_masked(self, plan, mask, compiled=None,
                               drop_fully_masked=False):
                raise BackendUnavailableError(
                    "duckdb", "driver disappeared after construction"
                )

        gone = GoneBackend()
        engine.backend = gone
        engine.executor.primary = gone
        return engine

    def test_failover_enabled_answers_with_the_oracle(self):
        engine = self.make_vanishing_engine()
        answer = engine.authorize("u", QUERY)
        assert answer.error is None
        assert answer.backend_used == "python"
        assert "disappeared" in answer.failover_reason
        assert answer.delivered

    def test_failover_disabled_raises_typed_error(self):
        # The satellite's contract: a vanished backend is a typed
        # BackendUnavailableError from authorize, not a bare denial —
        # even though fail_closed is on.
        engine = self.make_vanishing_engine(backend_failover=False)
        with pytest.raises(BackendUnavailableError) as exc:
            engine.authorize("u", QUERY)
        assert "disappeared" in str(exc.value)

    def test_failover_disabled_raises_in_batch_too(self):
        engine = self.make_vanishing_engine(backend_failover=False)
        with pytest.raises(BackendUnavailableError):
            engine.authorize_batch("u", [QUERY])


class TestConstructionFailover:
    def test_known_unavailable_backend_runs_on_the_oracle(self):
        # Simulate duckdb's driver being absent by asking make_backend
        # for it only when the driver is genuinely missing; otherwise
        # exercise the same path through a monkeypatched factory.
        try:
            make_backend("duckdb")
            pytest.skip("duckdb driver installed; construction "
                        "failover exercised in environments without it")
        except BackendUnavailableError:
            pass
        engine = AuthorizationEngine(
            small_database(),
            config=DEFAULT_CONFIG.but(backend="duckdb"),
        )
        engine.define_view("view V (EMP.NAME, EMP.DEPT)")
        engine.permit("V", "u")
        answer = engine.authorize("u", QUERY)
        assert answer.error is None
        assert answer.backend_used == "python"
        assert "unavailable at construction" in answer.failover_reason

    def test_known_unavailable_backend_raises_without_failover(self):
        try:
            make_backend("duckdb")
            pytest.skip("duckdb driver installed")
        except BackendUnavailableError:
            pass
        with pytest.raises(BackendUnavailableError):
            AuthorizationEngine(
                small_database(),
                config=DEFAULT_CONFIG.but(
                    backend="duckdb", backend_failover=False,
                ),
            )
