"""Unit tests for the calculus ASTs and their rendering."""

from repro.calculus.ast import (
    AttrRef,
    Condition,
    ConstTerm,
    Query,
    ViewDefinition,
)
from repro.predicates.comparators import Comparator


def ref(rel, attr, occ=1):
    return AttrRef(rel, attr, occ)


class TestAttrRef:
    def test_render_single(self):
        assert str(ref("EMPLOYEE", "NAME")) == "EMPLOYEE.NAME"

    def test_render_occurrence(self):
        assert str(ref("EMPLOYEE", "NAME", 2)) == "EMPLOYEE:2.NAME"

    def test_occurrence_key(self):
        assert ref("R", "A", 3).occurrence_key() == ("R", 3)


class TestConstTerm:
    def test_small_numbers_plain(self):
        assert str(ConstTerm(42)) == "42"

    def test_thousands_separator(self):
        assert str(ConstTerm(250_000)) == "250,000"

    def test_strings(self):
        assert str(ConstTerm("Acme")) == "Acme"


class TestCondition:
    def test_attr_refs(self):
        condition = Condition(ref("R", "A"), Comparator.EQ, ref("S", "B"))
        assert len(condition.attr_refs()) == 2

    def test_attr_refs_with_constant(self):
        condition = Condition(ref("R", "A"), Comparator.GE, ConstTerm(5))
        assert len(condition.attr_refs()) == 1

    def test_str(self):
        condition = Condition(ref("R", "A"), Comparator.GE,
                              ConstTerm(250_000))
        assert str(condition) == "R.A >= 250,000"


class TestQueryRendering:
    def test_simple(self):
        query = Query(
            (ref("PROJECT", "NUMBER"), ref("PROJECT", "SPONSOR")),
            (Condition(ref("PROJECT", "BUDGET"), Comparator.GE,
                       ConstTerm(250_000)),),
        )
        assert str(query) == (
            "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
            "where PROJECT.BUDGET >= 250,000"
        )

    def test_multi_occurrence_shows_indices(self):
        query = Query(
            (ref("E", "N", 1), ref("E", "N", 2)),
            (Condition(ref("E", "T", 1), Comparator.EQ, ref("E", "T", 2)),),
        )
        assert "E:1.N" in str(query) and "E:2.N" in str(query)

    def test_single_occurrence_hides_index(self):
        query = Query((ref("E", "N"),), ())
        assert str(query) == "retrieve (E.N)"

    def test_relation_names(self):
        query = Query(
            (ref("E", "N"),),
            (Condition(ref("E", "N"), Comparator.EQ, ref("A", "E")),),
        )
        assert query.relation_names() == frozenset({"E", "A"})


class TestViewDefinition:
    def test_as_query(self):
        view = ViewDefinition("V", (ref("R", "A"),), ())
        query = view.as_query()
        assert isinstance(query, Query)
        assert query.target == view.target

    def test_str_prefix(self):
        view = ViewDefinition("SAE", (ref("EMPLOYEE", "NAME"),), ())
        assert str(view) == "view SAE (EMPLOYEE.NAME)"
