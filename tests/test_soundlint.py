"""The soundlint analyzer: rule fixtures, suppressions, CLI, live tree.

Each rule gets at least one fixture snippet that must trigger it and
one that must pass; the meta-test at the bottom then pins the real
``src``/``examples`` tree at zero violations, which is what makes the
analyzer a gate rather than a report.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import pytest

from repro.analysis.cli import main
from repro.analysis.framework import Report, Violation, all_rules, run_paths

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_tree(tmp_path: Path, files: Dict[str, str]) -> Path:
    root = tmp_path / "proj"
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


def lint(root: Path, *paths: str,
         select: Optional[Sequence[str]] = None) -> Report:
    return run_paths([root / p for p in paths], select=select, root=root)


def rules_hit(report: Report) -> List[str]:
    return [v.rule for v in report.violations]


# ----------------------------------------------------------------------
# SL000 — the analyzer fails closed
# ----------------------------------------------------------------------


def test_unparseable_file_is_a_violation(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/broken.py": "def oops(:\n",
    })
    report = lint(root, "src")
    assert rules_hit(report) == ["SL000"]
    assert "could not be analyzed" in report.violations[0].message


# ----------------------------------------------------------------------
# SL001 — fail-closed exception discipline
# ----------------------------------------------------------------------

SL001_BAD = """
    def helper() -> None:
        try:
            risky()
        except Exception:
            pass
"""

SL001_BARE = """
    def helper() -> None:
        try:
            risky()
        except:
            pass
"""

SL001_NARROW = """
    from repro.errors import ReproError

    def helper() -> None:
        try:
            risky()
        except ReproError:
            pass
"""

SL001_RERAISE = """
    def helper() -> None:
        try:
            risky()
        except BaseException:
            cleanup()
            raise
"""


@pytest.mark.parametrize("body", [SL001_BAD, SL001_BARE])
def test_sl001_flags_broad_except(tmp_path: Path, body: str) -> None:
    root = make_tree(tmp_path, {"src/repro/core/util.py": body})
    report = lint(root, "src", select=["SL001"])
    assert rules_hit(report) == ["SL001"]
    assert "helper" in report.violations[0].message


@pytest.mark.parametrize("body", [SL001_NARROW, SL001_RERAISE])
def test_sl001_accepts_narrow_or_reraise(tmp_path: Path,
                                         body: str) -> None:
    root = make_tree(tmp_path, {"src/repro/core/util.py": body})
    assert lint(root, "src", select=["SL001"]).clean


def test_sl001_exempts_registered_boundary(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/core/engine.py": """
            class AuthorizationEngine:
                def authorize(self, user: str, query: str) -> str:
                    try:
                        return self._inner(user, query)
                    except Exception as error:
                        return self._failed(error)
        """,
    })
    assert lint(root, "src", select=["SL001"]).clean


def test_sl001_same_method_name_elsewhere_is_not_exempt(
        tmp_path: Path) -> None:
    # The boundary registry is per module:qualname, not per name.
    root = make_tree(tmp_path, {
        "src/repro/core/other.py": """
            class AuthorizationEngine:
                def authorize(self, user: str, query: str) -> str:
                    try:
                        return self._inner(user, query)
                    except Exception:
                        return ""
        """,
    })
    assert rules_hit(lint(root, "src", select=["SL001"])) == ["SL001"]


# ----------------------------------------------------------------------
# SL002 — budget coverage of meta-algebra operators
# ----------------------------------------------------------------------


def test_sl002_flags_operator_without_budget_param(
        tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/metaalgebra/prune.py": """
            def drop_rows(table: MaskTable) -> MaskTable:
                return table
        """,
    })
    report = lint(root, "src", select=["SL002"])
    assert rules_hit(report) == ["SL002"]
    assert "budget" in report.violations[0].message


def test_sl002_flags_operator_that_never_charges(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/metaalgebra/prune.py": """
            def drop_rows(table: MaskTable,
                          budget: Optional[Budget] = None) -> MaskTable:
                return table
        """,
    })
    report = lint(root, "src", select=["SL002"])
    assert rules_hit(report) == ["SL002"]
    assert "never charges" in report.violations[0].message


def test_sl002_accepts_charging_operator(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/metaalgebra/prune.py": """
            def drop_rows(table: MaskTable,
                          budget: Optional[Budget] = None) -> MaskTable:
                if budget is not None:
                    budget.charge_rows(len(table.rows), "prune")
                return table
        """,
    })
    assert lint(root, "src", select=["SL002"]).clean


def test_sl002_ignores_single_tuple_helpers_and_other_modules(
        tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        # A row combiner returns one Optional[MetaTuple]: not an
        # operator materializing a row set.
        "src/repro/metaalgebra/selfjoin.py": """
            def combine(left: MetaTuple,
                        right: MetaTuple) -> Optional[MetaTuple]:
                return left
        """,
        # Same shape outside the budgeted modules: out of scope.
        "src/repro/core/other.py": """
            def rebuild(table: MaskTable) -> MaskTable:
                return table
        """,
    })
    assert lint(root, "src", select=["SL002"]).clean


# ----------------------------------------------------------------------
# SL003 — meta-table immutability
# ----------------------------------------------------------------------


def test_sl003_flags_mutations_of_protected_params(
        tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/metaalgebra/bad.py": """
            def renumber(table: MaskTable) -> MaskTable:
                table.rows.append(None)
                table.columns = ()
                return table
        """,
    })
    report = lint(root, "src", select=["SL003"])
    assert rules_hit(report) == ["SL003", "SL003"]


def test_sl003_accepts_pure_operators(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/metaalgebra/good.py": """
            def renumber(table: MaskTable) -> MaskTable:
                rows = [row for row in table.rows]
                rows.append(None)  # a local list is fair game
                return table.with_rows(rows)
        """,
    })
    assert lint(root, "src", select=["SL003"]).clean


# ----------------------------------------------------------------------
# SL004 — deterministic key construction
# ----------------------------------------------------------------------


def test_sl004_flags_nondeterminism_in_key_modules(
        tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/core/cache.py": """
            import random

            def entry_key(plan: object) -> int:
                return id(plan)

            def shuffle(entries: set) -> list:
                return [e for e in entries if e]
        """,
    })
    report = lint(root, "src", select=["SL004"])
    # import random + id() — the comprehension iterates a *named* set
    # (contents unknown statically), which is mypy's job, not ours.
    assert rules_hit(report) == ["SL004", "SL004"]


def test_sl004_flags_raw_set_iteration(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/metaalgebra/canonical.py": """
            def key_parts(names: list) -> list:
                return [n for n in {x for x in names}]
        """,
    })
    assert rules_hit(lint(root, "src", select=["SL004"])) == ["SL004"]


def test_sl004_ignores_other_modules_and_sorted_sets(
        tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        # random is fine outside the key-producing modules...
        "src/repro/workloads/gen.py": "import random\n",
        # ...and sorted set iteration is fine inside them.
        "src/repro/metaalgebra/canonical.py": """
            def key_parts(names: list) -> list:
                return [n for n in sorted({x for x in names})]
        """,
    })
    assert lint(root, "src", select=["SL004"]).clean


# ----------------------------------------------------------------------
# SL005 — oracle parity for fast paths
# ----------------------------------------------------------------------

# The fixture tree mirrors every FAST_PATHS entry registered for
# repro.core.compiled_mask (the rule checks the *real* registry
# against whatever tree it scans, so a fixture containing that module
# must define all of its registered fast paths).
ORACLE_TREE = {
    "src/repro/core/compiled_mask.py": """
        def compile_mask(mask: object) -> object:
            return mask

        def apply_mask_columnar(compiled: object,
                                answer: object) -> object:
            return answer

        def iter_apply_chunked(compiled: object,
                               rows: object) -> object:
            return rows
    """,
    "src/repro/core/mask.py": """
        class Mask:
            def apply(self, answer: object) -> object:
                return answer
    """,
    "tests/property/test_compiled_mask.py": """
        # differential: compile_mask vs Mask.apply
    """,
    "tests/property/test_columnar_relation.py": """
        # differential: apply_mask_columnar vs Mask.apply
    """,
    "tests/property/test_chunked_apply.py": """
        # differential: iter_apply_chunked vs Mask.apply
    """,
}


def test_sl005_accepts_registered_fast_path(tmp_path: Path) -> None:
    root = make_tree(tmp_path, dict(ORACLE_TREE))
    assert lint(root, "src", select=["SL005"]).clean


def test_sl005_flags_missing_differential_test(tmp_path: Path) -> None:
    files = dict(ORACLE_TREE)
    del files["tests/property/test_compiled_mask.py"]
    root = make_tree(tmp_path, files)
    report = lint(root, "src", select=["SL005"])
    assert rules_hit(report) == ["SL005"]
    assert "missing" in report.violations[0].message


def test_sl005_flags_vanished_oracle(tmp_path: Path) -> None:
    files = dict(ORACLE_TREE)
    files["src/repro/core/mask.py"] = "class Mask:\n    pass\n"
    root = make_tree(tmp_path, files)
    report = lint(root, "src", select=["SL005"])
    # All three registered fast paths in the module share the
    # Mask.apply oracle, so all three report it vanished.
    assert rules_hit(report) == ["SL005"] * 3
    assert all("oracle" in v.message for v in report.violations)


def test_sl005_discovers_unregistered_fast_path(tmp_path: Path) -> None:
    files = dict(ORACLE_TREE)
    files["src/repro/metaalgebra/join.py"] = """
        def meta_join_streaming(rows: list) -> list:
            return rows
    """
    root = make_tree(tmp_path, files)
    report = lint(root, "src", select=["SL005"])
    assert rules_hit(report) == ["SL005"]
    assert "no registered oracle" in report.violations[0].message


# ----------------------------------------------------------------------
# SL006 — no authorize bypass in examples/workloads
# ----------------------------------------------------------------------


def test_sl006_flags_direct_reads_in_examples(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "examples/demo.py": """
            from repro.algebra.evaluate import evaluate

            rows = db.instance("R").rows
            answer = evaluate(plan, db)
        """,
    })
    report = lint(root, "examples", select=["SL006"])
    assert rules_hit(report) == ["SL006", "SL006", "SL006"]


def test_sl006_suppression_needs_the_comment(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "examples/demo.py": """
            rows = db.instance("R").rows  # soundlint: disable=SL006 -- setup
        """,
    })
    report = lint(root, "examples", select=["SL006"])
    assert report.clean
    assert report.suppressed == 1


def test_sl006_ignores_self_and_src_core(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        # A generator's own .instance(...) method is not a Database read.
        "src/repro/workloads/gen.py": """
            class G:
                def build(self, spec: object) -> object:
                    return self.instance(spec, None)
        """,
        # Core engine code legitimately evaluates plans.
        "src/repro/core/runner.py": """
            from repro.algebra.evaluate import evaluate
        """,
    })
    assert lint(root, "src", select=["SL006"]).clean


# ----------------------------------------------------------------------
# SL007 — strict annotation coverage
# ----------------------------------------------------------------------


def test_sl007_flags_missing_annotations(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/core/thing.py": """
            class Thing:
                def __init__(self, size):
                    self.size = size
        """,
    })
    report = lint(root, "src", select=["SL007"])
    assert rules_hit(report) == ["SL007", "SL007"]  # param + return


def test_sl007_accepts_full_annotations(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/core/thing.py": """
            class Thing:
                def __init__(self, size: int, *extra: int,
                             **options: str) -> None:
                    self.size = size

                @classmethod
                def default(cls) -> "Thing":
                    return cls(0)
        """,
    })
    assert lint(root, "src", select=["SL007"]).clean


# ----------------------------------------------------------------------
# SL008 — backend parity
# ----------------------------------------------------------------------

BACKEND_TREE = {
    "src/repro/backends/python.py": """
        class PythonBackend:
            name = "python"
    """,
    "src/repro/backends/sqlite.py": """
        class SQLiteBackend:
            name = "sqlite"
    """,
    "tests/property/test_backend_parity.py": """
        # differential: SQLiteBackend vs PythonBackend
    """,
}


def test_sl008_accepts_registered_backend(tmp_path: Path) -> None:
    root = make_tree(tmp_path, dict(BACKEND_TREE))
    assert lint(root, "src", select=["SL008"]).clean


def test_sl008_flags_missing_parity_test(tmp_path: Path) -> None:
    files = dict(BACKEND_TREE)
    del files["tests/property/test_backend_parity.py"]
    root = make_tree(tmp_path, files)
    report = lint(root, "src", select=["SL008"])
    assert rules_hit(report) == ["SL008"]
    assert "missing" in report.violations[0].message


def test_sl008_flags_vanished_oracle(tmp_path: Path) -> None:
    files = dict(BACKEND_TREE)
    files["src/repro/backends/python.py"] = "NAME = 'python'\n"
    root = make_tree(tmp_path, files)
    report = lint(root, "src", select=["SL008"])
    assert "oracle" in report.violations[0].message


def test_sl008_flags_test_missing_either_class(tmp_path: Path) -> None:
    files = dict(BACKEND_TREE)
    files["tests/property/test_backend_parity.py"] = """
        # mentions SQLiteBackend but not the reference backend
    """
    root = make_tree(tmp_path, files)
    report = lint(root, "src", select=["SL008"])
    assert rules_hit(report) == ["SL008"]
    assert "exercise both" in report.violations[0].message


def test_sl008_flags_vanished_registered_backend(tmp_path: Path) -> None:
    files = dict(BACKEND_TREE)
    files["src/repro/backends/sqlite.py"] = "NAME = 'sqlite'\n"
    root = make_tree(tmp_path, files)
    report = lint(root, "src", select=["SL008"])
    assert rules_hit(report) == ["SL008"]
    assert "no longer exists" in report.violations[0].message


def test_sl008_discovers_unregistered_backend(tmp_path: Path) -> None:
    files = dict(BACKEND_TREE)
    files["src/repro/backends/rocks.py"] = """
        class RocksBackend:
            name = "rocks"
    """
    root = make_tree(tmp_path, files)
    report = lint(root, "src", select=["SL008"])
    assert rules_hit(report) == ["SL008"]
    assert "no registered oracle" in report.violations[0].message


def test_sl008_exempts_oracle_and_protocol(tmp_path: Path) -> None:
    files = dict(BACKEND_TREE)
    files["src/repro/backends/base.py"] = """
        class ExecutionBackend:
            name = "protocol"
    """
    root = make_tree(tmp_path, files)
    assert lint(root, "src", select=["SL008"]).clean


# ----------------------------------------------------------------------
# SL009 — failover oracle pinning
# ----------------------------------------------------------------------

FAILOVER_TREE = {
    "src/repro/resilience/failover.py": """
        class ResilientExecutor:
            def __init__(self, primary, oracle):
                self.primary = primary
                self.oracle = oracle
    """,
    "src/repro/backends/python.py": """
        class PythonBackend:
            name = "python"
    """,
    "tests/test_failover.py": """
        # parity: ResilientExecutor re-routes to PythonBackend
    """,
}


def test_sl009_accepts_registered_failover_path(tmp_path: Path) -> None:
    root = make_tree(tmp_path, dict(FAILOVER_TREE))
    assert lint(root, "src", select=["SL009"]).clean


def test_sl009_flags_vanished_registered_path(tmp_path: Path) -> None:
    files = dict(FAILOVER_TREE)
    files["src/repro/resilience/failover.py"] = "HEDGED = False\n"
    root = make_tree(tmp_path, files)
    report = lint(root, "src", select=["SL009"])
    assert rules_hit(report) == ["SL009"]
    assert "no longer exists" in report.violations[0].message


def test_sl009_flags_vanished_oracle(tmp_path: Path) -> None:
    files = dict(FAILOVER_TREE)
    files["src/repro/backends/python.py"] = "NAME = 'python'\n"
    root = make_tree(tmp_path, files)
    report = lint(root, "src", select=["SL009"])
    assert rules_hit(report) == ["SL009"]
    assert "soundness hole" in report.violations[0].message


def test_sl009_flags_missing_parity_test(tmp_path: Path) -> None:
    files = dict(FAILOVER_TREE)
    del files["tests/test_failover.py"]
    root = make_tree(tmp_path, files)
    report = lint(root, "src", select=["SL009"])
    assert rules_hit(report) == ["SL009"]
    assert "missing" in report.violations[0].message


def test_sl009_flags_test_missing_either_name(tmp_path: Path) -> None:
    files = dict(FAILOVER_TREE)
    files["tests/test_failover.py"] = """
        # mentions ResilientExecutor but never its oracle
    """
    root = make_tree(tmp_path, files)
    report = lint(root, "src", select=["SL009"])
    assert rules_hit(report) == ["SL009"]
    assert "exercise both" in report.violations[0].message


def test_sl009_discovers_unregistered_failover_class(
        tmp_path: Path) -> None:
    files = dict(FAILOVER_TREE)
    files["src/repro/resilience/hedge.py"] = """
        class HedgedExecutor:
            def __init__(self, primary, fallback):
                self.fallback = fallback
    """
    root = make_tree(tmp_path, files)
    report = lint(root, "src", select=["SL009"])
    assert rules_hit(report) == ["SL009"]
    assert "no registered oracle" in report.violations[0].message


def test_sl009_exempts_private_and_markerless_classes(
        tmp_path: Path) -> None:
    files = dict(FAILOVER_TREE)
    files["src/repro/resilience/hedge.py"] = """
        class _Probe:
            def __init__(self, oracle):
                self.oracle = oracle

        class RetrySchedule:
            def __init__(self, attempts):
                self.attempts = attempts
    """
    root = make_tree(tmp_path, files)
    assert lint(root, "src", select=["SL009"]).clean


# ----------------------------------------------------------------------
# suppressions, selection, report plumbing
# ----------------------------------------------------------------------


def test_disable_file_suppresses_everywhere(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/core/util.py": """
            # soundlint: disable-file=SL001,SL007
            def helper():
                try:
                    risky()
                except Exception:
                    pass
        """,
    })
    report = lint(root, "src", select=["SL001", "SL007"])
    assert report.clean
    assert report.suppressed == 2  # one SL001 + one SL007 (no return)


def test_suppression_is_per_rule(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/core/util.py": """
            # soundlint: disable-file=SL001
            def helper():
                try:
                    risky()
                except Exception:
                    pass
        """,
    })
    report = lint(root, "src", select=["SL001", "SL007"])
    assert rules_hit(report) == ["SL007"]


def test_select_and_ignore_filter_rules(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/core/util.py": """
            def helper():
                try:
                    risky()
                except Exception:
                    pass
        """,
    })
    assert rules_hit(lint(root, "src", select=["SL001"])) == ["SL001"]
    only_typing = run_paths([root / "src"], ignore=["SL001"], root=root)
    assert rules_hit(only_typing) == ["SL007"]


def test_violations_are_sorted_and_rendered(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/core/b.py": "def f():\n    pass\n",
        "src/repro/core/a.py": "def g():\n    pass\n",
    })
    report = lint(root, "src", select=["SL007"])
    paths = [v.path for v in report.violations]
    assert paths == sorted(paths)
    line = report.violations[0].render()
    assert line.startswith("src/repro/core/a.py:1: SL007 ")
    assert "2 violations" in report.render_human()


def test_rule_registry_is_complete() -> None:
    assert set(all_rules()) == {
        "SL001", "SL002", "SL003", "SL004", "SL005", "SL006", "SL007",
        "SL008", "SL009", "SL010", "SL011",
    }
    for info in all_rules().values():
        assert info.title and info.rationale
        assert info.scope in ("file", "project")


# ----------------------------------------------------------------------
# unused suppressions (SL000-class)
# ----------------------------------------------------------------------


def test_unused_line_suppression_is_flagged(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/core/util.py": """
            def helper() -> None:  # soundlint: disable=SL001 -- stale
                return None
        """,
    })
    report = lint(root, "src", select=["SL001", "SL007"])
    assert rules_hit(report) == ["SL000"]
    assert "unused suppression" in report.violations[0].message
    assert "SL001" in report.violations[0].message


def test_unused_file_suppression_is_flagged(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/core/util.py": """
            # soundlint: disable-file=SL006 -- stale
            def helper() -> None:
                return None
        """,
    })
    report = lint(root, "src", select=["SL006", "SL007"])
    assert rules_hit(report) == ["SL000"]
    assert "disable-file" in report.violations[0].message


def test_used_suppression_is_not_flagged(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/core/util.py": """
            def helper():  # soundlint: disable=SL007 -- fixture
                return None
        """,
    })
    report = lint(root, "src", select=["SL007"])
    assert report.clean
    assert report.suppressed == 1


def test_unselected_rule_suppression_is_not_flagged(
        tmp_path: Path) -> None:
    # A --select subset must not flag suppressions for rules that
    # did not run in this invocation.
    root = make_tree(tmp_path, {
        "src/repro/core/util.py": """
            def helper() -> None:  # soundlint: disable=SL001 -- other
                return None
        """,
    })
    assert lint(root, "src", select=["SL007"]).clean


def test_unknown_rule_suppression_is_flagged(tmp_path: Path) -> None:
    # A typoed rule ID can never fire; a full run flags it.
    root = make_tree(tmp_path, {
        "src/repro/core/util.py": """
            def helper() -> None:  # soundlint: disable=SL999 -- typo
                return None
        """,
    })
    report = lint(root, "src")
    assert "SL999" in report.violations[0].message


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------


def test_cli_exit_codes_and_json(tmp_path: Path,
                                 capsys: pytest.CaptureFixture) -> None:
    root = make_tree(tmp_path, {
        "src/repro/core/util.py": """
            def helper():
                try:
                    risky()
                except Exception:
                    pass
        """,
    })
    assert main([str(root / "src"), "--select", "SL001",
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"][0]["rule"] == "SL001"
    assert payload["files_scanned"] == 1

    assert main([str(root / "src"), "--ignore",
                 "SL001,SL007"]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_cli_lists_rules(capsys: pytest.CaptureFixture) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SL001", "SL007", "SL010", "SL011"):
        assert rule_id in out


def test_cli_sarif_output(tmp_path: Path,
                          capsys: pytest.CaptureFixture) -> None:
    root = make_tree(tmp_path, {
        "src/repro/core/util.py": """
            def helper():
                try:
                    risky()
                except Exception:
                    pass
        """,
    })
    assert main([str(root / "src"), "--select", "SL001",
                 "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-soundlint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"SL000", "SL001", "SL010", "SL011"} <= rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "SL001"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("util.py")
    assert location["region"]["startLine"] >= 1


def test_cli_graph_dump(capsys: pytest.CaptureFixture) -> None:
    assert main(["--graph", str(REPO_ROOT / "src")]) == 0
    out = capsys.readouterr().out
    assert "call graph:" in out
    assert "lock-order graph:" in out
    assert "AuthorizationServer._work" in out


def test_report_records_elapsed_runtime(tmp_path: Path) -> None:
    root = make_tree(tmp_path, {
        "src/repro/core/util.py": "def f() -> None:\n    return None\n",
    })
    report = lint(root, "src", select=["SL007"])
    assert report.elapsed >= 0.0
    assert "s]" in report.render_human()
    assert "elapsed_s" in report.render_json()


def test_cli_rejects_missing_paths(tmp_path: Path) -> None:
    with pytest.raises(SystemExit) as excinfo:
        main([str(tmp_path / "nowhere")])
    assert excinfo.value.code == 2


# ----------------------------------------------------------------------
# the live tree is the fixture that matters
# ----------------------------------------------------------------------


def test_live_tree_is_violation_free() -> None:
    report = run_paths(
        [REPO_ROOT / "src", REPO_ROOT / "examples"], root=REPO_ROOT,
    )
    rendered = "\n".join(v.render() for v in report.violations)
    assert report.clean, f"soundlint violations in the live tree:\n{rendered}"
    assert report.files_scanned > 100


def test_live_tree_suppressions_are_justified() -> None:
    # Every suppression *comment* in the perimeter carries a reason
    # (the ``-- reason`` tail) — a bare disable is a review smell.
    # Docstrings that document the syntax are exempt, which is why we
    # reuse the analyzer's tokenizing comment scanner.
    from repro.analysis.framework import _comments

    for base in (REPO_ROOT / "src", REPO_ROOT / "examples",
                 REPO_ROOT / "tests", REPO_ROOT / "benchmarks"):
        for path in base.rglob("*.py"):
            text = path.read_text(encoding="utf-8")
            for _, comment in _comments(text):
                if "soundlint:" in comment and "disable" in comment:
                    assert "--" in comment.split("soundlint:")[1], (
                        f"{path}: suppression without justification"
                    )


def test_live_tree_has_no_unused_suppressions() -> None:
    # src/examples under the full rule set: any stale suppression
    # surfaces as an SL000 violation in the report above; here the
    # SL006 perimeter over tests/benchmarks gets the same sweep —
    # every disable-file=SL006 must actually suppress something.
    report = run_paths(
        [REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
        select=["SL006"], root=REPO_ROOT,
    )
    rendered = "\n".join(v.render() for v in report.violations)
    assert report.clean, f"SL006 perimeter violations:\n{rendered}"
    assert report.suppressed > 0  # the harness suppressions are live
