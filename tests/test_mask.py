"""Unit tests for masks, matching, application, and permit inference."""

from repro.algebra.relation import Column, Relation
from repro.algebra.types import INTEGER, STRING
from repro.core.mask import (
    MASKED,
    Mask,
    MaskedValue,
    materialize_meta_tuple,
    meta_tuple_matches,
)
from repro.core.statements import infer_permits
from repro.meta.cell import MetaCell
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.table import MaskRow
from repro.predicates.comparators import Comparator
from repro.predicates.store import ConstraintStore

COLUMNS = (
    Column("NUMBER", STRING),
    Column("SPONSOR", STRING),
    Column("BUDGET", INTEGER),
)

EMPTY = ConstraintStore.empty()


def tup(*cells, views=("V",)):
    return MetaTuple(frozenset(views), tuple(cells), frozenset())


def relation(*rows):
    return Relation(COLUMNS, rows, validate=False)


class TestMatching:
    def test_constant_cell(self):
        meta = tup(MetaCell.blank(True), MetaCell.constant("Acme", True),
                   MetaCell.blank())
        assert meta_tuple_matches(meta, EMPTY, ("p1", "Acme", 10))
        assert not meta_tuple_matches(meta, EMPTY, ("p1", "Apex", 10))

    def test_variable_interval(self):
        store = EMPTY.constrain("x1", Comparator.GE, 100)
        meta = tup(MetaCell.blank(True), MetaCell.blank(),
                   MetaCell.variable("x1"))
        assert meta_tuple_matches(meta, store, ("p", "s", 150))
        assert not meta_tuple_matches(meta, store, ("p", "s", 50))

    def test_variable_consistency_across_cells(self):
        meta = tup(MetaCell.variable("x1", True),
                   MetaCell.variable("x1", True), MetaCell.blank())
        assert meta_tuple_matches(meta, EMPTY, ("same", "same", 1))
        assert not meta_tuple_matches(meta, EMPTY, ("a", "b", 1))

    def test_all_blank_matches_everything(self):
        meta = tup(MetaCell.blank(True), MetaCell.blank(),
                   MetaCell.blank())
        assert meta_tuple_matches(meta, EMPTY, ("x", "y", 0))


class TestMaskApplication:
    def test_example1_mask(self):
        mask = Mask(COLUMNS[:2], (MaskRow(
            tup(MetaCell.blank(True), MetaCell.constant("Acme", True)),
            EMPTY,
        ),))
        delivered = mask.apply(Relation(
            COLUMNS[:2], [("bq-45", "Acme"), ("sv-72", "Apex")],
            validate=False,
        ))
        assert delivered == (
            ("bq-45", "Acme"),
            (MASKED, MASKED),
        )

    def test_drop_fully_masked(self):
        mask = Mask(COLUMNS[:2], (MaskRow(
            tup(MetaCell.blank(True), MetaCell.constant("Acme", True)),
            EMPTY,
        ),))
        delivered = mask.apply(
            Relation(COLUMNS[:2], [("sv-72", "Apex")], validate=False),
            drop_fully_masked=True,
        )
        assert delivered == ()

    def test_union_of_mask_rows(self):
        acme_numbers = MaskRow(
            tup(MetaCell.blank(True), MetaCell.constant("Acme")),
            EMPTY,
        )
        all_sponsors = MaskRow(
            tup(MetaCell.blank(), MetaCell.blank(True)),
            EMPTY,
        )
        mask = Mask(COLUMNS[:2], (acme_numbers, all_sponsors))
        delivered = mask.apply(Relation(
            COLUMNS[:2], [("bq-45", "Acme"), ("sv-72", "Apex")],
            validate=False,
        ))
        assert delivered == (
            ("bq-45", "Acme"),
            (MASKED, "Apex"),
        )

    def test_empty_mask_masks_everything(self):
        mask = Mask(COLUMNS[:2], ())
        assert mask.is_empty
        delivered = mask.apply(Relation(
            COLUMNS[:2], [("a", "b")], validate=False,
        ))
        assert delivered == ((MASKED, MASKED),)

    def test_covers_everything(self):
        full = Mask(COLUMNS[:2], (MaskRow(
            tup(MetaCell.blank(True), MetaCell.blank(True)), EMPTY
        ),))
        assert full.covers_everything
        partial = Mask(COLUMNS[:2], (MaskRow(
            tup(MetaCell.blank(True), MetaCell.blank()), EMPTY
        ),))
        assert not partial.covers_everything


class TestMaskedValue:
    def test_singleton(self):
        assert MaskedValue() is MASKED

    def test_repr(self):
        assert str(MASKED) == "#####"


class TestMaterialize:
    def test_selection_and_projection(self):
        store = EMPTY.constrain("x1", Comparator.GE, 100)
        meta = tup(MetaCell.blank(True), MetaCell.blank(),
                   MetaCell.variable("x1"))
        instance = relation(
            ("p1", "Acme", 150), ("p2", "Apex", 50), ("p3", "Zeta", 900)
        )
        result = materialize_meta_tuple(meta, store, instance)
        assert set(result.rows) == {("p1",), ("p3",)}

    def test_starred_variable_projected(self):
        meta = tup(MetaCell.blank(True), MetaCell.blank(),
                   MetaCell.variable("x1", True))
        result = materialize_meta_tuple(
            meta, EMPTY, relation(("p1", "A", 5))
        )
        assert set(result.rows) == {("p1", 5)}


class TestInferPermits:
    def test_example1_statement(self):
        mask = Mask(COLUMNS[:2], (MaskRow(
            tup(MetaCell.blank(True), MetaCell.constant("Acme", True)),
            EMPTY,
        ),))
        permits = infer_permits(mask)
        assert [str(p) for p in permits] == [
            "permit (NUMBER, SPONSOR) where SPONSOR = Acme",
        ]

    def test_full_coverage_emits_nothing(self):
        mask = Mask(COLUMNS[:2], (MaskRow(
            tup(MetaCell.blank(True), MetaCell.blank(True)), EMPTY
        ),))
        assert infer_permits(mask) == ()

    def test_empty_mask_emits_nothing(self):
        assert infer_permits(Mask(COLUMNS[:2], ())) == ()

    def test_variable_constraints_rendered(self):
        store = EMPTY.constrain("x1", Comparator.GE, 300_000)
        mask = Mask(COLUMNS, (MaskRow(
            tup(MetaCell.blank(True), MetaCell.blank(),
                MetaCell.variable("x1", True)),
            store,
        ),))
        permits = infer_permits(mask)
        assert [str(p) for p in permits] == [
            "permit (NUMBER, BUDGET) where BUDGET >= 300,000",
        ]

    def test_column_equality_rendered(self):
        mask = Mask(COLUMNS[:2], (MaskRow(
            tup(MetaCell.variable("x1", True),
                MetaCell.variable("x1", True)),
            EMPTY,
        ),))
        permits = infer_permits(mask)
        assert [str(p) for p in permits] == [
            "permit (NUMBER, SPONSOR) where NUMBER = SPONSOR",
        ]

    def test_duplicate_rows_deduped(self):
        row = MaskRow(
            tup(MetaCell.blank(True), MetaCell.constant("Acme", True)),
            EMPTY,
        )
        other = MaskRow(
            tup(MetaCell.blank(True), MetaCell.constant("Acme", True),
                views=("OTHER",)),
            EMPTY,
        )
        mask = Mask(COLUMNS[:2], (row, other))
        assert len(infer_permits(mask)) == 1

    def test_unrestricted_statements_sort_first(self):
        restricted = MaskRow(
            tup(MetaCell.blank(True), MetaCell.constant("Acme", True)),
            EMPTY,
        )
        unrestricted = MaskRow(
            tup(MetaCell.blank(True), MetaCell.blank()), EMPTY
        )
        mask = Mask(COLUMNS[:2], (restricted, unrestricted))
        permits = infer_permits(mask)
        assert permits[0].clauses == ()
