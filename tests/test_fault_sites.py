"""Registry sweep: every fault site must be exercised somewhere.

The fault-injection registry (:data:`repro.testing.faults.SITES`) is
only worth trusting if each registered site is actually driven by at
least one test — a site nobody injects is a hook whose failure
behaviour is unverified, which is exactly the blind spot fault
injection exists to remove.  This sweep greps the test tree for each
site name used as a string literal and fails naming any orphans, so
adding a site without a test is a one-line red diff.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from repro.testing.faults import SITES

TESTS_DIR = Path(__file__).resolve().parent
THIS_FILE = Path(__file__).resolve()


def _test_sources() -> Dict[Path, str]:
    """All test files except this sweep (mentioning a site here must
    not count as exercising it)."""
    sources = {}
    for path in sorted(TESTS_DIR.rglob("test_*.py")):
        if path.resolve() == THIS_FILE:
            continue
        sources[path] = path.read_text(encoding="utf-8")
    return sources


def test_registry_is_nonempty_and_sorted_unique() -> None:
    assert SITES, "fault-site registry is empty"
    assert len(set(SITES)) == len(SITES), "duplicate fault sites"


def test_every_fault_site_is_exercised_by_some_test() -> None:
    sources = _test_sources()
    orphans: List[str] = []
    for site in SITES:
        needles = (f'"{site}"', f"'{site}'")
        if not any(
            needle in text
            for text in sources.values()
            for needle in needles
        ):
            orphans.append(site)
    assert not orphans, (
        "fault sites registered in repro.testing.faults.SITES but "
        f"never injected by any test: {orphans} — add a test that "
        "injects each (or remove the dead site)"
    )
