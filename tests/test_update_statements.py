# soundlint: disable-file=SL006 -- exercises the algebra/evaluation layer directly, below the authorization boundary; nothing is user-delivered
"""Unit tests for the update statements of the surface language."""

import pytest

from repro.core.session import FrontEnd
from repro.errors import ParseError
from repro.lang.parser import (
    DeleteCommand,
    InsertCommand,
    ModifyCommand,
    parse_statement,
)


class TestParsing:
    def test_insert(self):
        command = parse_statement(
            "insert into PROJECT values ('zq-99', Acme, 120,000)"
        )
        assert command == InsertCommand(
            "PROJECT", ("zq-99", "Acme", 120_000)
        )

    def test_insert_values_keyword_optional(self):
        command = parse_statement("insert into R (x, 1)")
        assert command == InsertCommand("R", ("x", 1))

    def test_delete_with_where(self):
        command = parse_statement(
            "delete from PROJECT where PROJECT.SPONSOR = Acme"
        )
        assert isinstance(command, DeleteCommand)
        assert command.relation == "PROJECT"
        assert len(command.conditions) == 1

    def test_delete_without_where(self):
        command = parse_statement("delete from PROJECT")
        assert command.conditions == ()

    def test_modify(self):
        command = parse_statement(
            "modify PROJECT set BUDGET = 999, SPONSOR = Apex "
            "where PROJECT.NUMBER = 'bq-45'"
        )
        assert isinstance(command, ModifyCommand)
        assert command.updates == (("BUDGET", 999), ("SPONSOR", "Apex"))
        assert len(command.conditions) == 1

    def test_modify_requires_equals(self):
        with pytest.raises(ParseError):
            parse_statement("modify R set A >= 1")

    def test_keyword_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("insert into R (where)")

    def test_roundtrip_rendering(self):
        for text in (
            "insert into PROJECT values (zq-99, Acme, 120,000)",
            "delete from PROJECT where PROJECT.SPONSOR = Acme",
            "modify PROJECT set BUDGET = 999 "
            "where PROJECT.NUMBER = bq-45",
        ):
            command = parse_statement(text)
            assert parse_statement(str(command)) == command


class TestFrontEndDispatch:
    @pytest.fixture
    def front(self, paper_db):
        from repro.core.engine import AuthorizationEngine
        from repro.meta.catalog import PermissionCatalog

        catalog = PermissionCatalog(paper_db.schema)
        catalog.define_view(
            "view ACME (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
            "where PROJECT.SPONSOR = Acme"
        )
        catalog.permit("ACME", "manager")
        engine = AuthorizationEngine(paper_db, catalog)
        return FrontEnd(engine), engine

    def test_insert_through_statement(self, front):
        front_end, engine = front
        result = front_end.execute(
            "insert into PROJECT values (zq-99, Acme, 120,000)",
            "manager",
        )
        assert "inserted 1 row" in result.message
        assert ("zq-99", "Acme", 120_000) in engine.database.instance(
            "PROJECT"
        )

    def test_insert_denied_outside_view(self, front):
        from repro.errors import AuthorizationError

        front_end, engine = front
        with pytest.raises(AuthorizationError):
            front_end.execute(
                "insert into PROJECT values (zq-99, Apex, 120,000)",
                "manager",
            )

    def test_delete_through_statement(self, front):
        front_end, engine = front
        result = front_end.execute(
            "delete from PROJECT where PROJECT.SPONSOR = Acme",
            "manager",
        )
        assert "deleted 1 row(s)" in result.message
        assert all(
            row[1] != "Acme"
            for row in engine.database.instance("PROJECT").rows
        )

    def test_modify_through_statement(self, front):
        front_end, engine = front
        result = front_end.execute(
            "modify PROJECT set BUDGET = 450,000 "
            "where PROJECT.NUMBER = bq-45",
            "manager",
        )
        assert "modified 1 row(s)" in result.message
        assert ("bq-45", "Acme", 450_000) in engine.database.instance(
            "PROJECT"
        )

    def test_repl_reports_denials_gracefully(self, paper_db):
        from repro.cli import Repl
        from repro.workloads import build_paper_engine

        repl = Repl(build_paper_engine(), user="Brown")
        output = repl.process_line(
            "insert into PROJECT values (zq-99, Apex, 1)"
        )
        assert output.startswith("error:")
