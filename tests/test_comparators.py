# soundlint: disable-file=SL006 -- exercises the algebra/evaluation layer directly, below the authorization boundary; nothing is user-delivered
"""Unit tests for repro.predicates.comparators."""

import pytest

from repro.errors import ParseError
from repro.predicates.comparators import (
    Comparator,
    comparator_from_spelling,
)

ALL = list(Comparator)


class TestEvaluate:
    def test_lt(self):
        assert Comparator.LT.evaluate(1, 2)
        assert not Comparator.LT.evaluate(2, 2)

    def test_le_ge(self):
        assert Comparator.LE.evaluate(2, 2)
        assert Comparator.GE.evaluate(2, 2)
        assert not Comparator.GE.evaluate(1, 2)

    def test_eq_ne(self):
        assert Comparator.EQ.evaluate("a", "a")
        assert Comparator.NE.evaluate("a", "b")

    def test_strings_compare_lexicographically(self):
        assert Comparator.LT.evaluate("Acme", "Apex")


class TestAlgebra:
    @pytest.mark.parametrize("op", ALL)
    def test_flip_is_involution(self, op):
        assert op.flipped().flipped() is op

    @pytest.mark.parametrize("op", ALL)
    def test_negate_is_involution(self, op):
        assert op.negated().negated() is op

    @pytest.mark.parametrize("op", ALL)
    @pytest.mark.parametrize("a,b", [(1, 2), (2, 2), (3, 2)])
    def test_flip_semantics(self, op, a, b):
        assert op.evaluate(a, b) == op.flipped().evaluate(b, a)

    @pytest.mark.parametrize("op", ALL)
    @pytest.mark.parametrize("a,b", [(1, 2), (2, 2), (3, 2)])
    def test_negate_semantics(self, op, a, b):
        assert op.evaluate(a, b) != op.negated().evaluate(a, b)

    def test_classification(self):
        assert Comparator.EQ.is_equality
        assert not Comparator.NE.is_equality
        assert Comparator.LT.is_order
        assert not Comparator.EQ.is_order
        assert not Comparator.NE.is_order


class TestSpellings:
    @pytest.mark.parametrize("text,expected", [
        ("<", Comparator.LT),
        ("<=", Comparator.LE),
        ("≤", Comparator.LE),
        (">", Comparator.GT),
        (">=", Comparator.GE),
        ("≥", Comparator.GE),
        ("=", Comparator.EQ),
        ("==", Comparator.EQ),
        ("!=", Comparator.NE),
        ("<>", Comparator.NE),
        ("≠", Comparator.NE),
    ])
    def test_known_spellings(self, text, expected):
        assert comparator_from_spelling(text) is expected

    def test_unknown_spelling(self):
        with pytest.raises(ParseError):
            comparator_from_spelling("~=")

    def test_str(self):
        assert str(Comparator.GE) == ">="
