"""Unit tests for the front end (Session/FrontEnd) and the CLI REPL."""

import io

import pytest

from repro.cli import BUILTIN_DATABASES, Repl, run_repl
from repro.core.session import FrontEnd, Session
from repro.errors import ReproError
from repro.workloads.paperdb import EXAMPLE_1_QUERY, build_paper_engine


class TestFrontEnd:
    def test_view_definition(self, paper_db):
        from repro.core.engine import AuthorizationEngine

        engine = AuthorizationEngine(paper_db)
        front = FrontEnd(engine)
        result = front.execute("view V (EMPLOYEE.NAME)", "admin")
        assert "defined" in result.message
        assert engine.catalog.has_view("V")

    def test_permit_multiple(self, paper_db):
        from repro.core.engine import AuthorizationEngine

        engine = AuthorizationEngine(paper_db)
        front = FrontEnd(engine)
        front.execute("view A (EMPLOYEE.NAME)", "admin")
        front.execute("view B (EMPLOYEE.TITLE)", "admin")
        front.execute("permit A, B to u1, u2", "admin")
        assert engine.catalog.views_of("u1") == ("A", "B")
        assert engine.catalog.views_of("u2") == ("A", "B")

    def test_revoke(self, paper_engine):
        front = FrontEnd(paper_engine)
        front.execute("revoke EST from Brown", "admin")
        assert paper_engine.catalog.views_of("Brown") == ("SAE", "PSA")

    def test_retrieve_returns_answer(self, paper_engine):
        front = FrontEnd(paper_engine)
        result = front.execute(EXAMPLE_1_QUERY, "Brown")
        assert result.answer is not None
        assert "Acme" in result.message


class TestSession:
    def test_fixed_user(self, paper_engine):
        session = Session(paper_engine, "Brown")
        answer = session.retrieve(EXAMPLE_1_QUERY)
        assert answer.user == "Brown"

    def test_retrieve_rejects_commands(self, paper_engine):
        session = Session(paper_engine, "Brown")
        with pytest.raises(ReproError):
            session.retrieve("permit SAE to Brown")


class TestRepl:
    def test_statement_flow(self):
        repl = Repl(build_paper_engine(), user="Brown")
        output = repl.process_line(EXAMPLE_1_QUERY.replace("\n", " "))
        assert "Acme" in output
        assert "permit (NUMBER, SPONSOR)" in output

    def test_user_switching(self):
        repl = Repl(build_paper_engine())
        assert "Brown" in repl.process_line(".user Brown")
        assert repl.user == "Brown"
        assert "current user" in repl.process_line(".user")

    def test_tables(self):
        repl = Repl(build_paper_engine())
        output = repl.process_line(".tables")
        assert "EMPLOYEE: 3 rows" in output

    def test_views_and_grants(self):
        repl = Repl(build_paper_engine())
        assert "view SAE" in repl.process_line(".views")
        assert "Brown" in repl.process_line(".grants")

    def test_meta(self):
        repl = Repl(build_paper_engine())
        output = repl.process_line(".meta EMPLOYEE")
        assert "x1*" in output
        assert "usage" in repl.process_line(".meta")
        assert "error" in repl.process_line(".meta NOPE")

    def test_trace_toggle(self):
        repl = Repl(build_paper_engine(), user="Brown")
        repl.process_line(".trace")
        output = repl.process_line(
            "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
            "where PROJECT.BUDGET >= 250,000"
        )
        assert "mask (A')" in output

    def test_parse_errors_reported(self):
        repl = Repl(build_paper_engine())
        assert "error" in repl.process_line("retrieve oops")

    def test_blank_lines_and_comments_ignored(self):
        repl = Repl(build_paper_engine())
        assert repl.process_line("") == ""
        assert repl.process_line("-- comment") == ""

    def test_quit(self):
        repl = Repl(build_paper_engine())
        assert repl.process_line(".quit") == "bye"
        assert repl.done

    def test_unknown_dot_command(self):
        repl = Repl(build_paper_engine())
        assert "unknown command" in repl.process_line(".bogus")

    def test_help(self):
        repl = Repl(build_paper_engine())
        assert ".user" in repl.process_line(".help")


class TestRunRepl:
    def test_scripted_session(self):
        stdin = io.StringIO(
            ".user Brown\n"
            "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
            "where PROJECT.BUDGET >= 250,000\n"
            ".quit\n"
        )
        stdout = io.StringIO()
        code = run_repl(build_paper_engine(), "admin", stdin, stdout)
        assert code == 0
        output = stdout.getvalue()
        assert "Acme" in output and "bye" in output

    def test_builtin_databases_load(self):
        for name, factory in BUILTIN_DATABASES.items():
            engine = factory()
            assert engine.database.total_rows() > 0, name
