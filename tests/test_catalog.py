"""Unit tests for the permission catalog (Section 3's storage)."""

import pytest

from repro.errors import DuplicateViewError, UnknownViewError
from repro.meta.catalog import PermissionCatalog


class TestViewDefinition:
    def test_encode_figure1(self, paper_catalog):
        rows = paper_catalog.meta_relation_rows("EMPLOYEE")
        assert [view for view, _ in rows] == ["SAE", "ELP", "EST", "EST"]

    def test_global_variable_numbering(self, paper_catalog):
        # Figure 1: ELP uses x1..x3, EST uses x4.
        elp_vars = paper_catalog.view("ELP").variables()
        est_vars = paper_catalog.view("EST").variables()
        assert set(elp_vars) == {"x1", "x2", "x3"}
        assert set(est_vars) == {"x4"}

    def test_duplicate_name_rejected(self, paper_catalog):
        with pytest.raises(DuplicateViewError):
            paper_catalog.define_view("view SAE (EMPLOYEE.NAME)")

    def test_unknown_view(self, paper_catalog):
        with pytest.raises(UnknownViewError):
            paper_catalog.view("NOPE")

    def test_define_from_text_or_ast(self, paper_db):
        from repro.lang.parser import parse_view

        catalog = PermissionCatalog(paper_db.schema)
        catalog.define_view("view A (EMPLOYEE.NAME)")
        catalog.define_view(parse_view("view B (EMPLOYEE.TITLE)"))
        assert catalog.view_names() == ("A", "B")

    def test_drop_view_cascades_grants(self, paper_catalog):
        paper_catalog.drop_view("EST")
        assert not paper_catalog.has_view("EST")
        assert "EST" not in paper_catalog.views_of("Brown")
        assert "EST" not in paper_catalog.views_of("Klein")

    def test_drop_unknown(self, paper_catalog):
        with pytest.raises(UnknownViewError):
            paper_catalog.drop_view("NOPE")


class TestPermissions:
    def test_figure1_grants(self, paper_catalog):
        assert paper_catalog.views_of("Brown") == ("SAE", "PSA", "EST")
        assert paper_catalog.views_of("Klein") == ("ELP", "EST")

    def test_permit_idempotent(self, paper_catalog):
        before = paper_catalog.version
        paper_catalog.permit("SAE", "Brown")
        assert paper_catalog.views_of("Brown").count("SAE") == 1
        assert paper_catalog.version == before

    def test_permit_unknown_view(self, paper_catalog):
        with pytest.raises(UnknownViewError):
            paper_catalog.permit("NOPE", "Brown")

    def test_revoke(self, paper_catalog):
        paper_catalog.revoke("EST", "Brown")
        assert paper_catalog.views_of("Brown") == ("SAE", "PSA")
        assert paper_catalog.is_permitted("Klein", "EST")

    def test_revoke_absent_is_noop(self, paper_catalog):
        before = paper_catalog.version
        paper_catalog.revoke("ELP", "Brown")
        assert paper_catalog.version == before

    def test_users(self, paper_catalog):
        assert set(paper_catalog.users()) == {"Brown", "Klein"}

    def test_version_bumps_on_changes(self, paper_catalog):
        v0 = paper_catalog.version
        paper_catalog.define_view("view X (EMPLOYEE.NAME)")
        v1 = paper_catalog.version
        paper_catalog.permit("X", "Brown")
        v2 = paper_catalog.version
        paper_catalog.revoke("X", "Brown")
        v3 = paper_catalog.version
        assert v0 < v1 < v2 < v3


class TestPruningServices:
    def test_admissible_views_example1(self, paper_catalog):
        assert paper_catalog.admissible_views("Brown", ["PROJECT"]) == \
            ("PSA",)

    def test_admissible_views_example2(self, paper_catalog):
        admissible = paper_catalog.admissible_views(
            "Klein", ["EMPLOYEE", "ASSIGNMENT", "PROJECT"]
        )
        assert set(admissible) == {"ELP", "EST"}

    def test_admissible_views_example3(self, paper_catalog):
        admissible = paper_catalog.admissible_views("Brown", ["EMPLOYEE"])
        assert set(admissible) == {"SAE", "EST"}

    def test_tuples_for(self, paper_catalog):
        tuples = paper_catalog.tuples_for("EMPLOYEE", ["SAE", "EST"])
        assert len(tuples) == 3  # SAE once, EST twice

    def test_store_for(self, paper_catalog):
        store = paper_catalog.store_for(["ELP"])
        assert store.interval_for("x3").contains(250_000)
        assert paper_catalog.store_for(["SAE"]).is_empty()

    def test_defining_tuples(self, paper_catalog):
        defining = paper_catalog.defining_tuples(["ELP", "EST"])
        assert defining["x1"] == frozenset({("ELP", 0), ("ELP", 2)})
        assert defining["x4"] == frozenset({("EST", 0), ("EST", 1)})
        # x3 appears in one meta-tuple only (plus COMPARISON).
        assert defining["x3"] == frozenset({("ELP", 1)})


class TestDisplayRows:
    def test_comparison_rows(self, paper_catalog):
        assert paper_catalog.comparison_rows() == \
            (("ELP", "x3", ">=", "250,000"),)

    def test_permission_rows_order(self, paper_catalog):
        rows = paper_catalog.permission_rows()
        assert rows[0] == ("Brown", "SAE")
        assert rows[-1] == ("Klein", "EST")

    def test_meta_relation_rows_filtered(self, paper_catalog):
        rows = paper_catalog.meta_relation_rows("EMPLOYEE", ["EST"])
        assert [view for view, _ in rows] == ["EST", "EST"]
