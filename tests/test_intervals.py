"""Unit tests for the interval abstraction."""

import pytest

from repro.predicates.comparators import Comparator
from repro.predicates.intervals import Interval


class TestConstruction:
    def test_top(self):
        top = Interval.top()
        assert top.is_top
        assert not top.is_empty()
        assert top.contains(0) and top.contains("x")

    def test_point(self):
        point = Interval.point(5)
        assert point.is_point
        assert point.the_point() == 5
        assert point.contains(5) and not point.contains(6)

    @pytest.mark.parametrize("op,value,inside,outside", [
        (Comparator.LT, 10, 9, 10),
        (Comparator.LE, 10, 10, 11),
        (Comparator.GT, 10, 11, 10),
        (Comparator.GE, 10, 10, 9),
        (Comparator.EQ, 10, 10, 9),
        (Comparator.NE, 10, 9, 10),
    ])
    def test_from_comparison(self, op, value, inside, outside):
        interval = Interval.from_comparison(op, value)
        assert interval.contains(inside)
        assert not interval.contains(outside)

    def test_string_intervals(self):
        interval = Interval.from_comparison(Comparator.GE, "Acme")
        assert interval.contains("Apex")
        assert not interval.contains("AAA")


class TestNormalization:
    def test_discrete_strict_bounds_tighten(self):
        interval = Interval(lo=3, lo_strict=True, discrete=True).normalized()
        assert interval.lo == 4 and not interval.lo_strict

    def test_dense_strict_bounds_kept(self):
        interval = Interval(lo=3.0, lo_strict=True).normalized()
        assert interval.lo == 3.0 and interval.lo_strict

    def test_excluded_endpoint_absorbs(self):
        interval = Interval(
            lo=3, hi=10, excluded=frozenset([3])
        ).normalized()
        assert not interval.contains(3)
        assert interval.contains(4)
        assert 3 not in interval.excluded  # folded into the bound

    def test_irrelevant_exclusions_dropped(self):
        interval = Interval(
            lo=0, hi=5, excluded=frozenset([99])
        ).normalized()
        assert interval.excluded == frozenset()


class TestEmptiness:
    def test_reversed_bounds_empty(self):
        assert Interval(lo=5, hi=3).is_empty()

    def test_half_open_point_empty(self):
        assert Interval(lo=5, hi=5, lo_strict=True).is_empty()

    def test_discrete_gap_empty(self):
        # 3 < x < 4 over integers
        interval = Interval(lo=3, lo_strict=True, hi=4, hi_strict=True,
                            discrete=True)
        assert interval.is_empty()

    def test_dense_gap_not_empty(self):
        interval = Interval(lo=3, lo_strict=True, hi=4, hi_strict=True)
        assert not interval.is_empty()


class TestIntersect:
    def test_overlap(self):
        a = Interval(lo=0, hi=10)
        b = Interval(lo=5, hi=15)
        c = a.intersect(b)
        assert c.lo == 5 and c.hi == 10

    def test_tighter_strictness_wins(self):
        a = Interval(lo=5)
        b = Interval(lo=5, lo_strict=True)
        assert a.intersect(b).lo_strict

    def test_exclusions_union(self):
        a = Interval(lo=0, hi=10, excluded=frozenset([2]))
        b = Interval(lo=0, hi=10, excluded=frozenset([3]))
        c = a.intersect(b)
        assert not c.contains(2) and not c.contains(3)

    def test_disjoint_intersection_empty(self):
        assert Interval(hi=3).intersect(Interval(lo=5)).is_empty()


class TestSubset:
    def test_paper_case_conjoin(self):
        # view [300k, 600k] vs query [200k, 400k]: neither contains
        mu = Interval(lo=300_000, hi=600_000)
        lam = Interval(lo=200_000, hi=400_000)
        assert not lam.is_subset(mu)
        assert not mu.is_subset(lam)

    def test_paper_case_retain(self):
        mu = Interval(lo=300_000, hi=600_000)
        lam = Interval(lo=200_000, hi=700_000)
        assert mu.is_subset(lam)
        assert not lam.is_subset(mu)

    def test_paper_case_clear(self):
        mu = Interval(lo=300_000, hi=600_000)
        lam = Interval(lo=400_000, hi=500_000)
        assert lam.is_subset(mu)

    def test_empty_subset_of_anything(self):
        assert Interval(lo=5, hi=3).is_subset(Interval.point(7))

    def test_exclusions_block_subset(self):
        a = Interval(lo=0, hi=10)
        b = Interval(lo=0, hi=10, excluded=frozenset([5]))
        assert not a.is_subset(b)
        assert b.is_subset(a)

    def test_strictness_matters(self):
        open_ = Interval(lo=0, lo_strict=True)
        closed = Interval(lo=0)
        assert open_.is_subset(closed)
        assert not closed.is_subset(open_)


class TestDisjoint:
    def test_paper_case_discard(self):
        mu = Interval(lo=300_000, hi=600_000)
        lam = Interval(hi=300_000, hi_strict=True)
        assert mu.is_disjoint(lam)

    def test_touching_closed_not_disjoint(self):
        assert not Interval(hi=5).is_disjoint(Interval(lo=5))

    def test_touching_open_disjoint(self):
        assert Interval(hi=5, hi_strict=True).is_disjoint(Interval(lo=5))

    def test_point_vs_excluded(self):
        point = Interval.point(5)
        holed = Interval(excluded=frozenset([5]))
        assert point.is_disjoint(holed)
        assert holed.is_disjoint(point)


class TestDescribe:
    def test_point(self):
        assert Interval.point(5).describe("X") == ("X = 5",)

    def test_range(self):
        clauses = Interval(lo=300_000, hi=600_000).describe("BUDGET")
        assert clauses == ("BUDGET >= 300,000", "BUDGET <= 600,000")

    def test_strict_bounds(self):
        clauses = Interval(lo=3, lo_strict=True).describe("X")
        assert clauses == ("X > 3",)

    def test_exclusions(self):
        clauses = Interval(excluded=frozenset(["u"])).describe("A2")
        assert clauses == ("A2 != u",)

    def test_top_is_silent(self):
        assert Interval.top().describe("X") == ()
