"""Integration: the full Section 5 walkthrough at the engine level.

The experiment modules assert the paper's tables in detail; these tests
retell the three examples through the public API only, the way a user
of the library would, and add cross-cutting assertions (sound deliveries
against materialized views, permit statements, revocation effects).
"""

import pytest

from repro.baselines.oracle import materialize_view
from repro.core.mask import MASKED
from repro.workloads.paperdb import (
    EXAMPLE_1_QUERY,
    EXAMPLE_2_QUERY,
    EXAMPLE_3_QUERY,
)


class TestExample1:
    def test_delivery(self, paper_engine):
        answer = paper_engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert set(answer.delivered) == {
            ("bq-45", "Acme"), (MASKED, MASKED),
        }

    def test_permit_statement(self, paper_engine):
        answer = paper_engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert [str(p) for p in answer.permits] == [
            "permit (NUMBER, SPONSOR) where SPONSOR = Acme",
        ]

    def test_delivered_rows_within_psa(self, paper_engine, paper_catalog,
                                       paper_db):
        answer = paper_engine.authorize("Brown", EXAMPLE_1_QUERY)
        psa = materialize_view(paper_catalog, "PSA", paper_db)
        psa_pairs = {(row[0], row[1]) for row in psa.rows}
        for row in answer.delivered:
            if MASKED not in row:
                assert row in psa_pairs


class TestExample2:
    def test_salary_masked_name_delivered(self, paper_engine):
        answer = paper_engine.authorize("Klein", EXAMPLE_2_QUERY)
        assert answer.delivered == (("Brown", MASKED),)

    def test_permit_statement(self, paper_engine):
        answer = paper_engine.authorize("Klein", EXAMPLE_2_QUERY)
        assert [str(p) for p in answer.permits] == ["permit (NAME)"]

    def test_name_within_elp(self, paper_engine, paper_catalog, paper_db):
        answer = paper_engine.authorize("Klein", EXAMPLE_2_QUERY)
        elp = materialize_view(paper_catalog, "ELP", paper_db)
        elp_names = {row[0] for row in elp.rows}
        for row in answer.delivered:
            if row[0] is not MASKED:
                assert row[0] in elp_names


class TestExample3:
    def test_full_delivery_without_permits(self, paper_engine):
        answer = paper_engine.authorize("Brown", EXAMPLE_3_QUERY)
        assert answer.is_fully_delivered
        assert answer.permits == ()

    def test_klein_gets_names_only(self, paper_engine):
        # Klein holds EST but not SAE: same-title *names* are fine,
        # salaries are not.
        answer = paper_engine.authorize("Klein", EXAMPLE_3_QUERY)
        for row in answer.delivered:
            name1, salary1, name2, salary2 = row
            assert salary1 is MASKED and salary2 is MASKED
            assert name1 is not MASKED and name2 is not MASKED


class TestRevocationFlows:
    def test_revoking_psa_kills_example1(self, paper_engine):
        paper_engine.revoke("PSA", "Brown")
        answer = paper_engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert answer.is_fully_masked
        assert answer.permits == ()

    def test_regranting_restores(self, paper_engine):
        paper_engine.revoke("PSA", "Brown")
        paper_engine.permit("PSA", "Brown")
        answer = paper_engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert ("bq-45", "Acme") in answer.delivered

    def test_example3_degrades_without_sae(self, paper_engine):
        full = paper_engine.authorize("Brown", EXAMPLE_3_QUERY)
        paper_engine.revoke("SAE", "Brown")
        reduced = paper_engine.authorize("Brown", EXAMPLE_3_QUERY)
        assert reduced.stats().delivered_cells < \
            full.stats().delivered_cells
        # names still flow through EST
        assert any(
            row[0] is not MASKED for row in reduced.delivered
        )


class TestQueryVariations:
    def test_narrower_budget_still_authorized(self, paper_engine):
        """Klein's query for budgets over 500,000 is a view of ELP and
        should be fully authorized on the name/title columns."""
        answer = paper_engine.authorize("Klein", (
            "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE) "
            "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
            "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
            "and PROJECT.BUDGET > 400,000"
        ))
        assert answer.is_fully_delivered

    def test_budget_below_threshold_masked(self, paper_engine):
        """Budgets under 250,000 contradict ELP's comparison: nothing
        may be delivered."""
        answer = paper_engine.authorize("Klein", (
            "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE) "
            "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
            "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
            "and PROJECT.BUDGET < 200,000"
        ))
        assert answer.is_fully_masked

    def test_elp_columns_beyond_name_title(self, paper_engine):
        """ELP also projects NUMBER and BUDGET; Klein may see them."""
        answer = paper_engine.authorize("Klein", (
            "retrieve (EMPLOYEE.NAME, PROJECT.NUMBER, PROJECT.BUDGET) "
            "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
            "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
            "and PROJECT.BUDGET >= 250,000"
        ))
        assert answer.is_fully_delivered

    def test_sponsor_never_leaks_to_klein(self, paper_engine):
        """SPONSOR is in no view of Klein's; it must always mask."""
        answer = paper_engine.authorize("Klein", (
            "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
            "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
            "and ASSIGNMENT.P_NO = PROJECT.NUMBER "
            "and PROJECT.BUDGET >= 250,000"
        ))
        for row in answer.delivered:
            assert row[1] is MASKED
