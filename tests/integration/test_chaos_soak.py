"""Chaos soak: seeded random faults under concurrent serving traffic.

The short soaks run on every PR (a few hundred requests at 2 and at 8
workers — seconds of wall time); the 10^4-request soak runs nightly
behind the ``slow`` marker and writes its numbers to
``BENCH_PR8.json``.  Every soak asserts the same four things, straight
from :class:`repro.testing.chaos.ChaosReport`: clean answers match the
faultless serial replay, no answer ever reveals cells outside it, the
audit trail is gapless, and goodput stays above the floor.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.testing.chaos import (
    ChaosReport,
    ChaosSpec,
    fault_schedule,
    run_chaos,
)
from repro.testing.faults import SITES
from repro.workloads.traffic import TrafficSpec

RESULTS_PATH = Path(__file__).resolve().parents[2] / "BENCH_PR8.json"


def assert_sound(report: ChaosReport,
                 goodput_floor: float = 0.99) -> None:
    assert report.parity_violations == (), report.parity_violations
    assert report.unsound == (), report.unsound
    assert report.audit_gapless
    assert report.answered + report.submit_rejected == report.requests
    assert report.goodput >= goodput_floor, (
        f"goodput {report.goodput:.4f} below {goodput_floor}"
    )
    assert report.ok(goodput_floor)


class TestFaultSchedule:
    def test_schedule_is_a_pure_function_of_the_spec(self):
        spec = ChaosSpec(seed=7)
        assert fault_schedule(spec).faults \
            == fault_schedule(spec).faults

    def test_different_seeds_differ(self):
        a = fault_schedule(ChaosSpec(seed=1)).faults
        b = fault_schedule(ChaosSpec(seed=2)).faults
        assert a != b  # per-site coin seeds derive from the spec seed

    def test_schedule_covers_every_registered_site(self):
        plan = fault_schedule(ChaosSpec(seed=3))
        assert set(plan.faults) == set(SITES)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ChaosSpec(fault_probability=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(backend_fault_probability=-0.1)
        with pytest.raises(ValueError):
            ChaosSpec(sites=("no.such.site",))
        with pytest.raises(ValueError):
            ChaosSpec(workers=0)


@pytest.mark.parametrize("workers", [2, 8])
def test_short_soak_is_sound(workers):
    spec = ChaosSpec(
        traffic=TrafficSpec(clients=6, ops_per_client=60,
                            seed=60 + workers, distinct_queries=8,
                            churn_every=7),
        seed=60 + workers,
        workers=workers,
    )
    report = run_chaos(spec)
    assert report.fault_trips > 0, "no fault ever fired — vacuous soak"
    assert_sound(report)


def test_soak_with_deadlines_stays_sound():
    # Tight per-request budgets under chaos: expired requests may be
    # denied (hurting goodput by design), but soundness, parity of
    # the answers that do run clean, and the gapless trail must hold.
    spec = ChaosSpec(
        traffic=TrafficSpec(clients=6, ops_per_client=40, seed=91,
                            distinct_queries=6),
        seed=91,
        workers=2,
        request_deadline_ms=5.0,
    )
    report = run_chaos(spec)
    assert report.parity_violations == ()
    assert report.unsound == ()
    assert report.audit_gapless
    assert report.answered + report.submit_rejected == report.requests


@pytest.mark.slow
def test_long_soak_meets_the_acceptance_bar():
    """The PR 8 acceptance soak: >= 10^4 requests, zero parity
    violations, zero unsound answers, goodput >= 99% — written to
    ``BENCH_PR8.json``."""
    spec = ChaosSpec(
        traffic=TrafficSpec(clients=12, ops_per_client=1000, seed=88,
                            distinct_queries=16, churn_every=10),
        seed=88,
        workers=8,
    )
    report = run_chaos(spec)
    assert report.requests >= 10_000
    assert report.fault_trips > 50, "long soak barely injected"
    assert report.failovers > 0, "oracle failover never exercised"
    assert_sound(report)
    RESULTS_PATH.write_text(
        json.dumps({"chaos_soak": report.to_json()}, indent=2) + "\n",
        encoding="utf-8",
    )
