"""Integration: every experiment of DESIGN.md must pass its checks."""

import pytest

from repro.experiments.runner import ALIASES, REGISTRY, run_experiment


@pytest.mark.parametrize("exp_id", sorted(REGISTRY))
def test_experiment_passes(exp_id):
    result = run_experiment(exp_id)
    failures = [c for c in result.checks if not c.passed]
    assert not failures, "\n".join(c.render() for c in failures)


def test_every_design_id_resolves():
    for exp_id in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
                   "E10", "E11", "E12"):
        assert exp_id in REGISTRY or exp_id in ALIASES


def test_results_render_without_error():
    result = run_experiment("E1")
    text = result.render()
    assert "E1" in text and "ALL CHECKS PASS" in text


def test_runner_main_smoke(capsys):
    from repro.experiments.runner import main

    assert main(["E1"]) == 0
    out = capsys.readouterr().out
    assert "1 experiments, 1 passed, 0 failed" in out


def test_runner_rejects_unknown_id(capsys):
    from repro.experiments.runner import main

    assert main(["E99"]) == 2
