"""Adversarial integration tests: attempts to leak data past the mask.

Each test plays an attacker who holds limited views and crafts queries
trying to widen them — join smuggling, self-join reflection, constant
probing, occurrence tricks.  The assertion is always the same: no cell
outside the attacker's permitted views becomes visible.
"""

import pytest

from repro.core.engine import AuthorizationEngine
from repro.core.mask import MASKED
from repro.meta.catalog import PermissionCatalog
from repro.workloads.paperdb import build_paper_database


def visible_values(answer):
    return {
        value
        for row in answer.delivered
        for value in row
        if value is not MASKED
    }


@pytest.fixture
def db():
    return build_paper_database()


def engine_with(db, views, grants):
    catalog = PermissionCatalog(db.schema)
    for view in views:
        catalog.define_view(view)
    for view_name, user in grants:
        catalog.permit(view_name, user)
    return AuthorizationEngine(db, catalog)


SALARIES = {26_000, 22_000, 32_000}


class TestJoinSmuggling:
    def test_join_does_not_widen_columns(self, db):
        """Holding a PROJECT view must not expose EMPLOYEE data through
        a join query."""
        engine = engine_with(
            db,
            ["view P (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)"],
            [("P", "eve")],
        )
        answer = engine.authorize(
            "eve",
            "retrieve (PROJECT.NUMBER, EMPLOYEE.NAME, EMPLOYEE.SALARY) "
            "where PROJECT.NUMBER = ASSIGNMENT.P_NO "
            "and ASSIGNMENT.E_NAME = EMPLOYEE.NAME",
        )
        assert visible_values(answer) & SALARIES == set()
        assert "Jones" not in visible_values(answer)

    def test_join_condition_does_not_leak_through_selection(self, db):
        """Selecting on a secret column (SALARY) must not make a
        permitted column reveal the selection's effect beyond the
        answer itself — the mask may deliver names only via views that
        ignore salary."""
        engine = engine_with(
            db,
            ["view N (EMPLOYEE.NAME)"],
            [("N", "eve")],
        )
        answer = engine.authorize(
            "eve",
            "retrieve (EMPLOYEE.NAME) where EMPLOYEE.SALARY > 30,000",
        )
        # The unstarred-cell policy: the view places no restriction on
        # SALARY (mu = true), and lambda does not imply mu... mu is
        # true so lambda DOES imply mu, but mu does not imply lambda:
        # delivering would reveal which employees earn > 30k through a
        # view that only grants names.  Must be fully masked.
        assert answer.is_fully_masked

    def test_semijoin_probe_is_masked(self, db):
        """Probing secret ASSIGNMENT pairs through a permitted EMPLOYEE
        view: the join to ASSIGNMENT must mask."""
        engine = engine_with(
            db,
            ["view E (EMPLOYEE.NAME, EMPLOYEE.TITLE)"],
            [("E", "eve")],
        )
        answer = engine.authorize(
            "eve",
            "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE) "
            "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
            "and ASSIGNMENT.P_NO = 'bq-45'",
        )
        # Knowing who works on bq-45 is ASSIGNMENT data; the view
        # grants employee names/titles unconditionally but the answer's
        # rows are the bq-45 workers — delivering them would leak the
        # assignment.  Must be fully masked.
        assert answer.is_fully_masked


class TestSelfJoinReflection:
    def test_self_product_does_not_double_permissions(self, db):
        """EMP x EMP with a salary comparison: holding names-only must
        not expose the comparison's outcome."""
        engine = engine_with(
            db,
            ["view N (EMPLOYEE.NAME)"],
            [("N", "eve")],
        )
        answer = engine.authorize(
            "eve",
            "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) "
            "where EMPLOYEE:1.SALARY < EMPLOYEE:2.SALARY",
        )
        assert answer.is_fully_masked

    def test_unconditional_self_product_is_fine(self, db):
        """The pure product of a permitted view with itself carries no
        extra information and should flow."""
        engine = engine_with(
            db,
            ["view N (EMPLOYEE.NAME)"],
            [("N", "eve")],
        )
        answer = engine.authorize(
            "eve", "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME)"
        )
        assert answer.is_fully_delivered

    def test_est_does_not_leak_titles(self, db):
        """EST grants name pairs plus the shared title; it must not
        expose salaries through any reflection."""
        engine = engine_with(
            db,
            ["view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, "
             "EMPLOYEE:1.TITLE) "
             "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"],
            [("EST", "eve")],
        )
        answer = engine.authorize(
            "eve",
            "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:1.SALARY, "
            "EMPLOYEE:2.SALARY) "
            "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE",
        )
        assert visible_values(answer) & SALARIES == set()


class TestConstantProbing:
    def test_equality_probe_on_secret_column(self, db):
        """Binary-search probing a secret salary via equality
        selections must never return a visible cell."""
        engine = engine_with(
            db,
            ["view N (EMPLOYEE.NAME)"],
            [("N", "eve")],
        )
        for probe in (22_000, 26_000, 32_000, 99_999):
            answer = engine.authorize(
                "eve",
                f"retrieve (EMPLOYEE.NAME) "
                f"where EMPLOYEE.SALARY = {probe}",
            )
            assert answer.is_fully_masked, probe

    def test_probing_within_view_predicate_is_legitimate(self, db):
        """Probing inside the permitted region is allowed — the view
        already grants it."""
        engine = engine_with(
            db,
            ["view S (EMPLOYEE.NAME, EMPLOYEE.SALARY)"],
            [("S", "eve")],
        )
        answer = engine.authorize(
            "eve",
            "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) "
            "where EMPLOYEE.SALARY = 26,000",
        )
        assert set(answer.delivered) == {("Jones", 26_000)}

    def test_range_probe_on_view_constrained_column(self, db):
        """A view bounded to BUDGET >= 250k: probing below the bound
        yields nothing; probing inside yields only in-bound rows."""
        engine = engine_with(
            db,
            ["view B (PROJECT.NUMBER, PROJECT.BUDGET) "
             "where PROJECT.BUDGET >= 250,000"],
            [("B", "eve")],
        )
        below = engine.authorize(
            "eve",
            "retrieve (PROJECT.NUMBER, PROJECT.BUDGET) "
            "where PROJECT.BUDGET < 200,000",
        )
        assert below.is_fully_masked
        inside = engine.authorize(
            "eve",
            "retrieve (PROJECT.NUMBER, PROJECT.BUDGET) "
            "where PROJECT.BUDGET > 400,000",
        )
        assert set(inside.delivered) == {("sv-72", 450_000)}


class TestRevocationRaces:
    def test_cached_selfjoins_do_not_survive_revocation(self, db):
        engine = engine_with(
            db,
            ["view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)",
             "view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, "
             "EMPLOYEE:1.TITLE) "
             "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"],
            [("SAE", "eve"), ("EST", "eve")],
        )
        query = (
            "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:1.SALARY, "
            "EMPLOYEE:2.NAME, EMPLOYEE:2.SALARY) "
            "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"
        )
        assert engine.authorize("eve", query).is_fully_delivered
        engine.revoke("SAE", "eve")
        after = engine.authorize("eve", query)
        assert visible_values(after) & SALARIES == set()

    def test_dropping_a_view_kills_combined_grants(self, db):
        engine = engine_with(
            db,
            ["view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)",
             "view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, "
             "EMPLOYEE:1.TITLE) "
             "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"],
            [("SAE", "eve"), ("EST", "eve")],
        )
        engine.catalog.drop_view("EST")
        answer = engine.authorize(
            "eve",
            "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:1.SALARY, "
            "EMPLOYEE:2.NAME, EMPLOYEE:2.SALARY) "
            "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE",
        )
        # SAE alone still grants names+salaries of the (reflexive)
        # pairs?  No: the same-title selection requires the title
        # linkage EST provided; nothing combined remains.
        assert not answer.is_fully_delivered


class TestOccurrenceTricks:
    def test_occurrence_renumbering_is_equivalent(self, db):
        """Swapping occurrence indices must not change the delivery."""
        engine = engine_with(
            db,
            ["view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, "
             "EMPLOYEE:1.TITLE) "
             "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"],
            [("EST", "eve")],
        )
        first = engine.authorize(
            "eve",
            "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME) "
            "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE",
        )
        second = engine.authorize(
            "eve",
            "retrieve (EMPLOYEE:2.NAME, EMPLOYEE:1.NAME) "
            "where EMPLOYEE:2.TITLE = EMPLOYEE:1.TITLE",
        )
        assert set(first.delivered) == set(second.delivered)

    def test_triple_occurrence_cannot_escalate(self, db):
        engine = engine_with(
            db,
            ["view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, "
             "EMPLOYEE:1.TITLE) "
             "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"],
            [("EST", "eve")],
        )
        answer = engine.authorize(
            "eve",
            "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, "
            "EMPLOYEE:3.SALARY) "
            "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE "
            "and EMPLOYEE:2.TITLE = EMPLOYEE:3.TITLE",
        )
        assert visible_values(answer) & SALARIES == set()
