# soundlint: disable-file=SL006 -- differential/property harness: direct evaluation is the oracle the masked path is compared against
"""Unit tests for the pluggable execution backends.

The property suite (``tests/property/test_backend_parity.py``) covers
parity in bulk; these tests pin the edges by hand: the factory, the
SQL compiler's literals and self-join aliasing, mask-pushdown
extractability boundaries, empty and all-covering masks, mutation
sync, fail-closed behaviour at the ``backend.execute`` fault site,
and the serving layer's per-tenant backend override.
"""

from __future__ import annotations

import importlib.util

import pytest

from repro.algebra.database import build_database
from repro.algebra.expression import (
    AtomicCondition,
    Col,
    Const,
    Occurrence,
    PSJQuery,
)
from repro.algebra.relation import Column
from repro.algebra.schema import make_schema
from repro.algebra.to_sql import (
    masked_plan_to_sql,
    plan_to_sql,
    sql_literal,
    table_name,
)
from repro.algebra.types import INTEGER, STRING
from repro.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    PythonBackend,
    SQLiteBackend,
    make_backend,
)
from repro.config import DEFAULT_CONFIG
from repro.core.compiled_mask import compile_mask, sql_predicate_view
from repro.core.engine import AuthorizationEngine
from repro.core.mask import MASKED, Mask
from repro.errors import (
    BackendError,
    BackendUnavailableError,
    FaultInjected,
)
from repro.meta.cell import MetaCell
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.table import MaskRow
from repro.predicates.comparators import Comparator
from repro.predicates.store import ConstraintStore
from repro.serving import AuthorizationServer, ServerConfig
from repro.testing import faults
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec


def small_database():
    emp = make_schema(
        "EMP", [("NAME", STRING), ("DEPT", STRING), ("SAL", INTEGER)],
        key=["NAME"],
    )
    dept = make_schema(
        "DEPT", [("DNAME", STRING), ("BUDGET", INTEGER)], key=["DNAME"],
    )
    return build_database([emp, dept], {
        "EMP": [("amy", "toys", 30), ("bob", "tools", 45),
                ("cal", "toys", 52), ("o'hara", "tools", 39)],
        "DEPT": [("toys", 100), ("tools", 200)],
    })


def emp_scan(output=(0, 1, 2), conditions=()):
    return PSJQuery(
        (Occurrence("EMP"),), tuple(conditions), tuple(output)
    )


def mask_over(columns, rows):
    return Mask(tuple(columns), tuple(rows))


def int_columns(n):
    return tuple(Column(f"C{i}", INTEGER) for i in range(n))


def star_blank_row(arity):
    meta = MetaTuple(
        frozenset({"V"}),
        tuple(MetaCell.blank(True) for _ in range(arity)),
        frozenset(),
    )
    return MaskRow(meta, ConstraintStore.empty())


class TestFactory:
    def test_known_names(self):
        database = small_database()
        assert isinstance(make_backend("python", database),
                          PythonBackend)
        assert isinstance(make_backend("sqlite", database),
                          SQLiteBackend)
        assert "python" in BACKEND_NAMES

    def test_backends_satisfy_protocol(self):
        database = small_database()
        for name in ("python", "sqlite"):
            assert isinstance(make_backend(name, database),
                              ExecutionBackend)

    def test_unknown_name_is_refused(self):
        with pytest.raises(BackendUnavailableError):
            make_backend("oracle9i")

    def test_duckdb_without_driver_is_unavailable(self):
        if importlib.util.find_spec("duckdb") is not None:
            pytest.skip("duckdb driver installed")
        with pytest.raises(BackendUnavailableError):
            make_backend("duckdb", small_database())

    def test_execute_before_load_fails(self):
        for name in ("python", "sqlite"):
            backend = make_backend(name)
            with pytest.raises(BackendError):
                backend.execute(emp_scan())


class TestSqlCompiler:
    def test_literals(self):
        assert sql_literal(7) == "7"
        assert sql_literal(2.5) == "2.5"
        assert sql_literal("o'hara") == "'o''hara'"
        with pytest.raises(BackendError):
            sql_literal(True)

    def test_plan_sql_shape(self):
        database = small_database()
        plan = emp_scan(
            output=(0, 2),
            conditions=[AtomicCondition(Col(2), Comparator.GE,
                                        Const(40))],
        )
        sql = plan_to_sql(plan, database.schema)
        assert sql.startswith("SELECT DISTINCT ")
        assert 't0.c0 AS a0' in sql and 't0.c2 AS a1' in sql
        assert 'FROM "EMP" AS t0' in sql
        assert "WHERE t0.c2 >= 40" in sql

    def test_mask_arity_mismatch_is_refused(self):
        database = small_database()
        view = sql_predicate_view(mask_over(int_columns(3), ()))
        assert view is not None
        with pytest.raises(BackendError):
            masked_plan_to_sql(emp_scan(output=(0,)), database.schema,
                               view)

    def test_quoted_string_roundtrip(self):
        database = small_database()
        plan = emp_scan(
            output=(0, 1),
            conditions=[AtomicCondition(Col(0), Comparator.EQ,
                                        Const("o'hara"))],
        )
        python = PythonBackend(database)
        sqlite = SQLiteBackend(database)
        assert python.execute(plan) == sqlite.execute(plan)
        assert sqlite.execute(plan).rows == (("o'hara", "tools"),)


class TestSelfJoins:
    def test_self_join_with_occurrence_relabels(self):
        # EMP:1 x EMP:2 joined on DEPT, projecting NAME:1, NAME:2 —
        # the positional aliasing must not care about ATTR:k labels.
        database = small_database()
        plan = PSJQuery(
            (Occurrence("EMP", 1), Occurrence("EMP", 2)),
            (AtomicCondition(Col(1), Comparator.EQ, Col(4)),
             AtomicCondition(Col(0), Comparator.NE, Col(3))),
            (0, 3),
        )
        python = PythonBackend(database)
        sqlite = SQLiteBackend(database)
        result = sqlite.execute(plan)
        assert result == python.execute(plan)
        assert result.labels() == ("NAME:1", "NAME:2")
        assert ("amy", "cal") in result.rows


class TestMaskPushdown:
    def test_empty_mask_masks_everything(self):
        database = small_database()
        plan = emp_scan()
        empty = mask_over(int_columns(3), ())
        sqlite = SQLiteBackend(database)
        delivered = sqlite.execute_masked(plan, empty)
        assert delivered
        assert all(
            cell is MASKED for row in delivered for cell in row
        )
        assert sqlite.execute_masked(
            plan, empty, drop_fully_masked=True
        ) == ()

    def test_covers_everything_fast_path(self):
        database = small_database()
        plan = emp_scan()
        full = mask_over(int_columns(3), [star_blank_row(3)])
        view = sql_predicate_view(full)
        assert view is not None and view.covers_all
        python = PythonBackend(database)
        sqlite = SQLiteBackend(database)
        assert sorted(sqlite.execute_masked(plan, full), key=repr) \
            == sorted(python.execute_masked(plan, full), key=repr)

    def test_bound_variable_relation_is_extractable(self):
        # x < y with both variables bound by cells: pure SQL.
        meta = MetaTuple(
            frozenset({"V"}),
            (MetaCell.variable("x", True), MetaCell.variable("y", True)),
            frozenset(),
        )
        store = ConstraintStore.empty().relate("x", Comparator.LT, "y")
        mask = mask_over(int_columns(2), [MaskRow(meta, store)])
        view = sql_predicate_view(mask)
        assert view is not None
        assert view.rows[0].relation_checks == ((0, Comparator.LT, 1),)

    def test_unbound_variable_relation_falls_back(self):
        # x < z where z is bound by no cell keeps its existential
        # reading: not expressible as positional checks.
        meta = MetaTuple(
            frozenset({"V"}),
            (MetaCell.variable("x", True), MetaCell.blank(True)),
            frozenset(),
        )
        store = ConstraintStore.empty().relate("x", Comparator.LT, "z")
        mask = mask_over(int_columns(2), [MaskRow(meta, store)])
        assert sql_predicate_view(mask) is None
        # The fallback still delivers oracle-identical rows.
        database = small_database()
        plan = emp_scan(output=(2, 0))
        salary_mask = mask_over(
            (Column("SAL", INTEGER), Column("NAME", STRING)),
            [MaskRow(meta, store)],
        )
        python = PythonBackend(database)
        sqlite = SQLiteBackend(database)
        for compiled in (None, compile_mask(salary_mask)):
            assert sorted(
                sqlite.execute_masked(plan, salary_mask, compiled),
                key=repr,
            ) == sorted(
                python.execute_masked(plan, salary_mask, compiled),
                key=repr,
            )

    def test_interval_and_ne_pushdown(self):
        # 35 <= x, x != 45 — intervals with excluded points become
        # bound plus <> conjuncts.
        database = small_database()
        plan = emp_scan(output=(2,))
        meta = MetaTuple(
            frozenset({"V"}), (MetaCell.variable("x", True),),
            frozenset(),
        )
        store = ConstraintStore.empty() \
            .constrain("x", Comparator.GE, 35) \
            .constrain("x", Comparator.NE, 45)
        mask = mask_over((Column("SAL", INTEGER),),
                         [MaskRow(meta, store)])
        assert sql_predicate_view(mask) is not None
        python = PythonBackend(database)
        sqlite = SQLiteBackend(database)
        assert sorted(sqlite.execute_masked(plan, mask), key=repr) \
            == sorted(python.execute_masked(plan, mask), key=repr)
        visible = {
            row[0] for row in sqlite.execute_masked(plan, mask)
            if row[0] is not MASKED
        }
        assert visible == {39, 52}


class TestMutationSync:
    def test_insert_delete_load_are_observed(self):
        database = small_database()
        plan = emp_scan()
        python = PythonBackend(database)
        sqlite = SQLiteBackend(database)
        assert sqlite.execute(plan) == python.execute(plan)
        database.insert("EMP", ("dee", "toys", 61))
        assert sqlite.execute(plan) == python.execute(plan)
        database.delete("EMP", [("amy", "toys", 30)])
        assert sqlite.execute(plan) == python.execute(plan)
        database.load("EMP", [("solo", "toys", 1)])
        result = sqlite.execute(plan)
        assert result == python.execute(plan)
        assert result.rows == (("solo", "toys", 1),)

    def test_untouched_relations_are_not_reloaded(self):
        database = small_database()
        sqlite = SQLiteBackend(database)
        before = dict(sqlite._loaded)
        database.insert("DEPT", ("io", 5))
        sqlite.execute(emp_scan())  # touches EMP only
        assert sqlite._loaded["EMP"] == before["EMP"]
        assert sqlite._loaded["DEPT"] == before["DEPT"]  # not synced
        plan = PSJQuery((Occurrence("DEPT"),), (), (0, 1))
        sqlite.execute(plan)
        assert sqlite._loaded["DEPT"] == before["DEPT"] + 1


class TestBulkLoadAtomicity:
    def test_mid_load_fault_rolls_back_to_previous_rows(self):
        database = small_database()
        backend = SQLiteBackend(database)
        old = sorted(backend.execute(emp_scan()).rows)
        database.load("EMP", [("zed", "glue", 9)])
        with faults.inject({"backend.load": faults.Fault("raise",
                                                         times=1)}):
            with pytest.raises(FaultInjected):
                backend.execute(emp_scan())
            # The DELETE rolled back with the transaction: the store
            # still holds every pre-mutation row, not an empty or
            # half-loaded table.
            with backend._lock:
                raw = backend._fetch_locked(
                    f"SELECT * FROM {table_name('EMP')}"
                )
            assert sorted(tuple(r) for r in raw) == old
        # The staleness counter was not advanced, so the next execute
        # re-syncs and observes the mutation.
        after = backend.execute(emp_scan())
        assert sorted(after.rows) == [("zed", "glue", 9)]

    def test_mid_create_fault_rolls_back_ddl(self):
        database = small_database()
        backend = SQLiteBackend()
        backend._chunk_rows = 2  # EMP's 4 rows span two chunks
        with faults.inject({"backend.load": faults.Fault("raise",
                                                         times=1)}):
            with pytest.raises(FaultInjected):
                backend.load(database)
        assert not backend._created  # CREATE TABLE rolled back too
        # A clean reload succeeds from scratch: were the DDL left
        # behind, the retried CREATE TABLE would fail.
        backend.load(database)
        assert backend.execute(emp_scan()) \
            == PythonBackend(database).execute(emp_scan())

    def test_chunked_load_commits_once(self):
        database = small_database()
        backend = SQLiteBackend()
        backend._chunk_rows = 1  # one executemany per row
        with faults.inject({}) as plan:
            backend.load(database)
        # 4 EMP rows + 2 DEPT rows, one site visit per chunk.
        assert plan.visits["backend.load"] == 6
        assert backend.execute(emp_scan()) \
            == PythonBackend(database).execute(emp_scan())


class TestEngineIntegration:
    def test_engine_builds_configured_backend(self):
        engine = AuthorizationEngine(
            small_database(),
            config=DEFAULT_CONFIG.but(backend="sqlite"),
        )
        assert engine.backend.name == "sqlite"

    def test_unknown_backend_fails_at_construction(self):
        with pytest.raises(BackendUnavailableError):
            AuthorizationEngine(
                small_database(),
                config=DEFAULT_CONFIG.but(backend="nope"),
            )

    def test_backend_fault_fails_over_to_oracle(self):
        # PR 8 semantics: a persistent backend fault no longer denies
        # the request — the executor retries, exhausts, and soundly
        # re-evaluates on the Python oracle with identical delivery.
        engine = AuthorizationEngine(
            small_database(),
            config=DEFAULT_CONFIG.but(backend="sqlite"),
        )
        engine.define_view("view V (EMP.NAME, EMP.DEPT)")
        engine.permit("V", "u")
        query = "retrieve (EMP.NAME, EMP.DEPT)"
        clean = engine.authorize("u", query)
        assert clean.delivered
        assert clean.backend_used == "sqlite"
        assert clean.failover_reason is None
        with faults.inject({"backend.execute": faults.Fault("raise")}):
            faulted = engine.authorize("u", query)
        assert faulted.error is None
        assert faulted.backend_used == "python"
        assert "retry exhausted" in faulted.failover_reason
        assert sorted(faulted.delivered) == sorted(clean.delivered)
        # And cleanly on the primary again afterwards.
        after = engine.authorize("u", query)
        assert after.backend_used == "sqlite"
        assert after.delivered == clean.delivered

    def test_backend_fault_fails_closed_without_failover(self):
        # With the safety net off, PR 7 semantics are preserved:
        # retry exhaustion fails the request closed.
        engine = AuthorizationEngine(
            small_database(),
            config=DEFAULT_CONFIG.but(
                backend="sqlite", backend_failover=False,
            ),
        )
        engine.define_view("view V (EMP.NAME, EMP.DEPT)")
        engine.permit("V", "u")
        query = "retrieve (EMP.NAME, EMP.DEPT)"
        clean = engine.authorize("u", query)
        assert clean.delivered
        with faults.inject({"backend.execute": faults.Fault("raise")}):
            faulted = engine.authorize("u", query)
        assert faulted.error is not None
        assert faulted.delivered == ()
        # And cleanly again afterwards.
        assert engine.authorize("u", query).delivered \
            == clean.delivered


class TestServingIntegration:
    def test_per_tenant_backend_override(self):
        server = AuthorizationServer(ServerConfig(workers=2))
        try:
            tenant_py = server.add_tenant("alpha", small_database())
            tenant_sq = server.add_tenant(
                "beta", small_database(), backend="sqlite"
            )
            assert tenant_py.backend.name == "python"
            assert tenant_sq.backend.name == "sqlite"
            for tenant in (tenant_py, tenant_sq):
                tenant.engine.define_view("view V (EMP.NAME, EMP.SAL)")
                tenant.engine.permit("V", "u")
            query = "retrieve (EMP.NAME, EMP.SAL)"
            a = server.submit("alpha", "u", query).result(timeout=10)
            b = server.submit("beta", "u", query).result(timeout=10)
            assert sorted(a.delivered, key=repr) \
                == sorted(b.delivered, key=repr)
        finally:
            server.close()


class TestWorkloadBulkLoad:
    def test_scaled_instance_loads_into_backend(self):
        generator = WorkloadGenerator(7)
        spec = WorkloadSpec(seed=7, relations=2)
        db_schema = generator.schema(spec)
        backend = SQLiteBackend()
        database = generator.scaled_instance(
            spec, db_schema, {"R0": 500, "R1": 20}, backend=backend
        )
        # Dedupe may shrink below the requested counts, never grow.
        assert 0 < database.instance("R0").cardinality <= 500
        plan = PSJQuery((Occurrence("R0"),), (),
                        tuple(range(db_schema.get("R0").arity)))
        assert backend.execute(plan) \
            == PythonBackend(database).execute(plan)

    def test_scaled_instance_uniform_count(self):
        generator = WorkloadGenerator(11)
        spec = WorkloadSpec(seed=11, relations=2)
        db_schema = generator.schema(spec)
        database = generator.scaled_instance(spec, db_schema, 64)
        for rel in db_schema:
            assert 0 < database.instance(rel.name).cardinality <= 64
