"""The fail-closed resilience layer: budgets, ladder, faults.

Covers the resource budget in isolation (with a fake clock), the
degradation ladder's rung configurations, the engine-level behaviour
under budget exhaustion and injected faults, cache-corruption
transparency, and the per-element boundary of ``authorize_batch``.
The cross-cutting soundness properties (subset chains across rungs,
delivery under random faults) live in
``tests/property/test_degradation_ladder.py`` and
``tests/property/test_fault_injection.py``.
"""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.engine import AuthorizationEngine
from repro.core.audit import AuditLog
from repro.core.mask import MASKED
from repro.errors import (
    BudgetExceededError,
    DerivationTimeout,
    FaultInjected,
    ParseError,
    ReproError,
)
from repro.metaalgebra.budget import Budget
from repro.metaalgebra.ladder import (
    DEGRADATION_LEVELS,
    EMPTY_LEVEL,
    rung_config,
)
from repro.testing.faults import (
    Fault,
    FaultPlan,
    active,
    inject,
    install,
    plan_from_spec,
    uninstall,
)
from repro.workloads.paperdb import (
    EXAMPLE_1_QUERY,
    EXAMPLE_2_QUERY,
    EXAMPLE_3_QUERY,
    build_paper_engine,
)


def visible_cells(answer):
    """Position-indexed unmasked cells; delivered rows align with the
    raw answer, so positions are comparable across configurations."""
    return {
        (i, j, cell)
        for i, row in enumerate(answer.delivered)
        for j, cell in enumerate(row)
        if cell is not MASKED
    }


# ----------------------------------------------------------------------
# the budget, in isolation
# ----------------------------------------------------------------------


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestBudget:
    def test_row_cap_enforced(self):
        budget = Budget(max_rows=10)
        budget.charge_rows(10, "product")  # at the cap: fine
        with pytest.raises(BudgetExceededError) as info:
            budget.charge_rows(11, "product")
        assert info.value.resource == "mask-rows"
        assert info.value.stage == "product"
        assert info.value.observed == 11
        assert info.value.limit == 10

    def test_selfjoin_cap_enforced(self):
        budget = Budget(max_selfjoin_pool=4)
        budget.charge_selfjoin(4, "EMPLOYEE")
        with pytest.raises(BudgetExceededError):
            budget.charge_selfjoin(5, "EMPLOYEE")

    def test_zero_limits_mean_unlimited(self):
        budget = Budget()
        budget.charge_rows(10**9, "product")
        budget.charge_selfjoin(10**9, "EMPLOYEE")
        budget.check_deadline("prune")  # no deadline set

    def test_deadline_with_fake_clock(self):
        clock = FakeClock()
        budget = Budget(deadline_ms=100.0, clock=clock)
        budget.check_deadline("plan")
        clock.now = 0.099
        budget.check_deadline("plan")
        clock.now = 0.101
        with pytest.raises(DerivationTimeout) as info:
            budget.check_deadline("plan")
        assert info.value.stage == "plan"
        assert info.value.deadline_ms == 100.0

    def test_tick_polls_the_deadline_sparsely(self):
        clock = FakeClock()
        budget = Budget(deadline_ms=50.0, clock=clock)
        clock.now = 1.0  # deadline long past
        # The first CHECK_EVERY - 1 ticks never read the clock.
        for _ in range(Budget.CHECK_EVERY - 1):
            budget.tick("selection")
        with pytest.raises(DerivationTimeout):
            budget.tick("selection")

    def test_elapse_simulates_slowness(self):
        clock = FakeClock()
        budget = Budget(deadline_ms=100.0, clock=clock)
        budget.elapse(1.0)  # a "slow" fault charges simulated seconds
        with pytest.raises(DerivationTimeout):
            budget.check_deadline("product")

    def test_from_config_is_none_without_limits(self):
        assert Budget.from_config(DEFAULT_CONFIG) is None

    def test_from_config_picks_up_limits(self):
        config = DEFAULT_CONFIG.but(max_mask_rows=7,
                                    max_selfjoin_pool=3,
                                    derivation_deadline_ms=250.0)
        budget = Budget.from_config(config)
        assert budget is not None
        assert budget.max_rows == 7
        assert budget.max_selfjoin_pool == 3
        assert budget.deadline_ms == 250.0


# ----------------------------------------------------------------------
# rung configurations
# ----------------------------------------------------------------------


class TestRungConfig:
    def test_level_zero_is_identity(self):
        assert rung_config(DEFAULT_CONFIG, 0) is DEFAULT_CONFIG

    def test_empty_level_has_no_config(self):
        assert rung_config(DEFAULT_CONFIG, EMPTY_LEVEL) is None

    def test_out_of_range_levels_rejected(self):
        with pytest.raises(ValueError):
            rung_config(DEFAULT_CONFIG, -1)
        with pytest.raises(ValueError):
            rung_config(DEFAULT_CONFIG, EMPTY_LEVEL + 1)

    def test_rungs_only_disable_switches(self):
        previous = DEFAULT_CONFIG
        for level in range(1, EMPTY_LEVEL):
            rung = rung_config(DEFAULT_CONFIG, level)
            for switch in ("self_joins", "existential_closure",
                           "product_padding", "refine_selection"):
                # Monotone: once off at rung N, still off at rung N+1.
                assert getattr(rung, switch) <= getattr(previous, switch)
            previous = rung

    def test_ladder_names_match_levels(self):
        assert len(DEGRADATION_LEVELS) == EMPTY_LEVEL + 1
        assert DEGRADATION_LEVELS[0] == "full"
        assert DEGRADATION_LEVELS[EMPTY_LEVEL] == "empty"


# ----------------------------------------------------------------------
# the engine under budget pressure
# ----------------------------------------------------------------------


class TestBudgetDegradation:
    def test_unbudgeted_engine_is_at_full_fidelity(self):
        answer = build_paper_engine().authorize("Klein", EXAMPLE_2_QUERY)
        assert answer.degradation_level == 0
        assert answer.degradation == "full"
        assert not answer.degraded
        assert answer.error is None

    # Budget tests below drive Brown's Example 3: the streaming product
    # meters only rows that survive its folded-in pruning and dedupe,
    # and Klein's Example 2 survives on a single row at every rung, so
    # it can no longer exhaust a row cap.  Brown's self-join-heavy
    # derivation still materializes 7 rows at full fidelity.

    def test_tight_row_budget_degrades_not_fails(self):
        baseline = build_paper_engine().authorize("Brown",
                                                  EXAMPLE_3_QUERY)
        engine = build_paper_engine(DEFAULT_CONFIG.but(max_mask_rows=3))
        answer = engine.authorize("Brown", EXAMPLE_3_QUERY)
        assert answer.degraded
        assert answer.degradation == "no-padding"
        assert answer.error is None  # a rung succeeded: not a denial
        assert visible_cells(answer) <= visible_cells(baseline)

    def test_starved_budget_falls_to_empty(self):
        engine = build_paper_engine(DEFAULT_CONFIG.but(max_mask_rows=1))
        answer = engine.authorize("Brown", EXAMPLE_3_QUERY)
        assert answer.degradation == "empty"
        assert visible_cells(answer) == set()
        assert answer.error is not None
        assert "BudgetExceededError" in answer.error

    def test_streaming_survives_budgets_materializing_blows(self):
        # The point of the streaming product: rows destined for the
        # dangling-reference pruning never count against the budget.
        # Klein's Example 2 product has 15 materialized rows but only
        # one survivor, so a cap of 3 degrades the materializing
        # engine while the streaming one stays at full fidelity —
        # with an identical mask.
        streaming = build_paper_engine(
            DEFAULT_CONFIG.but(max_mask_rows=3)
        ).authorize("Klein", EXAMPLE_2_QUERY)
        materializing = build_paper_engine(
            DEFAULT_CONFIG.but(max_mask_rows=3, streaming_product=False)
        ).authorize("Klein", EXAMPLE_2_QUERY)
        assert not streaming.degraded
        assert materializing.degraded
        unbudgeted = build_paper_engine().authorize(
            "Klein", EXAMPLE_2_QUERY
        )
        assert visible_cells(streaming) == visible_cells(unbudgeted)

    def test_selfjoin_pool_budget_degrades(self):
        # Brown's EST closure blows a pool cap of 1 immediately.
        engine = build_paper_engine(
            DEFAULT_CONFIG.but(max_selfjoin_pool=1)
        )
        answer = engine.authorize("Brown", EXAMPLE_3_QUERY)
        assert answer.degraded
        baseline = build_paper_engine().authorize("Brown",
                                                  EXAMPLE_3_QUERY)
        assert visible_cells(answer) <= visible_cells(baseline)

    def test_generous_budget_changes_nothing(self):
        baseline = build_paper_engine().authorize("Brown",
                                                  EXAMPLE_1_QUERY)
        engine = build_paper_engine(
            DEFAULT_CONFIG.but(max_mask_rows=10_000,
                               max_selfjoin_pool=10_000,
                               derivation_deadline_ms=60_000.0)
        )
        answer = engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert answer.degradation_level == 0
        assert visible_cells(answer) == visible_cells(baseline)

    def test_ladder_disabled_goes_straight_to_empty(self):
        engine = build_paper_engine(
            DEFAULT_CONFIG.but(max_mask_rows=1, degradation_ladder=False)
        )
        answer = engine.authorize("Brown", EXAMPLE_3_QUERY)
        assert answer.degradation == "empty"
        assert visible_cells(answer) == set()

    def test_degraded_derivations_are_not_cached(self):
        engine = build_paper_engine(DEFAULT_CONFIG.but(max_mask_rows=3))
        first = engine.authorize("Brown", EXAMPLE_3_QUERY)
        second = engine.authorize("Brown", EXAMPLE_3_QUERY)
        assert first.degraded and second.degraded
        assert not second.cache_hit
        assert engine.stats().hits == 0

    def test_full_fidelity_derivations_still_cached(self):
        engine = build_paper_engine(DEFAULT_CONFIG.but(max_mask_rows=50))
        engine.authorize("Klein", EXAMPLE_2_QUERY)
        second = engine.authorize("Klein", EXAMPLE_2_QUERY)
        assert second.degradation_level == 0
        assert second.cache_hit


# ----------------------------------------------------------------------
# the engine under injected faults
# ----------------------------------------------------------------------


class TestFailClosed:
    @pytest.mark.parametrize("site", [
        "plan", "selfjoin", "product", "prune", "selection",
        "projection", "closure",
    ])
    def test_derivation_faults_never_raise(self, site):
        baseline = build_paper_engine().authorize("Klein",
                                                  EXAMPLE_2_QUERY)
        engine = build_paper_engine()
        with inject({site: "raise"}) as plan:
            answer = engine.authorize("Klein", EXAMPLE_2_QUERY)
        assert visible_cells(answer) <= visible_cells(baseline)
        if plan.trips[site]:
            # The fault actually fired on this path, so the answer
            # must be degraded (possibly all the way to empty).
            assert answer.degraded

    def test_persistent_plan_fault_yields_error_answer(self):
        engine = build_paper_engine()
        with inject({"plan": "raise"}) as plan:
            answer = engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert answer.degradation == "empty"
        assert answer.error is not None
        assert "FaultInjected" in answer.error
        assert visible_cells(answer) == set()
        # One trip per non-empty rung: the ladder really walked down.
        assert plan.trips["plan"] == EMPTY_LEVEL

    def test_transient_fault_degrades_one_rung(self):
        engine = build_paper_engine()
        with inject({"plan": Fault("raise", times=1)}):
            answer = engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert answer.degradation == "no-selfjoins"
        assert answer.error is None

    def test_evaluate_fault_is_caught_at_the_boundary(self):
        engine = build_paper_engine()
        with inject({"engine.evaluate": "raise"}):
            answer = engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert answer.error is not None
        assert answer.delivered == ()
        assert answer.permits == ()
        assert answer.degradation_level == EMPTY_LEVEL

    def test_slow_fault_times_out_each_rung(self):
        engine = build_paper_engine(
            DEFAULT_CONFIG.but(derivation_deadline_ms=50.0)
        )
        with inject({"plan": Fault("slow", seconds=10.0)}):
            answer = engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert answer.degradation == "empty"
        assert visible_cells(answer) == set()

    def test_slow_fault_without_deadline_is_harmless(self):
        engine = build_paper_engine()
        with inject({"plan": Fault("slow", seconds=10.0)}):
            answer = engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert answer.degradation_level == 0

    def test_dev_mode_reraises(self):
        engine = build_paper_engine(DEFAULT_CONFIG.but(fail_closed=False))
        with inject({"product": "raise"}):
            with pytest.raises(FaultInjected):
                engine.authorize("Brown", EXAMPLE_1_QUERY)

    def test_parse_errors_still_raise(self):
        engine = build_paper_engine()
        with pytest.raises(ReproError):
            engine.authorize("Brown", "retrieve this is not a statement")
        with pytest.raises(ParseError):
            engine.authorize("Brown", "permit SAE to Klein")

    def test_batch_boundary_is_per_element(self):
        engine = build_paper_engine()
        with inject({"engine.evaluate": Fault("raise", times=1)}):
            answers = engine.authorize_batch(
                "Brown", [EXAMPLE_1_QUERY, EXAMPLE_3_QUERY]
            )
        assert answers[0].error is not None
        assert answers[0].delivered == ()
        assert answers[1].error is None
        assert answers[1].degradation_level == 0

    def test_batch_failures_are_not_memoized(self):
        engine = build_paper_engine()
        with inject({"engine.evaluate": Fault("raise", times=1)}):
            answers = engine.authorize_batch(
                "Brown", [EXAMPLE_1_QUERY, EXAMPLE_1_QUERY]
            )
        # Same statement twice: the first hits the fault, the retry of
        # the identical plan must not replay the failure from the memo.
        assert answers[0].error is not None
        assert answers[1].error is None
        assert visible_cells(answers[1]) == visible_cells(
            build_paper_engine().authorize("Brown", EXAMPLE_1_QUERY)
        )

    def test_audit_records_degradation_and_failure(self):
        audit = AuditLog()
        engine = build_paper_engine(DEFAULT_CONFIG.but(max_mask_rows=3))
        engine.audit = audit
        engine.authorize("Brown", EXAMPLE_3_QUERY)
        with inject({"engine.evaluate": "raise"}):
            engine.authorize("Brown", EXAMPLE_1_QUERY)
        records = audit.records()
        assert records[0].degradation_level == 2
        assert records[0].error is None
        assert records[1].error is not None
        assert audit.degraded_count() == 2
        report = audit.report()
        assert "[degraded:2]" in report
        assert "[fail-closed]" in report


class TestCacheResilience:
    def test_corrupted_entry_is_never_served(self):
        engine = build_paper_engine()
        clean = engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert not clean.cache_hit
        with inject({"cache.entry": "corrupt"}):
            answer = engine.authorize("Brown", EXAMPLE_1_QUERY)
        # The corrupted value fails structural validation, so the
        # engine re-derives; the delivery is byte-identical.
        assert answer.delivered == clean.delivered
        assert answer.error is None

    def test_lookup_fault_degrades_to_fresh_derivation(self):
        engine = build_paper_engine()
        clean = engine.authorize("Brown", EXAMPLE_1_QUERY)
        with inject({"cache.get": "raise"}):
            answer = engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert answer.delivered == clean.delivered
        assert not answer.cache_hit

    def test_store_fault_loses_only_future_hits(self):
        engine = build_paper_engine()
        with inject({"cache.put": "raise"}):
            first = engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert first.error is None
        second = engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert not second.cache_hit  # the store never happened
        assert second.delivered == first.delivered

    def test_cache_faults_reraise_in_dev_mode(self):
        engine = build_paper_engine(DEFAULT_CONFIG.but(fail_closed=False))
        with inject({"cache.get": "raise"}):
            with pytest.raises(FaultInjected):
                engine.authorize("Brown", EXAMPLE_1_QUERY)


# ----------------------------------------------------------------------
# the fault-injection harness itself
# ----------------------------------------------------------------------


class TestFaultHarness:
    def test_inject_restores_previous_plan(self):
        outer = install({"plan": "raise"})
        try:
            with inject({"product": "raise"}) as inner:
                assert active() is inner
            assert active() is outer
        finally:
            uninstall()
        assert active() is None

    def test_fault_times_limits_firing(self):
        fault = Fault("raise", times=2)
        plan = FaultPlan({"plan": fault})
        for _ in range(2):
            with pytest.raises(FaultInjected):
                plan.visit("plan")
        plan.visit("plan")  # exhausted: passes through
        assert plan.visits["plan"] == 3
        assert plan.trips["plan"] == 2

    def test_plan_rejects_unknown_sites(self):
        with pytest.raises(ReproError, match="unknown fault site"):
            FaultPlan({"not.a.site": Fault("raise")})

    def test_plan_from_spec_round_trip(self):
        plan = plan_from_spec(
            "selfjoin:raise:1,product:slow:0.5,cache.entry:corrupt"
        )
        assert plan.faults["selfjoin"].action == "raise"
        assert plan.faults["selfjoin"].times == 1
        assert plan.faults["product"].action == "slow"
        assert plan.faults["product"].seconds == 0.5
        assert plan.faults["cache.entry"].action == "corrupt"

    @pytest.mark.parametrize("spec", [
        "plan", "plan:explode", "plan:raise:many", "plan:raise:1:2",
    ])
    def test_plan_from_spec_rejects_garbage(self, spec):
        with pytest.raises(ReproError):
            plan_from_spec(spec)

    def test_error_types_are_repro_errors(self):
        assert issubclass(BudgetExceededError, ReproError)
        assert issubclass(DerivationTimeout, ReproError)
        assert issubclass(FaultInjected, ReproError)
