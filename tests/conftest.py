"""Shared fixtures: the paper database and friends."""

from __future__ import annotations

import pytest

from repro.algebra import Database
from repro.core import AuthorizationEngine
from repro.meta import PermissionCatalog
from repro.workloads import (
    build_paper_catalog,
    build_paper_database,
    build_paper_engine,
    corporate_scenario,
    hospital_scenario,
)


@pytest.fixture
def paper_db() -> Database:
    return build_paper_database()


@pytest.fixture
def paper_catalog(paper_db: Database) -> PermissionCatalog:
    return build_paper_catalog(paper_db)


@pytest.fixture
def paper_engine() -> AuthorizationEngine:
    return build_paper_engine()


@pytest.fixture
def hospital():
    return hospital_scenario()


@pytest.fixture
def corporate():
    return corporate_scenario()
