"""Hardened persistence: atomic writes and validated loads.

``storage.dump`` to a path must be crash-safe — a failure at any point
before the final rename (simulated here with the ``storage.fsync``
fault site, which fires between the temp-file write and the fsync)
leaves the previous snapshot intact and no temporary files behind.
``storage.load``/``loads`` must reject damaged or alien content with a
typed :class:`~repro.errors.SnapshotError` instead of building a
half-restored catalog.
"""

from __future__ import annotations

import io
import json

import pytest

from repro import storage
from repro.errors import FaultInjected, ReproError, SnapshotError
from repro.testing.faults import Fault, inject
from repro.workloads.paperdb import (
    build_paper_catalog,
    build_paper_database,
)


@pytest.fixture
def pair():
    database = build_paper_database()
    return database, build_paper_catalog(database)


def tmp_leftovers(directory):
    return [p for p in directory.iterdir() if p.suffix == ".tmp"]


class TestAtomicDump:
    def test_round_trip_through_a_path(self, pair, tmp_path):
        database, catalog = pair
        target = tmp_path / "snapshot.json"
        storage.dump(database, catalog, target)
        loaded_db, loaded_catalog = storage.load(target)
        assert loaded_db.schema.names() == database.schema.names()
        assert loaded_catalog.view_names() == catalog.view_names()
        assert loaded_catalog.permission_rows() == \
            catalog.permission_rows()
        assert not tmp_leftovers(tmp_path)

    def test_kill_mid_write_preserves_previous_snapshot(self, pair,
                                                        tmp_path):
        database, catalog = pair
        target = tmp_path / "snapshot.json"
        storage.dump(database, catalog, target)
        before = target.read_text(encoding="utf-8")

        # Grow the catalog, then crash the second dump at the fsync.
        catalog.permit("SAE", "Klein")
        with inject({"storage.fsync": "raise"}):
            with pytest.raises(FaultInjected):
                storage.dump(database, catalog, target)

        # The destination still holds the complete previous snapshot
        # and the aborted temp file is gone.
        assert target.read_text(encoding="utf-8") == before
        assert not tmp_leftovers(tmp_path)
        _, reloaded = storage.loads(before)
        assert ("Klein", "SAE") not in reloaded.permission_rows()

    def test_failed_first_dump_leaves_nothing(self, pair, tmp_path):
        database, catalog = pair
        target = tmp_path / "snapshot.json"
        with inject({"storage.fsync": "raise"}):
            with pytest.raises(FaultInjected):
                storage.dump(database, catalog, target)
        assert not target.exists()
        assert not tmp_leftovers(tmp_path)

    def test_write_fault_fires_before_any_file_io(self, pair, tmp_path):
        database, catalog = pair
        target = tmp_path / "snapshot.json"
        with inject({"storage.write": Fault("raise", times=1)}):
            with pytest.raises(FaultInjected):
                storage.dump(database, catalog, target)
        assert not target.exists()

    def test_file_object_targets_write_directly(self, pair):
        database, catalog = pair
        buffer = io.StringIO()
        storage.dump(database, catalog, buffer)
        _, catalog2 = storage.loads(buffer.getvalue())
        assert catalog2.view_names() == catalog.view_names()


class TestValidatedLoad:
    def test_read_fault_propagates(self, pair, tmp_path):
        database, catalog = pair
        target = tmp_path / "snapshot.json"
        storage.dump(database, catalog, target)
        with inject({"storage.read": "raise"}):
            with pytest.raises(FaultInjected):
                storage.load(target)

    def test_garbage_is_a_snapshot_error(self):
        with pytest.raises(SnapshotError):
            storage.loads("this is not json {{{")

    def test_truncated_json_is_a_snapshot_error(self, pair):
        database, catalog = pair
        text = storage.dumps(database, catalog)
        with pytest.raises(SnapshotError):
            storage.loads(text[:len(text) // 2])

    def test_wrong_format_marker_rejected(self):
        with pytest.raises(SnapshotError) as info:
            storage.loads(json.dumps({"format": "something-else-v9"}))
        assert "something-else-v9" in str(info.value)

    def test_non_object_document_rejected(self):
        with pytest.raises(SnapshotError):
            storage.loads(json.dumps([1, 2, 3]))

    def test_malformed_relations_rejected(self):
        document = {"format": storage.FORMAT, "relations": "oops"}
        with pytest.raises(SnapshotError):
            storage.restore(document)
        document = {"format": storage.FORMAT,
                    "relations": [{"name": "R"}]}  # no attributes
        with pytest.raises(SnapshotError):
            storage.restore(document)

    def test_malformed_views_rejected(self):
        document = {"format": storage.FORMAT, "relations": [],
                    "views": [42]}
        with pytest.raises(SnapshotError):
            storage.restore(document)

    def test_malformed_grants_rejected(self, pair):
        database, catalog = pair
        document = storage.snapshot(database, catalog)
        document["grants"] = [["Brown"]]  # not a pair
        with pytest.raises(SnapshotError):
            storage.restore(document)
        document["grants"] = "Brown:SAE"
        with pytest.raises(SnapshotError):
            storage.restore(document)

    def test_bad_row_shapes_become_snapshot_errors(self, pair):
        database, catalog = pair
        document = storage.snapshot(database, catalog)
        document["relations"][0]["attributes"] = [{"nome": "typo"}]
        with pytest.raises(SnapshotError):
            storage.restore(document)

    def test_snapshot_error_is_a_repro_error(self):
        # Existing ``except ReproError`` handlers (the CLI's .load)
        # keep catching persistence failures.
        assert issubclass(SnapshotError, ReproError)
        with pytest.raises(ReproError):
            storage.loads("[")
