"""Unit tests for safety and type checking of calculus expressions."""

import pytest

from repro.calculus.ast import (
    AttrRef,
    Condition,
    ConstTerm,
    Query,
    ViewDefinition,
)
from repro.calculus.safety import check_expression, collect_occurrences
from repro.errors import (
    SafetyError,
    TypeMismatchError,
    UnknownAttributeError,
    UnknownRelationError,
)
from repro.predicates.comparators import Comparator


def ref(rel, attr, occ=1):
    return AttrRef(rel, attr, occ)


class TestOccurrences:
    def test_first_mention_order(self, paper_db):
        query = Query(
            (ref("EMPLOYEE", "NAME"),),
            (
                Condition(ref("EMPLOYEE", "NAME"), Comparator.EQ,
                          ref("ASSIGNMENT", "E_NAME")),
                Condition(ref("ASSIGNMENT", "P_NO"), Comparator.EQ,
                          ref("PROJECT", "NUMBER")),
            ),
        )
        occurrences = collect_occurrences(query)
        assert [str(o) for o in occurrences] == \
            ["EMPLOYEE", "ASSIGNMENT", "PROJECT"]

    def test_multi_occurrence(self, paper_db):
        query = Query(
            (ref("EMPLOYEE", "NAME", 1), ref("EMPLOYEE", "NAME", 2)), ()
        )
        occurrences = check_expression(query, paper_db.schema)
        assert [str(o) for o in occurrences] == ["EMPLOYEE", "EMPLOYEE:2"]


class TestStructuralChecks:
    def test_empty_target_rejected(self, paper_db):
        with pytest.raises(SafetyError):
            check_expression(Query((), ()), paper_db.schema)

    def test_unknown_relation(self, paper_db):
        with pytest.raises(UnknownRelationError):
            check_expression(Query((ref("NOPE", "A"),), ()),
                             paper_db.schema)

    def test_unknown_attribute(self, paper_db):
        with pytest.raises(UnknownAttributeError):
            check_expression(Query((ref("EMPLOYEE", "WAGE"),), ()),
                             paper_db.schema)

    def test_occurrence_gap_rejected(self, paper_db):
        query = Query(
            (ref("EMPLOYEE", "NAME", 1), ref("EMPLOYEE", "NAME", 3)), ()
        )
        with pytest.raises(SafetyError):
            check_expression(query, paper_db.schema)

    def test_zero_occurrence_rejected(self, paper_db):
        query = Query((ref("EMPLOYEE", "NAME", 0),), ())
        with pytest.raises(SafetyError):
            check_expression(query, paper_db.schema)

    def test_constant_only_condition_rejected(self, paper_db):
        query = Query(
            (ref("EMPLOYEE", "NAME"),),
            (Condition(ConstTerm(1), Comparator.EQ, ConstTerm(1)),),
        )
        with pytest.raises(SafetyError):
            check_expression(query, paper_db.schema)


class TestTypeChecks:
    def test_cross_domain_comparison_rejected(self, paper_db):
        query = Query(
            (ref("EMPLOYEE", "NAME"),),
            (Condition(ref("EMPLOYEE", "NAME"), Comparator.EQ,
                       ConstTerm(5)),),
        )
        with pytest.raises(TypeMismatchError):
            check_expression(query, paper_db.schema)

    def test_attr_attr_domain_mismatch(self, paper_db):
        query = Query(
            (ref("EMPLOYEE", "NAME"),),
            (Condition(ref("EMPLOYEE", "NAME"), Comparator.EQ,
                       ref("EMPLOYEE", "SALARY")),),
        )
        with pytest.raises(TypeMismatchError):
            check_expression(query, paper_db.schema)

    def test_valid_view_passes(self, paper_db):
        view = ViewDefinition(
            "V",
            (ref("PROJECT", "NUMBER"),),
            (Condition(ref("PROJECT", "BUDGET"), Comparator.GE,
                       ConstTerm(250_000)),),
        )
        check_expression(view, paper_db.schema)
