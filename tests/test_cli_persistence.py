"""Unit tests for CLI persistence (.save/.load/.audit) and main()."""

import io

import pytest

from repro.cli import Repl, main
from repro.core.audit import AuditLog
from repro.workloads import build_paper_engine
from repro.workloads.paperdb import EXAMPLE_1_QUERY


class TestSaveLoad:
    def test_save_then_load(self, tmp_path):
        path = str(tmp_path / "authdb.json")
        repl = Repl(build_paper_engine(), user="admin")
        assert f"saved to {path}" in repl.process_line(f".save {path}")

        # Mutate the live engine, then restore the snapshot.
        repl.process_line(".user admin")
        repl.engine.catalog.revoke("PSA", "Brown")
        assert f"loaded {path}" in repl.process_line(f".load {path}")
        assert "PSA" in repl.engine.catalog.views_of("Brown")

    def test_load_missing_file(self):
        repl = Repl(build_paper_engine())
        assert repl.process_line(".load /nonexistent/x.json") \
            .startswith("error:")

    def test_usage_messages(self):
        repl = Repl(build_paper_engine())
        assert "usage" in repl.process_line(".save")
        assert "usage" in repl.process_line(".load")

    def test_loaded_engine_answers(self, tmp_path):
        path = str(tmp_path / "authdb.json")
        repl = Repl(build_paper_engine(), user="Brown")
        repl.process_line(f".save {path}")
        repl.process_line(f".load {path}")
        output = repl.process_line(EXAMPLE_1_QUERY.replace("\n", " "))
        assert "Acme" in output


class TestAuditCommand:
    def test_audit_disabled_message(self):
        repl = Repl(build_paper_engine())
        assert "not enabled" in repl.process_line(".audit")

    def test_audit_report(self):
        engine = build_paper_engine()
        engine.audit = AuditLog()
        repl = Repl(engine, user="Brown")
        repl.process_line(EXAMPLE_1_QUERY.replace("\n", " "))
        report = repl.process_line(".audit")
        assert "Brown: partial" in report


class TestMain:
    def test_execute_file(self, tmp_path, capsys, monkeypatch):
        script = tmp_path / "script.txt"
        script.write_text(
            ".user Brown\n"
            + EXAMPLE_1_QUERY.replace("\n", " ") + "\n"
            + ".quit\n",
            encoding="utf-8",
        )
        code = main(["--db", "paper", "--execute", str(script)])
        assert code == 0
        assert "Acme" in capsys.readouterr().out

    def test_snapshot_option(self, tmp_path, capsys):
        from repro import storage

        engine = build_paper_engine()
        path = tmp_path / "snap.json"
        storage.dump(engine.database, engine.catalog, path)

        script = tmp_path / "script.txt"
        script.write_text(".tables\n.quit\n", encoding="utf-8")
        code = main(["--snapshot", str(path),
                     "--execute", str(script)])
        assert code == 0
        assert "EMPLOYEE: 3 rows" in capsys.readouterr().out

    def test_audit_option(self, tmp_path, capsys):
        script = tmp_path / "script.txt"
        script.write_text(
            ".user Brown\n"
            + EXAMPLE_1_QUERY.replace("\n", " ") + "\n"
            + ".audit\n.quit\n",
            encoding="utf-8",
        )
        code = main(["--db", "paper", "--audit",
                     "--execute", str(script)])
        assert code == 0
        assert "Brown: partial" in capsys.readouterr().out
