"""Unit tests for repro.algebra.schema."""

import pytest

from repro.algebra.schema import (
    Attribute,
    DatabaseSchema,
    RelationSchema,
    make_schema,
    qualified_label,
)
from repro.algebra.types import INTEGER, STRING
from repro.errors import (
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
)


@pytest.fixture
def employee():
    return make_schema(
        "EMPLOYEE",
        [("NAME", STRING), ("TITLE", STRING), ("SALARY", INTEGER)],
        key=["NAME"],
    )


class TestAttribute:
    def test_valid_names(self):
        Attribute("NAME", STRING)
        Attribute("A_1", INTEGER)

    def test_invalid_names(self):
        with pytest.raises(SchemaError):
            Attribute("", STRING)
        with pytest.raises(SchemaError):
            Attribute("A B", STRING)

    def test_str(self):
        assert str(Attribute("X", INTEGER)) == "X:integer"


class TestRelationSchema:
    def test_arity_and_names(self, employee):
        assert employee.arity == 3
        assert employee.attribute_names == ("NAME", "TITLE", "SALARY")

    def test_index_of(self, employee):
        assert employee.index_of("NAME") == 0
        assert employee.index_of("SALARY") == 2

    def test_index_of_unknown(self, employee):
        with pytest.raises(UnknownAttributeError):
            employee.index_of("WAGE")

    def test_has_attribute(self, employee):
        assert employee.has_attribute("TITLE")
        assert not employee.has_attribute("BUDGET")

    def test_domain_of(self, employee):
        assert employee.domain_of("SALARY") is INTEGER
        assert employee.domain_of("NAME") is STRING

    def test_key_indices(self, employee):
        assert employee.key_indices() == (0,)

    def test_composite_key(self):
        schema = make_schema(
            "ASSIGNMENT", [("E", STRING), ("P", STRING)], key=["E", "P"]
        )
        assert schema.key_indices() == (0, 1)

    def test_keyless(self):
        schema = make_schema("LOG", [("MSG", STRING)])
        assert schema.key_indices() == ()

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            make_schema("R", [("A", STRING), ("A", INTEGER)])

    def test_empty_scheme_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())

    def test_key_must_reference_attributes(self):
        with pytest.raises(SchemaError):
            make_schema("R", [("A", STRING)], key=["B"])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            make_schema("", [("A", STRING)])

    def test_iteration_and_str(self, employee):
        assert [a.name for a in employee] == ["NAME", "TITLE", "SALARY"]
        assert str(employee) == "EMPLOYEE(NAME, TITLE, SALARY)"


class TestDatabaseSchema:
    def test_add_and_get(self, employee):
        db = DatabaseSchema()
        db.add(employee)
        assert db.get("EMPLOYEE") is employee
        assert "EMPLOYEE" in db
        assert len(db) == 1

    def test_duplicate_rejected(self, employee):
        db = DatabaseSchema()
        db.add(employee)
        with pytest.raises(SchemaError):
            db.add(employee)

    def test_get_unknown(self):
        with pytest.raises(UnknownRelationError):
            DatabaseSchema().get("NOPE")

    def test_names_preserve_order(self, employee):
        db = DatabaseSchema()
        db.add(make_schema("Z", [("A", STRING)]))
        db.add(employee)
        assert db.names() == ("Z", "EMPLOYEE")


class TestQualifiedLabel:
    def test_single_occurrence(self):
        assert qualified_label("EMPLOYEE", 1, "NAME") == "NAME"

    def test_multi_occurrence(self):
        assert qualified_label("EMPLOYEE", 2, "NAME", multi=True) == "NAME:2"
