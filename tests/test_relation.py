"""Unit tests for repro.algebra.relation."""

import pytest

from repro.algebra.relation import Column, Relation, empty_like
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.errors import EvaluationError, TypeMismatchError


@pytest.fixture
def people():
    schema = make_schema(
        "PEOPLE", [("NAME", STRING), ("AGE", INTEGER)], key=["NAME"]
    )
    return Relation.from_schema(
        schema, [("ann", 30), ("bob", 41), ("cyd", 30)]
    )


@pytest.fixture
def pets():
    schema = make_schema("PETS", [("PET", STRING)])
    return Relation.from_schema(schema, [("cat",), ("dog",)])


class TestConstruction:
    def test_from_schema_sets_sources(self, people):
        assert people.columns[0].source == ("PEOPLE", "NAME")

    def test_set_semantics_dedupe(self):
        schema = make_schema("R", [("A", STRING)])
        relation = Relation.from_schema(schema, [("x",), ("x",), ("y",)])
        assert relation.cardinality == 2

    def test_row_order_is_first_seen(self):
        schema = make_schema("R", [("A", STRING)])
        relation = Relation.from_schema(schema, [("y",), ("x",), ("y",)])
        assert relation.rows == (("y",), ("x",))

    def test_arity_validation(self):
        schema = make_schema("R", [("A", STRING)])
        with pytest.raises(TypeMismatchError):
            Relation.from_schema(schema, [("x", "extra")])

    def test_domain_validation(self):
        schema = make_schema("R", [("A", INTEGER)])
        with pytest.raises(TypeMismatchError):
            Relation.from_schema(schema, [("not-int",)])

    def test_membership(self, people):
        assert ("ann", 30) in people
        assert ("ann", 31) not in people


class TestOperators:
    def test_product(self, people, pets):
        product = people.product(pets)
        assert product.arity == 3
        assert product.cardinality == 6
        assert ("ann", 30, "cat") in product

    def test_select(self, people):
        thirty = people.select(lambda row: row[1] == 30)
        assert set(thirty.rows) == {("ann", 30), ("cyd", 30)}

    def test_select_keeps_columns(self, people):
        assert people.select(lambda _: False).labels() == ("NAME", "AGE")

    def test_project(self, people):
        ages = people.project([1])
        assert ages.labels() == ("AGE",)
        # projection is set-semantics: duplicate 30s collapse
        assert set(ages.rows) == {(30,), (41,)}
        assert ages.cardinality == 2

    def test_project_reorder_and_repeat(self, people):
        swapped = people.project([1, 0, 1])
        assert swapped.labels() == ("AGE", "NAME", "AGE")
        assert (30, "ann", 30) in swapped

    def test_project_out_of_range(self, people):
        with pytest.raises(EvaluationError):
            people.project([5])

    def test_rename(self, people):
        renamed = people.rename(["N", "A"])
        assert renamed.labels() == ("N", "A")
        assert renamed.same_rows(people)

    def test_rename_arity_mismatch(self, people):
        with pytest.raises(EvaluationError):
            people.rename(["ONLY_ONE"])

    def test_union(self, people):
        other = Relation(people.columns, [("dee", 22), ("ann", 30)])
        combined = people.union(other)
        assert combined.cardinality == 4

    def test_difference(self, people):
        other = Relation(people.columns, [("ann", 30)])
        remaining = people.difference(other)
        assert set(remaining.rows) == {("bob", 41), ("cyd", 30)}

    def test_intersection(self, people):
        other = Relation(people.columns, [("ann", 30), ("zed", 1)])
        common = people.intersection(other)
        assert set(common.rows) == {("ann", 30)}

    def test_union_arity_mismatch(self, people, pets):
        with pytest.raises(EvaluationError):
            people.union(pets)


class TestEquality:
    def test_equal_ignores_row_order(self, people):
        shuffled = Relation(people.columns, reversed(people.rows))
        assert people == shuffled

    def test_same_rows_ignores_labels(self, people):
        renamed = people.rename(["X", "Y"])
        assert people.same_rows(renamed)
        assert people != renamed  # labels differ

    def test_column_values(self, people):
        assert people.column_values(1) == (30, 41, 30)

    def test_index_of_label(self, people):
        assert people.index_of("AGE") == 1
        with pytest.raises(EvaluationError):
            people.index_of("NOPE")

    def test_empty_like(self, people):
        empty = empty_like(people)
        assert empty.cardinality == 0
        assert empty.labels() == people.labels()

    def test_column_renamed_preserves_source(self):
        column = Column("A", STRING, ("R", "A"))
        assert column.renamed("B").source == ("R", "A")
