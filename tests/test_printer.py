"""Unit tests for the pretty-printer, including round-trips."""

import pytest

from repro.lang.parser import parse_statement
from repro.lang.printer import format_statement

PAPER_STATEMENTS = [
    "view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)",
    "view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
    "where PROJECT.SPONSOR = Acme",
    "view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, "
    "PROJECT.BUDGET) where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
    "and PROJECT.NUMBER = ASSIGNMENT.P_NO "
    "and PROJECT.BUDGET >= 250,000",
    "view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, EMPLOYEE:1.TITLE) "
    "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE",
    "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
    "where PROJECT.BUDGET >= 250,000",
    "permit EST to KLEIN",
    "revoke ELP from Klein",
]


class TestRoundTrip:
    @pytest.mark.parametrize("text", PAPER_STATEMENTS)
    def test_parse_format_parse(self, text):
        first = parse_statement(text)
        formatted = format_statement(first)
        second = parse_statement(formatted)
        assert first == second

    @pytest.mark.parametrize("text", PAPER_STATEMENTS)
    def test_format_is_fixpoint(self, text):
        statement = parse_statement(text)
        once = format_statement(statement)
        twice = format_statement(parse_statement(once))
        assert once == twice


class TestLayout:
    def test_where_clauses_on_own_lines(self):
        statement = parse_statement(PAPER_STATEMENTS[2])
        lines = format_statement(statement).splitlines()
        assert any(line.startswith("where ") for line in lines)
        assert sum(1 for line in lines if line.startswith("and ")) == 2

    def test_long_target_list_wraps(self):
        statement = parse_statement(
            "view W (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY, "
            "PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET, "
            "ASSIGNMENT.E_NAME, ASSIGNMENT.P_NO)"
        )
        text = format_statement(statement, width=60)
        assert all(len(line) <= 72 for line in text.splitlines())
        assert parse_statement(text) == statement

    def test_permit_renders_inline(self):
        statement = parse_statement("permit A, B to U")
        assert format_statement(statement) == "permit A, B to U"
