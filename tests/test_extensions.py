# soundlint: disable-file=SL006 -- exercises the algebra/evaluation layer directly, below the authorization boundary; nothing is user-delivered
"""Unit tests for the Section 6 extensions: updates, disjunction,
existential closure."""

import pytest

from repro.calculus.ast import AttrRef, Condition, ConstTerm
from repro.config import DEFAULT_CONFIG
from repro.core.engine import AuthorizationEngine
from repro.errors import AuthorizationError, SafetyError
from repro.extensions.disjunction import (
    define_disjunctive_view,
    permit_disjunctive,
    revoke_disjunctive,
)
from repro.extensions.updates import UpdateAuthorizer
from repro.meta.catalog import PermissionCatalog
from repro.predicates.comparators import Comparator
from repro.workloads.paperdb import build_paper_database


@pytest.fixture
def engine():
    database = build_paper_database()
    catalog = PermissionCatalog(database.schema)
    catalog.define_view(
        "view ACME (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
        "where PROJECT.SPONSOR = Acme"
    )
    catalog.permit("ACME", "manager")
    return AuthorizationEngine(database, catalog)


class TestInsert:
    def test_insert_within_view(self, engine):
        authorizer = UpdateAuthorizer(engine)
        authorizer.insert("manager", "PROJECT", ("zq-99", "Acme", 50_000))
        assert ("zq-99", "Acme", 50_000) in engine.database.instance(
            "PROJECT"
        )

    def test_insert_outside_view_denied(self, engine):
        authorizer = UpdateAuthorizer(engine)
        with pytest.raises(AuthorizationError):
            authorizer.insert("manager", "PROJECT",
                              ("zq-99", "Apex", 50_000))
        assert ("zq-99", "Apex", 50_000) not in engine.database.instance(
            "PROJECT"
        )

    def test_check_insert_reports_reason(self, engine):
        authorizer = UpdateAuthorizer(engine)
        decision = authorizer.check_insert(
            "manager", "PROJECT", ("p", "Apex", 1)
        )
        assert not decision.allowed and "not fully covered" in decision.reason


class TestDelete:
    def condition(self):
        return Condition(
            AttrRef("PROJECT", "SPONSOR"), Comparator.EQ, ConstTerm("Acme")
        )

    def test_delete_visible_rows(self, engine):
        authorizer = UpdateAuthorizer(engine)
        removed = authorizer.delete("manager", "PROJECT",
                                    [self.condition()])
        assert removed == 1
        assert all(
            row[1] != "Acme"
            for row in engine.database.instance("PROJECT").rows
        )

    def test_strict_mode_refuses_overreach(self, engine):
        authorizer = UpdateAuthorizer(engine, strict=True)
        with pytest.raises(AuthorizationError):
            authorizer.delete("manager", "PROJECT")  # matches Apex too

    def test_lenient_mode_deletes_visible_only(self, engine):
        authorizer = UpdateAuthorizer(engine, strict=False)
        removed = authorizer.delete("manager", "PROJECT")
        assert removed == 1
        remaining = engine.database.instance("PROJECT")
        assert remaining.cardinality == 2  # Apex and Summit survive


class TestModify:
    def condition(self):
        return Condition(
            AttrRef("PROJECT", "NUMBER"), Comparator.EQ, ConstTerm("bq-45")
        )

    def test_modify_within_view(self, engine):
        authorizer = UpdateAuthorizer(engine)
        changed = authorizer.modify(
            "manager", "PROJECT", [self.condition()], {"BUDGET": 999}
        )
        assert changed == 1
        assert ("bq-45", "Acme", 999) in engine.database.instance("PROJECT")

    def test_modify_escaping_view_denied(self, engine):
        authorizer = UpdateAuthorizer(engine)
        with pytest.raises(AuthorizationError):
            # Moving the row to Apex would take it outside ACME.
            authorizer.modify(
                "manager", "PROJECT", [self.condition()],
                {"SPONSOR": "Apex"},
            )

    def test_modify_invisible_rows_denied(self, engine):
        authorizer = UpdateAuthorizer(engine)
        apex = Condition(
            AttrRef("PROJECT", "NUMBER"), Comparator.EQ, ConstTerm("sv-72")
        )
        with pytest.raises(AuthorizationError):
            authorizer.modify("manager", "PROJECT", [apex], {"BUDGET": 1})


class TestDisjunction:
    def test_union_of_branches(self):
        database = build_paper_database()
        catalog = PermissionCatalog(database.schema)
        view = define_disjunctive_view(catalog, "AA", [
            "view B1 (PROJECT.NUMBER, PROJECT.SPONSOR) "
            "where PROJECT.SPONSOR = Acme",
            "view B2 (PROJECT.NUMBER, PROJECT.SPONSOR) "
            "where PROJECT.SPONSOR = Apex",
        ])
        assert view.branch_names == ("AA#1", "AA#2")
        permit_disjunctive(catalog, view, "u")
        engine = AuthorizationEngine(database, catalog, DEFAULT_CONFIG)
        answer = engine.authorize(
            "u", "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)"
        )
        visible = {
            row for row in answer.delivered
            if all(not str(v).startswith("#") for v in row)
        }
        assert visible == {("bq-45", "Acme"), ("sv-72", "Apex")}

    def test_revoke_disjunctive(self):
        database = build_paper_database()
        catalog = PermissionCatalog(database.schema)
        view = define_disjunctive_view(catalog, "AA", [
            "view B1 (PROJECT.NUMBER) where PROJECT.SPONSOR = Acme",
        ])
        permit_disjunctive(catalog, view, "u")
        revoke_disjunctive(catalog, view, "u")
        assert catalog.views_of("u") == ()

    def test_shape_mismatch_rejected(self):
        database = build_paper_database()
        catalog = PermissionCatalog(database.schema)
        with pytest.raises(SafetyError):
            define_disjunctive_view(catalog, "AA", [
                "view B1 (PROJECT.NUMBER)",
                "view B2 (PROJECT.SPONSOR)",
            ])

    def test_empty_branches_rejected(self):
        database = build_paper_database()
        catalog = PermissionCatalog(database.schema)
        with pytest.raises(SafetyError):
            define_disjunctive_view(catalog, "AA", [])


class TestExistentialClosure:
    def test_est_projection_with_closure(self):
        """With the closure, a single-EMPLOYEE query can use one EST
        meta-tuple: the missing twin is subsumed by the present one."""
        database = build_paper_database()
        catalog = PermissionCatalog(database.schema)
        catalog.define_view(
            "view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, "
            "EMPLOYEE:1.TITLE) "
            "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"
        )
        catalog.permit("EST", "u")
        query = "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)"

        plain = AuthorizationEngine(database, catalog, DEFAULT_CONFIG)
        assert plain.authorize("u", query).is_fully_masked

        closed = AuthorizationEngine(
            database, catalog,
            DEFAULT_CONFIG.but(existential_closure=True),
        )
        answer = closed.authorize("u", query)
        # pi over one EST atom is all (name, title) pairs: sound and
        # now delivered.
        assert answer.is_fully_delivered

    def test_closure_never_excuses_unrelated_tuples(self):
        """A genuinely dangling reference (ELP's x1 without the
        ASSIGNMENT tuple) stays pruned even with the closure on."""
        database = build_paper_database()
        catalog = PermissionCatalog(database.schema)
        catalog.define_view(
            "view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, "
            "PROJECT.BUDGET) "
            "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
            "and PROJECT.NUMBER = ASSIGNMENT.P_NO "
            "and PROJECT.BUDGET >= 250,000"
        )
        catalog.permit("ELP", "u")
        engine = AuthorizationEngine(
            database, catalog,
            DEFAULT_CONFIG.but(existential_closure=True),
        )
        answer = engine.authorize("u", "retrieve (EMPLOYEE.NAME)")
        assert answer.is_fully_masked
