"""Unit tests for the four-case classifier (Section 4.2)."""

import pytest

from repro.predicates.implication import (
    SelectionCase,
    classify,
    conjoined,
)
from repro.predicates.intervals import Interval

MU = Interval(lo=300_000, hi=600_000)


class TestPaperCases:
    """The exact four probes of Section 4.2."""

    def test_case_1_conjoin(self):
        lam = Interval(lo=200_000, hi=400_000)
        assert classify(MU, lam) is SelectionCase.CONJOIN
        narrowed = conjoined(MU, lam)
        assert narrowed.lo == 300_000 and narrowed.hi == 400_000

    def test_case_2_retain(self):
        lam = Interval(lo=200_000, hi=700_000)
        assert classify(MU, lam) is SelectionCase.RETAIN

    def test_case_3_clear(self):
        lam = Interval(lo=400_000, hi=500_000)
        assert classify(MU, lam) is SelectionCase.CLEAR

    def test_case_4_discard(self):
        lam = Interval(hi=300_000, hi_strict=True)
        assert classify(MU, lam) is SelectionCase.DISCARD


class TestPriorities:
    def test_equivalence_prefers_clear(self):
        # "Clearing selection predicates ensures that more meta-tuples
        # will survive future projections."
        assert classify(MU, MU) is SelectionCase.CLEAR

    def test_true_mu_always_clears(self):
        assert classify(Interval.top(), Interval(lo=5)) \
            is SelectionCase.CLEAR

    def test_true_lambda_retains(self):
        assert classify(Interval(lo=5), Interval.top()) \
            is SelectionCase.RETAIN

    def test_empty_lambda_discards(self):
        empty = Interval(lo=5, hi=3)
        assert classify(MU, empty) is SelectionCase.DISCARD

    def test_point_inside_clears(self):
        assert classify(MU, Interval.point(400_000)) is SelectionCase.CLEAR

    def test_point_outside_discards(self):
        assert classify(MU, Interval.point(100)) is SelectionCase.DISCARD

    def test_point_mu_inside_lambda_retains(self):
        assert classify(Interval.point(400_000),
                        Interval(lo=300_000)) is SelectionCase.RETAIN

    def test_point_mu_outside_lambda_discards(self):
        assert classify(Interval.point(100),
                        Interval(lo=300_000)) is SelectionCase.DISCARD


class TestSoundFallback:
    @pytest.mark.parametrize("lam", [
        Interval(excluded=frozenset([400_000])),
        Interval(lo=350_000, hi=700_000),
        Interval(lo=100, hi=350_000),
    ])
    def test_overlaps_conjoin(self, lam):
        assert classify(MU, lam) is SelectionCase.CONJOIN
        assert not conjoined(MU, lam).is_empty()

    def test_string_domain(self):
        mu = Interval.point("Acme")
        assert classify(mu, Interval.point("Acme")) is SelectionCase.CLEAR
        assert classify(mu, Interval.point("Apex")) is SelectionCase.DISCARD
