"""Unit tests for pruning and the self-join refinement."""

from repro.algebra.relation import Column
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.meta.cell import MetaCell
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.prune import (
    cleanup,
    prune_dangling,
    prune_invisible,
    prune_unsatisfiable,
)
from repro.metaalgebra.selfjoin import combine, selfjoin_closure
from repro.metaalgebra.table import MaskRow, MaskTable
from repro.predicates.comparators import Comparator
from repro.predicates.store import ConstraintStore


def tup(*cells, views=("V",), provenance=(("V", 0),)):
    return MetaTuple(frozenset(views), tuple(cells), frozenset(provenance))


def table(*rows):
    width = rows[0].meta.arity
    cols = tuple(Column(f"C{i}", STRING) for i in range(width))
    return MaskTable(cols, rows)


EMPTY = ConstraintStore.empty()


class TestDanglingPrune:
    def test_resolved_variable_kept(self):
        row = MaskRow(tup(
            MetaCell.variable("x1", True), MetaCell.variable("x1", True),
            provenance=(("V", 0), ("V", 1)),
        ), EMPTY)
        defining = {"x1": frozenset({("V", 0), ("V", 1)})}
        assert prune_dangling(table(row), defining).cardinality == 1

    def test_dangling_variable_pruned(self):
        row = MaskRow(tup(
            MetaCell.variable("x1", True), MetaCell.blank(),
            provenance=(("V", 0),),
        ), EMPTY)
        defining = {"x1": frozenset({("V", 0), ("V", 1)})}
        assert prune_dangling(table(row), defining).cardinality == 0

    def test_comparison_only_variable_is_self_contained(self):
        # x3 of ELP: defined by one meta-tuple plus COMPARISON.
        row = MaskRow(tup(
            MetaCell.variable("x3", True), MetaCell.blank(),
            provenance=(("ELP", 1),),
        ), EMPTY)
        defining = {"x3": frozenset({("ELP", 1)})}
        assert prune_dangling(table(row), defining).cardinality == 1

    def test_excuse_keeps_row(self):
        row = MaskRow(tup(
            MetaCell.variable("x4", True), MetaCell.blank(),
            provenance=(("EST", 0),),
        ), EMPTY)
        defining = {"x4": frozenset({("EST", 0), ("EST", 1)})}
        kept = prune_dangling(
            table(row), defining, excuse=lambda meta, missing: True
        )
        assert kept.cardinality == 1
        rejected = prune_dangling(
            table(row), defining, excuse=lambda meta, missing: False
        )
        assert rejected.cardinality == 0


class TestOtherPrunes:
    def test_unsatisfiable_row_pruned(self):
        bad = EMPTY.constrain("x1", Comparator.GT, 5) \
            .constrain("x1", Comparator.LT, 3)
        row = MaskRow(tup(MetaCell.variable("x1", True),
                          MetaCell.blank()), bad)
        assert prune_unsatisfiable(table(row)).cardinality == 0

    def test_invisible_row_pruned(self):
        row = MaskRow(tup(MetaCell.constant("c"), MetaCell.blank()), EMPTY)
        assert prune_invisible(table(row)).cardinality == 0

    def test_cleanup_removes_subsumed_restricted_rows(self):
        unrestricted = MaskRow(
            tup(MetaCell.blank(True), MetaCell.blank(True)), EMPTY
        )
        restricted = MaskRow(
            tup(MetaCell.constant("c", True), MetaCell.blank()), EMPTY
        )
        out = cleanup(table(unrestricted, restricted))
        assert out.cardinality == 1
        assert out.rows[0].meta.cells[0].is_blank

    def test_cleanup_keeps_wider_restricted_rows(self):
        narrow_unrestricted = MaskRow(
            tup(MetaCell.blank(True), MetaCell.blank()), EMPTY
        )
        wide_restricted = MaskRow(
            tup(MetaCell.constant("c", True), MetaCell.blank(True)), EMPTY
        )
        out = cleanup(table(narrow_unrestricted, wide_restricted))
        assert out.cardinality == 2

    def test_cleanup_collapses_nested_unrestricted_rows(self):
        wide = MaskRow(
            tup(MetaCell.blank(True), MetaCell.blank(True)), EMPTY
        )
        narrow = MaskRow(
            tup(MetaCell.blank(True), MetaCell.blank()), EMPTY
        )
        out = cleanup(table(wide, narrow))
        assert out.cardinality == 1
        assert out.rows[0].meta.starred_positions() == (0, 1)


EMPLOYEE = make_schema(
    "EMPLOYEE",
    [("NAME", STRING), ("TITLE", STRING), ("SALARY", INTEGER)],
    key=["NAME"],
)


class TestSelfJoin:
    def sae(self):
        return tup(
            MetaCell.blank(True), MetaCell.blank(), MetaCell.blank(True),
            views=("SAE",), provenance=(("SAE", 0),),
        )

    def est(self, ordinal):
        return tup(
            MetaCell.blank(True), MetaCell.variable("x4", True),
            MetaCell.blank(),
            views=("EST",), provenance=(("EST", ordinal),),
        )

    def test_paper_combination(self):
        combined = combine(self.sae(), self.est(0), (0,))
        assert combined is not None
        assert [str(c) for c in combined.cells] == ["⊔*", "x4*", "⊔*"]
        assert combined.views == frozenset({"SAE", "EST"})
        assert combined.provenance == frozenset({("SAE", 0), ("EST", 0)})

    def test_same_view_not_combined(self):
        assert combine(self.est(0), self.est(1), (0,)) is None

    def test_key_must_be_starred_on_both(self):
        unkeyed = tup(
            MetaCell.blank(False), MetaCell.blank(True), MetaCell.blank(),
            views=("W",), provenance=(("W", 0),),
        )
        assert combine(self.sae(), unkeyed, (0,)) is None

    def test_conflicting_constants_cancel(self):
        a = tup(MetaCell.blank(True), MetaCell.constant("m"),
                MetaCell.blank(), views=("A",), provenance=(("A", 0),))
        b = tup(MetaCell.blank(True), MetaCell.constant("t"),
                MetaCell.blank(), views=("B",), provenance=(("B", 0),))
        assert combine(a, b, (0,)) is None

    def test_equal_constants_merge(self):
        a = tup(MetaCell.blank(True), MetaCell.constant("m", True),
                MetaCell.blank(), views=("A",), provenance=(("A", 0),))
        b = tup(MetaCell.blank(True), MetaCell.constant("m"),
                MetaCell.blank(True), views=("B",), provenance=(("B", 0),))
        combined = combine(a, b, (0,))
        assert combined is not None
        assert combined.cells[1].const_value == "m"
        assert combined.cells[1].starred  # OR of stars

    def test_var_vs_var_skipped(self):
        a = tup(MetaCell.blank(True), MetaCell.variable("x1"),
                MetaCell.blank(), views=("A",), provenance=(("A", 0),))
        b = tup(MetaCell.blank(True), MetaCell.variable("x2"),
                MetaCell.blank(), views=("B",), provenance=(("B", 0),))
        assert combine(a, b, (0,)) is None

    def test_closure_yields_both_est_combinations(self):
        added = selfjoin_closure(
            EMPLOYEE, [self.sae(), self.est(0), self.est(1)], EMPTY
        )
        assert len(added) == 2
        provenances = {frozenset(t.provenance) for t in added}
        assert frozenset({("SAE", 0), ("EST", 0)}) in provenances
        assert frozenset({("SAE", 0), ("EST", 1)}) in provenances

    def test_closure_keyless_relation_empty(self):
        keyless = make_schema("LOG", [("A", STRING), ("B", STRING)])
        assert selfjoin_closure(
            keyless, [self.sae().project((0, 1))], EMPTY
        ) == ()

    def test_closure_respects_cap(self):
        views = []
        for i in range(10):
            views.append(tup(
                MetaCell.blank(True), MetaCell.blank(True),
                MetaCell.blank(),
                views=(f"V{i}",), provenance=((f"V{i}", 0),),
            ))
        added = selfjoin_closure(EMPLOYEE, views, EMPTY, max_tuples=5)
        assert len(added) <= 5

    def test_three_way_fixpoint(self):
        a = tup(MetaCell.blank(True), MetaCell.blank(True),
                MetaCell.blank(), views=("A",), provenance=(("A", 0),))
        b = tup(MetaCell.blank(True), MetaCell.blank(),
                MetaCell.blank(True), views=("B",), provenance=(("B", 0),))
        c = tup(MetaCell.blank(True), MetaCell.constant("m", True),
                MetaCell.blank(), views=("C",), provenance=(("C", 0),))
        added = selfjoin_closure(EMPLOYEE, [a, b, c], EMPTY)
        # Some combination must unite all three views.
        assert any(
            t.views == frozenset({"A", "B", "C"}) for t in added
        )
