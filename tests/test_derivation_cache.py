"""Differential tests: the derivation cache is transparent.

For every workload scenario, every user, and a battery of retrieve
statements, ``authorize()`` with the cache on and with the cache off
must produce identical delivered relations and inferred permits — the
cache may change *when* a mask is computed, never *what* is delivered.
``authorize_batch`` must equal a loop of ``authorize``.  The suite
also pins the cache mechanics: hit/miss/invalidation/eviction
accounting, user isolation, and the per-user scoping of the self-join
closure cache.
"""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.cache import DerivationCache
from repro.core.engine import AuthorizationEngine
from repro.workloads.scenarios import corporate_scenario, hospital_scenario

CACHE_OFF = DEFAULT_CONFIG.but(derivation_cache_size=0)

#: Statement batteries per scenario: a mix of full-view matches,
#: partial overlaps, joins, paraphrases, and denials.
HOSPITAL_QUERIES = [
    "retrieve (PATIENT.PID, PATIENT.NAME, PATIENT.WARD)",
    "retrieve (PATIENT.PID, PATIENT.NAME, PATIENT.WARD, "
    "PATIENT.DIAGNOSIS)",
    "retrieve (TREATMENT.PID, TREATMENT.DRUG, TREATMENT.COST)",
    "retrieve (TREATMENT.PID, TREATMENT.COST) "
    "where TREATMENT.COST >= 1000",
    # Paraphrase of the previous statement (flipped comparison).
    "retrieve (TREATMENT.PID, TREATMENT.COST) "
    "where 1000 <= TREATMENT.COST",
    "retrieve (PATIENT.NAME, TREATMENT.DRUG) "
    "where PATIENT.PID = TREATMENT.PID",
    "retrieve (PATIENT.NAME, TREATMENT.DRUG, TREATMENT.COST) "
    "where PATIENT.PID = TREATMENT.PID and TREATMENT.DOC = house",
    "retrieve (PHYSICIAN.DOC, PHYSICIAN.SPECIALTY)",
]

CORPORATE_QUERIES = [
    "retrieve (EMP.ENO, EMP.ENAME, EMP.DEPT)",
    "retrieve (EMP.ENO, EMP.ENAME, EMP.DEPT, EMP.SALARY)",
    "retrieve (EMP.ENO, EMP.SALARY) where EMP.SALARY <= 100,000",
    "retrieve (EMP.ENO, EMP.SALARY) where EMP.DEPT = eng",
    # Conjunct reordering of the cap + department query.
    "retrieve (EMP.ENO, EMP.SALARY) "
    "where EMP.SALARY <= 100,000 and EMP.DEPT = eng",
    "retrieve (EMP.ENO, EMP.SALARY) "
    "where EMP.DEPT = eng and EMP.SALARY <= 100,000",
    "retrieve (DEPT.DNAME, DEPT.BUDGET)",
    "retrieve (EMP.ENAME, DEPT.BUDGET) where EMP.DEPT = DEPT.DNAME",
]

SCENARIOS = [
    pytest.param(hospital_scenario, HOSPITAL_QUERIES, id="hospital"),
    pytest.param(corporate_scenario, CORPORATE_QUERIES, id="corporate"),
]


def observable(answer):
    """Everything a client can see of one authorization."""
    return (
        answer.labels,
        answer.delivered,
        tuple(str(p) for p in answer.permits),
    )


@pytest.mark.parametrize("build, queries", SCENARIOS)
class TestCacheTransparency:
    def test_cache_on_equals_cache_off(self, build, queries):
        hot = build()
        cold = build(CACHE_OFF)
        for user in hot.users:
            for statement in queries:
                # Twice per statement: the second pass is served from
                # the cache on the hot engine.
                for _ in range(2):
                    a = hot.engine.authorize(user, statement)
                    b = cold.engine.authorize(user, statement)
                    assert observable(a) == observable(b), (
                        f"user={user} query={statement}"
                    )
        stats = hot.engine.stats()
        assert stats.hits > 0
        assert cold.engine.stats().lookups == 0

    def test_batch_equals_loop(self, build, queries):
        for config in (DEFAULT_CONFIG, CACHE_OFF):
            batch_side = build(config)
            loop_side = build(config)
            for user in batch_side.users:
                stream = list(queries) + list(queries)  # repetition
                batch = batch_side.engine.authorize_batch(user, stream)
                loop = [
                    loop_side.engine.authorize(user, statement)
                    for statement in stream
                ]
                assert len(batch) == len(loop)
                for a, b in zip(batch, loop):
                    assert observable(a) == observable(b)

    def test_revoke_is_visible_immediately(self, build, queries):
        hot = build()
        for user in hot.users:
            for statement in queries:
                hot.engine.authorize(user, statement)  # populate cache
        catalog = hot.engine.catalog
        user = hot.users[0]
        for view_name in catalog.views_of(user):
            catalog.revoke(view_name, user)
        fresh = build(CACHE_OFF)
        fresh_catalog = fresh.engine.catalog
        for view_name in fresh_catalog.views_of(user):
            fresh_catalog.revoke(view_name, user)
        for statement in queries:
            a = hot.engine.authorize(user, statement)
            b = fresh.engine.authorize(user, statement)
            assert not a.cache_hit or a.delivered == b.delivered
            assert observable(a) == observable(b)


class TestCacheMechanics:
    def test_repeat_hits_and_stats(self):
        engine = hospital_scenario().engine
        statement = HOSPITAL_QUERIES[0]
        first = engine.authorize("nurse", statement)
        second = engine.authorize("nurse", statement)
        assert not first.cache_hit
        assert second.cache_hit
        stats = engine.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_equivalent_plans_share_an_entry(self):
        engine = corporate_scenario().engine
        engine.authorize("engmgr", CORPORATE_QUERIES[4])
        reordered = engine.authorize("engmgr", CORPORATE_QUERIES[5])
        assert reordered.cache_hit

    def test_users_never_share_entries(self):
        engine = corporate_scenario().engine
        statement = "retrieve (EMP.ENO, EMP.ENAME, EMP.DEPT, EMP.SALARY)"
        hr = engine.authorize("hr", statement)        # full salary view
        staff = engine.authorize("staff", statement)  # directory only
        assert not staff.cache_hit
        assert hr.delivered != staff.delivered

    def test_disabled_cache_never_hits(self):
        scenario = hospital_scenario(CACHE_OFF)
        engine = scenario.engine
        for _ in range(3):
            answer = engine.authorize("nurse", HOSPITAL_QUERIES[0])
            assert not answer.cache_hit
        assert engine.stats().lookups == 0

    def test_lru_eviction(self):
        scenario = hospital_scenario(
            DEFAULT_CONFIG.but(derivation_cache_size=1)
        )
        engine = scenario.engine
        engine.authorize("nurse", HOSPITAL_QUERIES[0])
        engine.authorize("nurse", HOSPITAL_QUERIES[1])  # evicts the first
        engine.authorize("nurse", HOSPITAL_QUERIES[0])  # miss again
        stats = engine.stats()
        assert stats.evictions >= 1
        assert stats.hits == 0

    def test_invalidation_counted_on_grant_change(self):
        engine = hospital_scenario().engine
        engine.authorize("nurse", HOSPITAL_QUERIES[0])
        engine.revoke("NURSE_VIEW", "nurse")
        engine.authorize("nurse", HOSPITAL_QUERIES[0])
        assert engine.stats().invalidations == 1

    def test_grant_to_other_user_keeps_entries_live(self):
        engine = hospital_scenario().engine
        engine.authorize("nurse", HOSPITAL_QUERIES[0])
        engine.permit("BILLING", "research")  # unrelated user
        answer = engine.authorize("nurse", HOSPITAL_QUERIES[0])
        assert answer.cache_hit
        assert engine.stats().invalidations == 0

    def test_view_definition_invalidates_globally(self):
        engine = hospital_scenario().engine
        engine.authorize("nurse", HOSPITAL_QUERIES[0])
        engine.define_view("view SCRATCH (PATIENT.PID, PATIENT.NAME)")
        answer = engine.authorize("nurse", HOSPITAL_QUERIES[0])
        assert not answer.cache_hit
        assert engine.stats().invalidations == 1

    def test_audit_records_cache_hits(self):
        from repro.core.audit import AuditLog

        scenario = hospital_scenario()
        engine = scenario.engine
        engine.audit = AuditLog()
        engine.authorize("nurse", HOSPITAL_QUERIES[0])
        engine.authorize("nurse", HOSPITAL_QUERIES[0])
        records = engine.audit.records()
        assert [r.cache_hit for r in records] == [False, True]
        assert engine.audit.cached_count() == 1
        assert "[cached]" in engine.audit.report()
        assert "1 served from the derivation cache" in engine.audit.report()

    def test_cli_stats_command(self):
        from repro.cli import Repl
        from repro.workloads.scenarios import hospital_scenario as build

        repl = Repl(build().engine, user="nurse")
        repl.process_line(HOSPITAL_QUERIES[0])
        repl.process_line(HOSPITAL_QUERIES[0])
        output = repl.process_line(".stats")
        assert "1 hits" in output

        off = Repl(build(CACHE_OFF).engine, user="nurse")
        assert "disabled" in off.process_line(".stats")


class TestDerivationCacheUnit:
    def test_capacity_zero_is_inert(self):
        cache = DerivationCache(0)
        assert not cache.enabled
        assert cache.get("u", ("k",), (0, 0)) is None
        cache.put("u", ("k",), (0, 0), object())
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_token_mismatch_is_invalidation(self):
        cache = DerivationCache(4)
        marker = object()
        cache.put("u", ("k",), (0, 0), marker)
        assert cache.get("u", ("k",), (0, 0)) is marker
        assert cache.get("u", ("k",), (0, 1)) is None
        assert cache.stats.invalidations == 1
        assert len(cache) == 0

    def test_keys_are_scoped_by_user(self):
        cache = DerivationCache(4)
        mine, yours = object(), object()
        cache.put("alice", ("k",), (0, 0), mine)
        cache.put("bob", ("k",), (0, 0), yours)
        assert cache.get("alice", ("k",), (0, 0)) is mine
        assert cache.get("bob", ("k",), (0, 0)) is yours
        assert sorted(cache.users()) == ["alice", "bob"]

    def test_lru_order(self):
        cache = DerivationCache(2)
        a, b, c = object(), object(), object()
        cache.put("u", ("a",), (0, 0), a)
        cache.put("u", ("b",), (0, 0), b)
        cache.get("u", ("a",), (0, 0))      # refresh a
        cache.put("u", ("c",), (0, 0), c)   # evicts b
        assert cache.get("u", ("a",), (0, 0)) is a
        assert cache.get("u", ("b",), (0, 0)) is None
        assert cache.stats.evictions == 1

    def test_invalidate_user_and_clear(self):
        cache = DerivationCache(8)
        cache.put("alice", ("k",), (0, 0), object())
        cache.put("bob", ("k",), (0, 0), object())
        cache.invalidate_user("alice")
        assert cache.users() == ("bob",)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 2
