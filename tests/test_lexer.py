"""Unit tests for the statement-language lexer."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop END


def values(text):
    return [t.value for t in tokenize(text)][:-1]


class TestBasics:
    def test_identifiers_and_punctuation(self):
        assert kinds("retrieve (EMPLOYEE.NAME)") == [
            TokenKind.IDENT, TokenKind.LPAREN, TokenKind.IDENT,
            TokenKind.DOT, TokenKind.IDENT, TokenKind.RPAREN,
        ]

    def test_end_sentinel(self):
        tokens = tokenize("x")
        assert tokens[-1].kind is TokenKind.END

    def test_empty_input(self):
        assert tokenize("")[-1].kind is TokenKind.END

    def test_line_tracking(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_comments_skipped(self):
        assert values("a -- comment here\nb") == ["a", "b"]


class TestNumbers:
    def test_plain(self):
        assert values("42") == [42]

    def test_thousands_separators(self):
        assert values("250,000") == [250_000]
        assert values("1,234,567") == [1_234_567]

    def test_decimal(self):
        assert values("3.5") == [3.5]

    def test_negative(self):
        assert values("-5") == [-5]

    def test_separator_vs_list_comma(self):
        # "250,00" is not a valid grouped number: 250 then comma then 0.
        assert values("250,00") == [250, ",", 0]


class TestStrings:
    def test_single_quoted(self):
        assert values("'bq-45'") == ["bq-45"]

    def test_double_quoted(self):
        assert values('"hello world"') == ["hello world"]

    def test_unterminated(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_dashed_identifier(self):
        tokens = tokenize("bq-45")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "bq-45"


class TestComparators:
    @pytest.mark.parametrize("spelling", [
        "<", "<=", ">", ">=", "=", "==", "!=", "<>", "≥", "≤", "≠",
    ])
    def test_spellings(self, spelling):
        tokens = tokenize(f"a {spelling} b")
        assert tokens[1].kind is TokenKind.COMPARE

    def test_longest_match(self):
        tokens = tokenize("a <= b")
        assert tokens[1].text == "<="


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")

    def test_keyword_recognition_is_parsers_job(self):
        # The lexer treats keywords as identifiers.
        tokens = tokenize("retrieve")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].is_keyword("retrieve")
        assert tokens[0].is_keyword("RETRIEVE".lower())
