# soundlint: disable-file=SL006 -- exercises the algebra/evaluation layer directly, below the authorization boundary; nothing is user-delivered
"""Unit tests for the persistence layer."""

import io
import json

import pytest

from repro import storage
from repro.core.engine import AuthorizationEngine
from repro.errors import ReproError
from repro.experiments.tables import meta_tuple_cells
from repro.workloads.paperdb import EXAMPLE_1_QUERY, EXAMPLE_3_QUERY


class TestRoundTrip:
    def test_schema_and_rows_survive(self, paper_db, paper_catalog):
        text = storage.dumps(paper_db, paper_catalog)
        database, _catalog = storage.loads(text)
        assert database.relation_names() == paper_db.relation_names()
        for name in paper_db.relation_names():
            assert database.instance(name).same_rows(
                paper_db.instance(name)
            )
            assert database.schema_of(name).key == \
                paper_db.schema_of(name).key

    def test_views_reencode_identically(self, paper_db, paper_catalog):
        database, catalog = storage.loads(
            storage.dumps(paper_db, paper_catalog)
        )
        assert catalog.view_names() == paper_catalog.view_names()
        for relation in database.relation_names():
            original = [
                (view, meta_tuple_cells(meta))
                for view, meta in paper_catalog.meta_relation_rows(relation)
            ]
            reloaded = [
                (view, meta_tuple_cells(meta))
                for view, meta in catalog.meta_relation_rows(relation)
            ]
            assert original == reloaded  # variable numbering included

    def test_grants_survive_in_order(self, paper_db, paper_catalog):
        _db, catalog = storage.loads(
            storage.dumps(paper_db, paper_catalog)
        )
        assert catalog.permission_rows() == \
            paper_catalog.permission_rows()

    def test_reloaded_engine_behaves_identically(self, paper_db,
                                                 paper_catalog):
        database, catalog = storage.loads(
            storage.dumps(paper_db, paper_catalog)
        )
        original = AuthorizationEngine(paper_db, paper_catalog)
        reloaded = AuthorizationEngine(database, catalog)
        for user, query in (
            ("Brown", EXAMPLE_1_QUERY),
            ("Brown", EXAMPLE_3_QUERY),
        ):
            first = original.authorize(user, query)
            second = reloaded.authorize(user, query)
            assert first.delivered == second.delivered
            assert [str(p) for p in first.permits] == \
                [str(p) for p in second.permits]


class TestFileHandling:
    def test_path_roundtrip(self, tmp_path, paper_db, paper_catalog):
        target = tmp_path / "authdb.json"
        storage.dump(paper_db, paper_catalog, target)
        database, catalog = storage.load(target)
        assert database.total_rows() == paper_db.total_rows()
        assert catalog.view_names() == paper_catalog.view_names()

    def test_stream_roundtrip(self, paper_db, paper_catalog):
        buffer = io.StringIO()
        storage.dump(paper_db, paper_catalog, buffer)
        buffer.seek(0)
        database, _catalog = storage.load(buffer)
        assert database.total_rows() == paper_db.total_rows()


class TestErrors:
    def test_unknown_format_rejected(self):
        with pytest.raises(ReproError):
            storage.restore({"format": "something-else"})

    def test_malformed_document_rejected(self):
        with pytest.raises(ReproError):
            storage.restore({"format": storage.FORMAT,
                             "relations": [{"oops": True}]})

    def test_snapshot_is_json_serializable(self, paper_db, paper_catalog):
        document = storage.snapshot(paper_db, paper_catalog)
        json.dumps(document)  # must not raise
        assert document["format"] == storage.FORMAT
