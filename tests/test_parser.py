"""Unit tests for the statement-language parser."""

import pytest

from repro.calculus.ast import AttrRef, ConstTerm, Query, ViewDefinition
from repro.errors import ParseError
from repro.lang.parser import (
    PermitCommand,
    RevokeCommand,
    parse_program,
    parse_query,
    parse_statement,
    parse_view,
)
from repro.predicates.comparators import Comparator


class TestViewStatements:
    def test_paper_elp(self):
        view = parse_view(
            "view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, "
            "PROJECT.BUDGET) "
            "where EMPLOYEE.NAME = ASSIGNMENT.E_NAME "
            "and PROJECT.NUMBER = ASSIGNMENT.P_NO "
            "and PROJECT.BUDGET >= 250,000"
        )
        assert view.name == "ELP"
        assert len(view.target) == 4
        assert len(view.conditions) == 3
        last = view.conditions[-1]
        assert last.op is Comparator.GE
        assert isinstance(last.rhs, ConstTerm)
        assert last.rhs.value == 250_000

    def test_paper_est_occurrences(self):
        view = parse_view(
            "view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, "
            "EMPLOYEE:1.TITLE) "
            "where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"
        )
        assert view.target[1] == AttrRef("EMPLOYEE", "NAME", 2)

    def test_view_without_conditions(self):
        view = parse_view("view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)")
        assert view.conditions == ()

    def test_bare_constant(self):
        view = parse_view(
            "view PSA (PROJECT.NUMBER) where PROJECT.SPONSOR = Acme"
        )
        assert view.conditions[0].rhs == ConstTerm("Acme")

    def test_quoted_constant(self):
        view = parse_view(
            "view V (PROJECT.NUMBER) where PROJECT.NUMBER = 'bq-45'"
        )
        assert view.conditions[0].rhs == ConstTerm("bq-45")

    def test_mathematical_comparators(self):
        view = parse_view(
            "view V (PROJECT.NUMBER) where PROJECT.BUDGET ≥ 250,000"
        )
        assert view.conditions[0].op is Comparator.GE


class TestRetrieveStatements:
    def test_example1(self):
        query = parse_query(
            "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
            "where PROJECT.BUDGET >= 250,000"
        )
        assert isinstance(query, Query)
        assert len(query.target) == 2

    def test_multiline(self):
        query = parse_query(
            """retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)
               where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
               and ASSIGNMENT.P_NO = PROJECT.NUMBER
               and PROJECT.SPONSOR = Acme"""
        )
        assert len(query.conditions) == 3

    def test_constant_on_left(self):
        query = parse_query(
            "retrieve (PROJECT.NUMBER) where 250,000 <= PROJECT.BUDGET"
        )
        assert isinstance(query.conditions[0].lhs, ConstTerm)


class TestPermitAndRevoke:
    def test_paper_permit(self):
        command = parse_statement("permit EST to KLEIN")
        assert command == PermitCommand(("EST",), ("KLEIN",))

    def test_permit_lists(self):
        command = parse_statement("permit SAE, PSA, EST to Brown, Klein")
        assert command.views == ("SAE", "PSA", "EST")
        assert command.users == ("Brown", "Klein")

    def test_revoke(self):
        command = parse_statement("revoke ELP from Klein")
        assert command == RevokeCommand(("ELP",), ("Klein",))

    def test_case_insensitive_keywords(self):
        command = parse_statement("PERMIT est TO klein")
        assert isinstance(command, PermitCommand)


class TestErrors:
    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_statement("select * from t")

    def test_trailing_junk(self):
        with pytest.raises(ParseError):
            parse_statement("permit A to B extra")

    def test_missing_paren(self):
        with pytest.raises(ParseError):
            parse_statement("retrieve PROJECT.NUMBER")

    def test_reserved_word_as_name(self):
        with pytest.raises(ParseError):
            parse_statement("permit where to B")

    def test_bad_occurrence_index(self):
        with pytest.raises(ParseError):
            parse_statement("retrieve (E:0.N)")

    def test_missing_comparator(self):
        with pytest.raises(ParseError):
            parse_statement("retrieve (E.N) where E.N E.M")

    def test_parse_query_rejects_views(self):
        with pytest.raises(ParseError):
            parse_query("view V (E.N)")

    def test_parse_view_rejects_queries(self):
        with pytest.raises(ParseError):
            parse_view("retrieve (E.N)")


class TestPrograms:
    def test_semicolons(self):
        statements = parse_program(
            "permit A to B; revoke A from B; retrieve (X.Y)"
        )
        assert len(statements) == 3
        assert isinstance(statements[2], Query)

    def test_newline_separated(self):
        statements = parse_program(
            "permit A to B\nretrieve (X.Y)\nview V (X.Y)"
        )
        assert len(statements) == 3
        assert isinstance(statements[2], ViewDefinition)

    def test_empty_program(self):
        assert parse_program("") == []

    def test_trailing_semicolon(self):
        assert len(parse_program("permit A to B;")) == 1
