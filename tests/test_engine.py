"""Unit tests for the authorization engine."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.engine import AuthorizationEngine
from repro.core.mask import MASKED
from repro.errors import ParseError, UnknownViewError
from repro.meta.catalog import PermissionCatalog
from repro.workloads.paperdb import (
    EXAMPLE_1_QUERY,
    EXAMPLE_2_QUERY,
    EXAMPLE_3_QUERY,
)


class TestAuthorize:
    def test_accepts_text_or_ast(self, paper_engine):
        from repro.lang.parser import parse_query

        by_text = paper_engine.authorize("Brown", EXAMPLE_1_QUERY)
        by_ast = paper_engine.authorize(
            "Brown", parse_query(EXAMPLE_1_QUERY)
        )
        assert by_text.delivered == by_ast.delivered

    def test_rejects_non_retrieve(self, paper_engine):
        with pytest.raises(ParseError):
            paper_engine.authorize("Brown", "permit SAE to Brown")

    def test_unknown_user_gets_nothing(self, paper_engine):
        answer = paper_engine.authorize("stranger", EXAMPLE_1_QUERY)
        assert answer.mask.is_empty
        assert answer.is_fully_masked

    def test_answer_carries_raw_and_masked(self, paper_engine):
        answer = paper_engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert answer.answer.cardinality == 2  # bq-45, sv-72
        assert len(answer.delivered) == 2

    def test_stats(self, paper_engine):
        stats = paper_engine.authorize("Brown", EXAMPLE_1_QUERY).stats()
        assert stats.total_cells == 4
        assert stats.delivered_cells == 2
        assert stats.full_rows == 1
        assert stats.masked_rows == 1
        assert stats.partial_rows == 0
        assert stats.delivered_fraction == 0.5

    def test_drop_fully_masked_config(self):
        from repro.workloads.paperdb import build_paper_engine

        engine = build_paper_engine(
            DEFAULT_CONFIG.but(drop_fully_masked_rows=True)
        )
        answer = engine.authorize("Brown", EXAMPLE_1_QUERY)
        assert answer.delivered == (("bq-45", "Acme"),)

    def test_render_contains_table_and_permits(self, paper_engine):
        text = paper_engine.authorize("Brown", EXAMPLE_1_QUERY).render()
        assert "NUMBER" in text
        assert "permit (NUMBER, SPONSOR) where SPONSOR = Acme" in text

    def test_render_full_delivery_notes_no_permits(self, paper_engine):
        text = paper_engine.authorize("Brown", EXAMPLE_3_QUERY).render()
        assert "no permit statements" in text


class TestGrantManagement:
    def test_define_permit_revoke_cycle(self, paper_db):
        engine = AuthorizationEngine(paper_db)
        engine.define_view("view V (PROJECT.NUMBER, PROJECT.SPONSOR)")
        engine.permit("V", "u")
        first = engine.authorize(
            "u", "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)"
        )
        assert first.is_fully_delivered
        engine.revoke("V", "u")
        second = engine.authorize(
            "u", "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)"
        )
        assert second.is_fully_masked

    def test_permit_unknown_view(self, paper_engine):
        with pytest.raises(UnknownViewError):
            paper_engine.permit("NOPE", "Brown")


class TestSelfJoinCache:
    def test_cache_is_populated_and_reused(self, paper_engine):
        paper_engine.authorize("Brown", EXAMPLE_3_QUERY)
        assert "Brown" in paper_engine._selfjoin_cache
        _, pool = paper_engine._selfjoin_cache["Brown"]
        assert len(pool["EMPLOYEE"]) == 2
        # A second call reuses the same pool object.
        paper_engine.authorize("Brown", EXAMPLE_3_QUERY)
        assert paper_engine._selfjoin_cache["Brown"][1] is pool

    def test_other_users_grants_do_not_invalidate(self, paper_engine):
        paper_engine.authorize("Brown", EXAMPLE_3_QUERY)
        _, pool = paper_engine._selfjoin_cache["Brown"]
        # A grant mutation for a *different* user must not flush
        # Brown's closure (regression: the cache used to be cleared
        # globally on any catalog version bump).
        paper_engine.permit("PSA", "Klein")
        paper_engine.revoke("PSA", "Klein")
        assert paper_engine._selfjoin_pool("Brown") is pool
        # A view definition change invalidates globally.
        paper_engine.define_view(
            "view SCRATCH (EMPLOYEE.NAME, EMPLOYEE.TITLE)"
        )
        assert paper_engine._selfjoin_pool("Brown") is not pool

    def test_cache_invalidated_on_grant_changes(self, paper_engine):
        paper_engine.authorize("Brown", EXAMPLE_3_QUERY)
        paper_engine.revoke("EST", "Brown")
        answer = paper_engine.authorize("Brown", EXAMPLE_3_QUERY)
        # Without EST the self-join disappears and salaries of pairs
        # can no longer be combined with the same-title selection.
        assert not answer.is_fully_delivered

    def test_masks_identical_with_and_without_cache(self, paper_engine):
        from repro.experiments.tables import meta_tuple_cells
        from repro.metaalgebra.plan import derive_mask
        from repro.calculus.to_algebra import compile_query
        from repro.lang.parser import parse_query

        plan = compile_query(
            parse_query(EXAMPLE_3_QUERY), paper_engine.database.schema
        )
        cached = paper_engine.derive("Brown", EXAMPLE_3_QUERY)
        uncached = derive_mask(
            plan, paper_engine.database.schema, paper_engine.catalog,
            "Brown", paper_engine.config, selfjoin_pool=None,
        )
        assert [meta_tuple_cells(r.meta) for r in cached.mask.rows] == \
            [meta_tuple_cells(r.meta) for r in uncached.mask.rows]


class TestCrossUserIsolation:
    def test_brown_cannot_use_kleins_views(self, paper_engine):
        # Example 2's query needs ELP, which Brown lacks.
        answer = paper_engine.authorize("Brown", EXAMPLE_2_QUERY)
        assert answer.is_fully_masked

    def test_klein_cannot_use_browns_views(self, paper_engine):
        # Example 1's query needs PSA, which Klein lacks.
        answer = paper_engine.authorize("Klein", EXAMPLE_1_QUERY)
        assert answer.is_fully_masked

    def test_masked_cells_use_sentinel(self, paper_engine):
        answer = paper_engine.authorize("Klein", EXAMPLE_2_QUERY)
        assert all(
            value is MASKED or value == "Brown"
            for row in answer.delivered for value in row
        )
