# soundlint: disable-file=SL006 -- exercises the algebra/evaluation layer directly, below the authorization boundary; nothing is user-delivered
"""Unit tests for the optimized evaluator: must match the naive one."""

import pytest

from repro.algebra.database import build_database
from repro.algebra.evaluate import evaluate_naive
from repro.algebra.expression import (
    AtomicCondition,
    Col,
    Const,
    Occurrence,
    PSJQuery,
)
from repro.algebra.optimize import evaluate_optimized
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.predicates.comparators import Comparator


@pytest.fixture
def db():
    r = make_schema("R", [("K", STRING), ("V", INTEGER)], key=["K"])
    s = make_schema("S", [("K", STRING), ("W", INTEGER)], key=["K"])
    t = make_schema("T", [("W", INTEGER)])
    u = make_schema("U", [("X", INTEGER), ("Y", INTEGER)])
    return build_database([r, s, t, u], {
        "R": [(f"k{i}", i) for i in range(8)],
        "S": [(f"k{i}", i * 10) for i in range(0, 8, 2)],
        "T": [(i,) for i in range(0, 80, 10)],
        "U": [(i, i % 3) for i in range(6)] + [(7, 7)],
    })


def both(plan, db):
    naive = evaluate_naive(plan, db)
    fast = evaluate_optimized(plan, db)
    assert naive.same_rows(fast), (
        f"naive={sorted(naive.rows)} optimized={sorted(fast.rows)}"
    )
    assert naive.labels() == fast.labels()
    return fast


class TestEquivalence:
    def test_plain_scan(self, db):
        both(PSJQuery((Occurrence("R"),), (), (0, 1)), db)

    def test_selection_pushdown(self, db):
        both(PSJQuery(
            (Occurrence("R"), Occurrence("S")),
            (
                AtomicCondition(Col(1), Comparator.GE, Const(3)),
                AtomicCondition(Col(0), Comparator.EQ, Col(2)),
            ),
            (0, 3),
        ), db)

    def test_hash_join(self, db):
        result = both(PSJQuery(
            (Occurrence("R"), Occurrence("S")),
            (AtomicCondition(Col(0), Comparator.EQ, Col(2)),),
            (0, 1, 3),
        ), db)
        assert result.cardinality == 4

    def test_hash_join_with_constant_probe(self, db):
        both(PSJQuery(
            (Occurrence("R"),),
            (AtomicCondition(Col(0), Comparator.EQ, Const("k3")),),
            (1,),
        ), db)

    def test_theta_join_falls_back(self, db):
        both(PSJQuery(
            (Occurrence("R"), Occurrence("T")),
            (AtomicCondition(Col(1), Comparator.LT, Col(2)),),
            (0, 2),
        ), db)

    def test_three_way(self, db):
        both(PSJQuery(
            (Occurrence("R"), Occurrence("S"), Occurrence("T")),
            (
                AtomicCondition(Col(0), Comparator.EQ, Col(2)),
                AtomicCondition(Col(3), Comparator.EQ, Col(4)),
            ),
            (0, 4),
        ), db)

    def test_self_join(self, db):
        both(PSJQuery(
            (Occurrence("R", 1), Occurrence("R", 2)),
            (AtomicCondition(Col(1), Comparator.EQ, Col(3)),),
            (0, 2),
        ), db)

    def test_empty_result_short_circuits(self, db):
        result = both(PSJQuery(
            (Occurrence("R"), Occurrence("S")),
            (
                AtomicCondition(Col(1), Comparator.GT, Const(100)),
                AtomicCondition(Col(0), Comparator.EQ, Col(2)),
            ),
            (0,),
        ), db)
        assert result.cardinality == 0

    def test_inequality_equijoin_mix(self, db):
        both(PSJQuery(
            (Occurrence("R"), Occurrence("S")),
            (
                AtomicCondition(Col(0), Comparator.EQ, Col(2)),
                AtomicCondition(Col(3), Comparator.NE, Const(20)),
            ),
            (0, 3),
        ), db)

    def test_equijoin_between_new_columns_residual(self, db):
        # Both sides of the equality land in the occurrence being
        # added: must be handled as a residual, not a probe key.
        both(PSJQuery(
            (Occurrence("T"), Occurrence("U")),
            (AtomicCondition(Col(1), Comparator.EQ, Col(2)),),
            (0, 1),
        ), db)
