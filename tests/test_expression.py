# soundlint: disable-file=SL006 -- exercises the algebra/evaluation layer directly, below the authorization boundary; nothing is user-delivered
"""Unit tests for repro.algebra.expression (PSJ plans)."""

import pytest

from repro.algebra.database import build_database
from repro.algebra.expression import (
    AtomicCondition,
    Col,
    Const,
    Occurrence,
    PSJQuery,
    occurrence_counts,
)
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.errors import EvaluationError, TypeMismatchError
from repro.predicates.comparators import Comparator


@pytest.fixture
def schema():
    r = make_schema("R", [("A", STRING), ("N", INTEGER)], key=["A"])
    s = make_schema("S", [("B", STRING), ("M", INTEGER)], key=["B"])
    return build_database([r, s], {}).schema


class TestAtomicCondition:
    def test_evaluate_col_const(self):
        condition = AtomicCondition(Col(1), Comparator.GE, Const(10))
        assert condition.evaluate(("x", 12))
        assert not condition.evaluate(("x", 9))

    def test_evaluate_col_col(self):
        condition = AtomicCondition(Col(0), Comparator.EQ, Col(2))
        assert condition.evaluate(("a", 1, "a"))
        assert not condition.evaluate(("a", 1, "b"))

    def test_const_only_rejected(self):
        with pytest.raises(EvaluationError):
            AtomicCondition(Const(1), Comparator.EQ, Const(1))

    def test_columns(self):
        condition = AtomicCondition(Col(3), Comparator.LT, Col(1))
        assert condition.columns() == (3, 1)
        assert condition.is_column_pair

    def test_render(self):
        condition = AtomicCondition(Col(0), Comparator.GE, Const(250_000))
        assert condition.render(["BUDGET"]) == "BUDGET >= 250,000"


class TestPSJQuery:
    def test_offsets_and_width(self, schema):
        plan = PSJQuery(
            (Occurrence("R"), Occurrence("S")), (), (0,)
        )
        assert plan.offsets(schema) == (0, 2)
        assert plan.total_width(schema) == 4

    def test_occurrence_of_column(self, schema):
        plan = PSJQuery((Occurrence("R"), Occurrence("S")), (), (0,))
        assert plan.occurrence_of_column(schema, 1) == 0
        assert plan.occurrence_of_column(schema, 2) == 1
        with pytest.raises(EvaluationError):
            plan.occurrence_of_column(schema, 9)

    def test_product_columns_single(self, schema):
        plan = PSJQuery((Occurrence("R"),), (), (0,))
        labels = [c.label for c in plan.product_columns(schema)]
        assert labels == ["A", "N"]

    def test_product_columns_multi_occurrence(self, schema):
        plan = PSJQuery(
            (Occurrence("R", 1), Occurrence("R", 2)), (), (0,)
        )
        labels = [c.label for c in plan.product_columns(schema)]
        assert labels == ["A:1", "N:1", "A:2", "N:2"]

    def test_output_columns(self, schema):
        plan = PSJQuery((Occurrence("R"),), (), (1, 0))
        labels = [c.label for c in plan.output_columns(schema)]
        assert labels == ["N", "A"]

    def test_validate_catches_out_of_range(self, schema):
        plan = PSJQuery(
            (Occurrence("R"),),
            (AtomicCondition(Col(5), Comparator.EQ, Const("x")),),
            (0,),
        )
        with pytest.raises(EvaluationError):
            plan.validate(schema)

    def test_validate_catches_domain_mismatch(self, schema):
        plan = PSJQuery(
            (Occurrence("R"),),
            (AtomicCondition(Col(0), Comparator.EQ, Const(3)),),
            (0,),
        )
        with pytest.raises(TypeMismatchError):
            plan.validate(schema)

    def test_validate_projection_range(self, schema):
        plan = PSJQuery((Occurrence("R"),), (), (7,))
        with pytest.raises(EvaluationError):
            plan.validate(schema)

    def test_empty_occurrences_rejected(self):
        with pytest.raises(EvaluationError):
            PSJQuery((), (), (0,))

    def test_empty_output_rejected(self):
        with pytest.raises(EvaluationError):
            PSJQuery((Occurrence("R"),), (), ())

    def test_relation_names(self, schema):
        plan = PSJQuery(
            (Occurrence("R"), Occurrence("S"), Occurrence("R", 2)),
            (), (0,),
        )
        assert plan.relation_names() == frozenset({"R", "S"})

    def test_describe(self, schema):
        plan = PSJQuery(
            (Occurrence("R"),),
            (AtomicCondition(Col(1), Comparator.GE, Const(1)),),
            (0,),
        )
        text = plan.describe(schema)
        assert "R" in text and "sigma" in text and "pi" in text


class TestOccurrence:
    def test_str(self):
        assert str(Occurrence("R")) == "R"
        assert str(Occurrence("R", 2)) == "R:2"

    def test_counts(self):
        counts = occurrence_counts(
            [Occurrence("R"), Occurrence("R", 2), Occurrence("S")]
        )
        assert counts == {"R": 2, "S": 1}
