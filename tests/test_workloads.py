# soundlint: disable-file=SL006 -- exercises the algebra/evaluation layer directly, below the authorization boundary; nothing is user-delivered
"""Unit tests for workload generation and the bundled scenarios."""

import pytest

from repro.calculus.normalize import normalize_view
from repro.core.mask import MASKED
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.paperdb import build_paper_database
from repro.workloads.traffic import (
    TrafficSpec,
    build_traffic,
    client_users,
    fresh_stack,
)


class TestGeneratorDeterminism:
    def test_same_seed_same_workload(self):
        a = WorkloadGenerator(7).workload(WorkloadSpec(seed=7))
        b = WorkloadGenerator(7).workload(WorkloadSpec(seed=7))
        assert [str(v) for v in a.views] == [str(v) for v in b.views]
        for name in a.database.relation_names():
            assert a.database.instance(name).rows == \
                b.database.instance(name).rows

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(1).workload(WorkloadSpec(seed=1))
        b = WorkloadGenerator(2).workload(WorkloadSpec(seed=2))
        assert [str(v) for v in a.views] != [str(v) for v in b.views] or \
            a.database.instance("R0").rows != b.database.instance("R0").rows


class TestGeneratedArtifacts:
    def test_schema_shape(self):
        spec = WorkloadSpec(relations=5, seed=3)
        schema = WorkloadGenerator(3).schema(spec)
        assert len(schema) == 5
        for relation in schema:
            assert spec.min_arity <= relation.arity <= spec.max_arity
            assert relation.key  # every relation keyed

    def test_views_are_safe(self):
        generator = WorkloadGenerator(11)
        spec = WorkloadSpec(seed=11)
        schema = generator.schema(spec)
        for i in range(20):
            view = generator.view(spec, schema, f"V{i}")
            normalize_view(view, schema)  # must not raise

    def test_queries_are_safe(self):
        generator = WorkloadGenerator(13)
        spec = WorkloadSpec(seed=13)
        schema = generator.schema(spec)
        for _ in range(20):
            query = generator.query(spec, schema)
            from repro.calculus.to_algebra import compile_query

            compile_query(query, schema)  # must not raise

    def test_every_user_has_grants(self):
        workload = WorkloadGenerator(5).workload(WorkloadSpec(seed=5))
        for user in workload.users:
            assert workload.catalog.views_of(user)

    def test_mutation_changes_exactly_one_relation(self):
        generator = WorkloadGenerator(9)
        spec = WorkloadSpec(seed=9)
        workload = generator.workload(spec)
        mutated = generator.mutate(spec, workload.database)
        differences = sum(
            1 for name in workload.database.relation_names()
            if set(workload.database.instance(name).rows)
            != set(mutated.instance(name).rows)
        )
        assert differences <= 1  # an edit may collide and be a no-op

    def test_mutation_does_not_touch_original(self):
        generator = WorkloadGenerator(10)
        spec = WorkloadSpec(seed=10)
        workload = generator.workload(spec)
        snapshot = {
            name: workload.database.instance(name).rows
            for name in workload.database.relation_names()
        }
        generator.mutate(spec, workload.database)
        for name, rows in snapshot.items():
            assert workload.database.instance(name).rows == rows


class TestPaperDatabase:
    def test_figure1_contents(self):
        database = build_paper_database()
        assert database.instance("EMPLOYEE").cardinality == 3
        assert database.instance("PROJECT").cardinality == 3
        assert database.instance("ASSIGNMENT").cardinality == 6
        assert ("Brown", "engineer", 32_000) in database.instance("EMPLOYEE")


class TestScenarios:
    def test_hospital_nurse_psychiatry_masked(self, hospital):
        answer = hospital.engine.authorize(
            "nurse", "retrieve (PATIENT.NAME, PATIENT.WARD)"
        )
        rows = set(answer.delivered)
        assert ("Baker", MASKED) not in rows  # fully masked, not partial
        assert (MASKED, MASKED) in rows
        assert ("Adams", "cardiology") in rows

    def test_hospital_billing_sees_costs_not_diagnoses(self, hospital):
        answer = hospital.engine.authorize(
            "billing",
            "retrieve (TREATMENT.PID, TREATMENT.COST, PATIENT.DIAGNOSIS) "
            "where TREATMENT.PID = PATIENT.PID",
        )
        assert answer.is_fully_masked  # BILLING is single-relation only

    def test_hospital_house_sees_own_patients(self, hospital):
        answer = hospital.engine.authorize(
            "house",
            "retrieve (PATIENT.NAME, PATIENT.DIAGNOSIS, TREATMENT.DRUG) "
            "where PATIENT.PID = TREATMENT.PID "
            "and TREATMENT.DOC = house",
        )
        assert answer.is_fully_delivered

    def test_hospital_research_threshold(self, hospital):
        answer = hospital.engine.authorize(
            "research",
            "retrieve (TREATMENT.PID, TREATMENT.COST) "
            "where TREATMENT.COST >= 2000",
        )
        visible = {r for r in answer.delivered if MASKED not in r}
        assert visible == {("p3", 4200), ("p4", 9100)}

    def test_corporate_staff_cannot_see_salaries(self, corporate):
        answer = corporate.engine.authorize(
            "staff", "retrieve (EMP.ENAME, EMP.SALARY)"
        )
        assert all(row[1] is MASKED for row in answer.delivered)
        assert any(row[0] is not MASKED for row in answer.delivered)

    def test_corporate_hr_sees_everything(self, corporate):
        answer = corporate.engine.authorize(
            "hr", "retrieve (EMP.ENAME, EMP.SALARY, EMP.DEPT)"
        )
        assert answer.is_fully_delivered

    def test_corporate_engmgr_salary_cap(self, corporate):
        # The capped view restricts DEPT and SALARY, so the request
        # must include them for the mask to be expressible (the
        # Section 6(3) limitation the paper states: masks use only the
        # requested attributes).
        answer = corporate.engine.authorize(
            "engmgr",
            "retrieve (EMP.ENAME, EMP.DEPT, EMP.SALARY) "
            "where EMP.DEPT = eng",
        )
        visible_salaries = {
            row[2] for row in answer.delivered if row[2] is not MASKED
        }
        assert visible_salaries == {95_000}  # Bob only; Ada is over cap

    def test_corporate_engmgr_limitation_without_salary_context(
            self, corporate):
        # Requesting salaries without DEPT leaves the capped view
        # inexpressible over the answer: salaries stay masked.
        answer = corporate.engine.authorize(
            "engmgr", "retrieve (EMP.ENAME, EMP.SALARY)"
        )
        assert all(row[1] is MASKED for row in answer.delivered)


class TestTrafficScripts:
    def test_same_spec_same_script(self):
        spec = TrafficSpec(clients=4, ops_per_client=25, seed=5,
                           churn_every=4)
        first = build_traffic(spec)
        second = build_traffic(spec)
        assert first.clients == second.clients

    def test_different_seeds_differ(self):
        a = build_traffic(TrafficSpec(clients=4, seed=1))
        b = build_traffic(TrafficSpec(clients=4, seed=2))
        assert a.clients != b.clients

    def test_fresh_stack_is_reproducible_and_independent(self):
        spec = TrafficSpec(clients=3, users_per_client=2, seed=8)
        one = fresh_stack(spec)
        two = fresh_stack(spec)
        assert one.catalog is not two.catalog
        assert one.users == two.users
        for user in one.users:
            assert one.catalog.views_of(user) == \
                two.catalog.views_of(user)
        # Mutating one copy leaves the other untouched.
        user = one.users[0]
        for view in list(one.catalog.views_of(user)):
            one.catalog.revoke(view, user)
        assert two.catalog.views_of(user)

    def test_clients_own_disjoint_users(self):
        spec = TrafficSpec(clients=5, users_per_client=3, seed=4)
        script = build_traffic(spec)
        workload = fresh_stack(spec)
        slices = client_users(spec, workload.users)
        assert len(slices) == spec.clients
        seen = set()
        for piece in slices:
            assert not (set(piece) & seen)
            seen.update(piece)
        for client, ops in enumerate(script.clients):
            for op in ops:
                assert op.user in slices[client], (
                    f"client {client} issued an op for a user it "
                    f"does not own"
                )

    def test_churn_ops_record_explicit_state(self):
        """Toggles are scripted as explicit permit/revoke, so replay
        never depends on catalog state to interpret an op."""
        spec = TrafficSpec(clients=3, ops_per_client=40, seed=6,
                           churn_every=3)
        script = build_traffic(spec)
        kinds = {op.kind for ops in script.clients for op in ops}
        assert "permit" in kinds or "revoke" in kinds
        for ops in script.clients:
            for op in ops:
                if op.kind == "query":
                    assert op.query is not None and op.view is None
                else:
                    assert op.view is not None and op.query is None

    def test_zipf_skew_concentrates_queries(self):
        spec = TrafficSpec(clients=2, ops_per_client=200,
                           distinct_queries=10, query_skew=1.5,
                           seed=12)
        script = build_traffic(spec)
        counts = {}
        for ops in script.clients:
            for op in ops:
                if op.kind == "query":
                    counts[str(op.query)] = \
                        counts.get(str(op.query), 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        # The hottest statement dominates the coldest heavily.
        assert ranked[0] >= 5 * ranked[-1]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TrafficSpec(clients=0)
        with pytest.raises(ValueError):
            TrafficSpec(users_per_client=0)
        with pytest.raises(ValueError):
            TrafficSpec(distinct_queries=0)
