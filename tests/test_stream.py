"""Unit tests for chunk-streamed authorized answers.

``AuthorizationEngine.authorize_stream`` is :meth:`authorize`'s
iterator mode: the concatenated chunks must be byte-identical to the
materialized ``delivered`` tuple, the statistics and audit record must
match, and every failure mode — establishment faults, mid-stream
faults, stream-budget exhaustion, consumer abandonment — must fail the
*remainder* closed while keeping what was already delivered on the
books.  The kernel-level identities backing these tests live in
``tests/property/test_columnar_relation.py`` and
``tests/property/test_chunked_apply.py``.
"""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.audit import AuditLog
from repro.core.engine import AuthorizationEngine
from repro.errors import BackendError, ParseError
from repro.resilience.failover import StreamOutcome
from repro.testing import faults
from repro.workloads.paperdb import (
    EXAMPLE_1_QUERY,
    EXAMPLE_2_QUERY,
    EXAMPLE_3_QUERY,
    build_paper_engine,
)

EXAMPLES = (EXAMPLE_1_QUERY, EXAMPLE_2_QUERY, EXAMPLE_3_QUERY)


def drain(stream):
    return tuple(row for chunk in stream for row in chunk)


class TestParityWithAuthorize:
    @pytest.mark.parametrize("chunk_size", [None, 1, 2, 10_000])
    def test_delivered_rows_identical(self, paper_engine, chunk_size):
        for user in ("Brown", "Smith", "stranger"):
            for query in EXAMPLES:
                answer = paper_engine.authorize(user, query)
                stream = paper_engine.authorize_stream(
                    user, query, chunk_size=chunk_size
                )
                assert drain(stream) == answer.delivered
                assert stream.finished
                assert stream.stats() == answer.stats()
                assert stream.error == answer.error
                assert [str(p) for p in stream.permits] \
                    == [str(p) for p in answer.permits]

    def test_parity_with_drop_fully_masked(self):
        engine = build_paper_engine(
            DEFAULT_CONFIG.but(drop_fully_masked_rows=True)
        )
        answer = engine.authorize("Brown", EXAMPLE_1_QUERY)
        stream = engine.authorize_stream("Brown", EXAMPLE_1_QUERY,
                                         chunk_size=1)
        assert drain(stream) == answer.delivered == (("bq-45", "Acme"),)

    def test_parity_without_compiled_masks(self):
        engine = build_paper_engine(
            DEFAULT_CONFIG.but(compiled_masks=False)
        )
        reference = build_paper_engine().authorize(
            "Brown", EXAMPLE_1_QUERY
        )
        stream = engine.authorize_stream("Brown", EXAMPLE_1_QUERY)
        assert drain(stream) == reference.delivered

    def test_chunk_size_defaults_to_config(self):
        engine = build_paper_engine(
            DEFAULT_CONFIG.but(stream_chunk_size=7)
        )
        stream = engine.authorize_stream("Brown", EXAMPLE_1_QUERY)
        assert stream.chunk_size == 7

    def test_rejects_non_retrieve(self, paper_engine):
        with pytest.raises(ParseError):
            paper_engine.authorize_stream("Brown", "permit SAE to Brown")

    def test_metadata_available_before_consumption(self, paper_engine):
        stream = paper_engine.authorize_stream("Brown", EXAMPLE_1_QUERY)
        assert stream.backend_used == "python"
        assert not stream.finished
        assert stream.total_rows == 0


class TestStreamBudget:
    def test_max_stream_rows_truncates(self):
        engine = build_paper_engine(
            DEFAULT_CONFIG.but(max_stream_rows=1)
        )
        stream = engine.authorize_stream("Brown", EXAMPLE_1_QUERY,
                                         chunk_size=1)
        chunks = list(stream)
        # The first chunk was within budget and stands; the second was
        # never delivered and the stream failed the remainder closed.
        assert len(chunks) == 1
        assert stream.finished
        assert stream.error is not None
        assert "stream-rows" in stream.error

    def test_budget_off_by_default(self, paper_engine):
        stream = paper_engine.authorize_stream("Brown", EXAMPLE_1_QUERY,
                                               chunk_size=1)
        assert len(list(stream)) == 2
        assert stream.error is None


class TestFailClosed:
    def test_establishment_fault_denies_whole_stream(self):
        engine = build_paper_engine()
        with faults.inject({"engine.evaluate": faults.Fault("raise")}):
            stream = engine.authorize_stream("Brown", EXAMPLE_1_QUERY)
        assert stream.finished
        assert stream.error is not None
        assert drain(stream) == ()

    def test_establishment_fault_raises_in_dev_mode(self):
        engine = build_paper_engine(
            DEFAULT_CONFIG.but(fail_closed=False,
                               backend_retry_attempts=1)
        )
        with faults.inject({"backend.execute": faults.Fault("raise")}):
            with pytest.raises(Exception):
                engine.authorize_stream("Brown", EXAMPLE_1_QUERY)

    def test_midstream_fault_withholds_remainder(self, paper_engine):
        stream = paper_engine.authorize_stream("Brown", EXAMPLE_1_QUERY,
                                               chunk_size=1)

        def broken():
            yield (("bq-45", "Acme"),)
            raise BackendError("mid-stream loss")

        # Re-point the stream at an evaluation that dies after one
        # chunk: the engine's generator must deliver the first chunk,
        # then end the stream failed-closed instead of propagating.
        stream._chunks = paper_engine._stream_chunks(
            stream, broken(), None, ()
        )
        chunks = list(stream)
        assert len(chunks) == 1
        assert stream.finished
        assert stream.error is not None
        assert "mid-stream loss" in stream.error

    def test_denied_stream_for_empty_mask_user(self, paper_engine):
        answer = paper_engine.authorize("stranger", EXAMPLE_1_QUERY)
        stream = paper_engine.authorize_stream("stranger",
                                               EXAMPLE_1_QUERY)
        assert drain(stream) == answer.delivered
        assert stream.stats().delivered_cells == 0


class TestFailover:
    def test_stream_establishment_fails_over(self):
        engine = build_paper_engine(
            DEFAULT_CONFIG.but(backend="sqlite",
                               backend_retry_attempts=1)
        )
        reference = build_paper_engine().authorize(
            "Brown", EXAMPLE_1_QUERY
        )
        with faults.inject({"backend.execute": faults.Fault("raise")}):
            stream = engine.authorize_stream("Brown", EXAMPLE_1_QUERY)
            rows = drain(stream)
        assert stream.failed_over
        assert stream.backend_used == "python"
        # SQL backends stream in backend row order; compare as sets.
        assert set(rows) == set(reference.delivered)

    def test_sqlite_backend_streams_via_materialize(self):
        engine = build_paper_engine(DEFAULT_CONFIG.but(backend="sqlite"))
        reference = build_paper_engine().authorize(
            "Brown", EXAMPLE_1_QUERY
        )
        stream = engine.authorize_stream("Brown", EXAMPLE_1_QUERY)
        rows = drain(stream)
        assert stream.backend_used == "sqlite"
        assert not stream.failed_over
        assert set(rows) == set(reference.delivered)

    def test_outcome_carries_primed_chunks(self):
        engine = build_paper_engine()
        plan = engine._compile(
            engine._parse_query(EXAMPLE_1_QUERY, "test")
        )
        outcome = engine.executor.execute_stream(plan, chunk_size=1)
        assert isinstance(outcome, StreamOutcome)
        assert outcome.backend_used == "python"
        assert sum(len(c) for c in outcome.chunks) == 2


class TestStreamAudit:
    def test_one_record_per_stream(self):
        audit = AuditLog()
        engine = build_paper_engine()
        engine.audit = audit
        answer_stats = engine.authorize("Brown", EXAMPLE_1_QUERY).stats()
        assert len(audit) == 1  # the authorize() above
        stream = engine.authorize_stream("Brown", EXAMPLE_1_QUERY)
        assert len(audit) == 1  # nothing recorded until the stream ends
        drain(stream)
        assert len(audit) == 2
        record = audit.records()[-1]
        assert record.stats == answer_stats
        assert record.user == "Brown"
        assert record.backend_used == "python"

    def test_abandoned_stream_records_prefix(self):
        audit = AuditLog()
        engine = build_paper_engine()
        engine.audit = audit
        stream = engine.authorize_stream("Brown", EXAMPLE_1_QUERY,
                                         chunk_size=1)
        next(iter(stream))
        stream.close()
        assert stream.finished
        assert len(audit) == 1
        assert audit.records()[-1].stats.total_rows == 1

    def test_denied_stream_recorded_immediately(self):
        audit = AuditLog()
        engine = build_paper_engine()
        engine.audit = audit
        with faults.inject({"engine.evaluate": faults.Fault("raise")}):
            engine.authorize_stream("Brown", EXAMPLE_1_QUERY)
        assert len(audit) == 1
        assert audit.records()[-1].outcome == "denied"
        assert audit.records()[-1].error is not None
