"""Unit tests for the aggregate-views extension (Section 6, ext. 2)."""

import pytest

from repro.core.engine import AuthorizationEngine
from repro.errors import AuthorizationError, SafetyError
from repro.extensions.aggregates import (
    AggregateAuthorizer,
    AggregateFunction,
    AggregateSpec,
)
from repro.lang.parser import parse_query
from repro.meta.catalog import PermissionCatalog
from repro.workloads.paperdb import build_paper_database


@pytest.fixture
def engine():
    database = build_paper_database()
    return AuthorizationEngine(database, PermissionCatalog(database.schema))


@pytest.fixture
def authorizer(engine):
    return AggregateAuthorizer(engine)


def spec(text, function=AggregateFunction.SUM):
    return AggregateSpec(parse_query(text), function)


BUDGET_BY_SPONSOR = "retrieve (PROJECT.SPONSOR, PROJECT.BUDGET)"


class TestFunctions:
    def test_sum_min_max_avg_count(self):
        values = [10, 20, 30]
        assert AggregateFunction.SUM.apply(values) == 60
        assert AggregateFunction.MIN.apply(values) == 10
        assert AggregateFunction.MAX.apply(values) == 30
        assert AggregateFunction.AVG.apply(values) == 20
        assert AggregateFunction.COUNT.apply(values) == 3

    def test_empty_group(self):
        assert AggregateFunction.COUNT.apply([]) == 0
        with pytest.raises(AuthorizationError):
            AggregateFunction.SUM.apply([])


class TestExactGrantRoute:
    def test_granted_aggregate_delivers(self, authorizer):
        authorizer.define("SPEND", BUDGET_BY_SPONSOR,
                          AggregateFunction.SUM)
        authorizer.permit("SPEND", "analyst")
        answer = authorizer.authorize(
            "analyst", spec(BUDGET_BY_SPONSOR)
        )
        assert answer.labels == ("SPONSOR", "sum(BUDGET)")
        assert set(answer.rows) == {
            ("Acme", 300_000), ("Apex", 450_000), ("Summit", 150_000),
        }
        assert "aggregate view SPEND" in answer.route

    def test_grant_does_not_open_rows(self, authorizer, engine):
        authorizer.define("SPEND", BUDGET_BY_SPONSOR,
                          AggregateFunction.SUM)
        authorizer.permit("SPEND", "analyst")
        row_level = engine.authorize(
            "analyst", "retrieve (PROJECT.SPONSOR, PROJECT.BUDGET)"
        )
        assert row_level.is_fully_masked

    def test_function_must_match(self, authorizer):
        authorizer.define("SPEND", BUDGET_BY_SPONSOR,
                          AggregateFunction.SUM)
        authorizer.permit("SPEND", "analyst")
        with pytest.raises(AuthorizationError):
            authorizer.authorize(
                "analyst",
                spec(BUDGET_BY_SPONSOR, AggregateFunction.MAX),
            )

    def test_core_must_be_equivalent_not_contained(self, authorizer):
        authorizer.define("SPEND", BUDGET_BY_SPONSOR,
                          AggregateFunction.SUM)
        authorizer.permit("SPEND", "analyst")
        narrowed = spec(
            "retrieve (PROJECT.SPONSOR, PROJECT.BUDGET) "
            "where PROJECT.BUDGET >= 200,000"
        )
        with pytest.raises(AuthorizationError):
            authorizer.authorize("analyst", narrowed)

    def test_equivalent_phrasing_accepted(self, authorizer):
        authorizer.define(
            "SPEND",
            "retrieve (PROJECT.SPONSOR, PROJECT.BUDGET) "
            "where PROJECT.BUDGET >= 0 and PROJECT.BUDGET >= 0",
            AggregateFunction.SUM,
        )
        authorizer.permit("SPEND", "analyst")
        request = spec(
            "retrieve (PROJECT.SPONSOR, PROJECT.BUDGET) "
            "where PROJECT.BUDGET >= 0"
        )
        answer = authorizer.authorize("analyst", request)
        assert answer.rows  # delivered

    def test_revoke(self, authorizer):
        authorizer.define("SPEND", BUDGET_BY_SPONSOR,
                          AggregateFunction.SUM)
        authorizer.permit("SPEND", "analyst")
        authorizer.revoke("SPEND", "analyst")
        with pytest.raises(AuthorizationError):
            authorizer.authorize("analyst", spec(BUDGET_BY_SPONSOR))


class TestDerivableRoute:
    def test_visible_rows_allow_any_aggregate(self, engine):
        engine.define_view(
            "view ALLP (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)"
        )
        engine.permit("ALLP", "hr")
        authorizer = AggregateAuthorizer(engine)
        answer = authorizer.authorize(
            "hr", spec(BUDGET_BY_SPONSOR, AggregateFunction.MAX)
        )
        assert ("Apex", 450_000) in answer.rows
        assert answer.route == "derived from visible cells"

    def test_partially_visible_rows_deny(self, engine):
        engine.define_view(
            "view ACME (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
            "where PROJECT.SPONSOR = Acme"
        )
        engine.permit("ACME", "brown")
        authorizer = AggregateAuthorizer(engine)
        with pytest.raises(AuthorizationError):
            authorizer.authorize("brown", spec(BUDGET_BY_SPONSOR))

    def test_visible_restricted_core_allows(self, engine):
        engine.define_view(
            "view ACME (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
            "where PROJECT.SPONSOR = Acme"
        )
        engine.permit("ACME", "brown")
        authorizer = AggregateAuthorizer(engine)
        answer = authorizer.authorize("brown", spec(
            "retrieve (PROJECT.SPONSOR, PROJECT.BUDGET) "
            "where PROJECT.SPONSOR = Acme"
        ))
        assert answer.rows == (("Acme", 300_000),)


class TestGrouping:
    def test_multi_group_aggregate(self, authorizer, engine):
        core = ("retrieve (ASSIGNMENT.E_NAME, ASSIGNMENT.P_NO, "
                "PROJECT.BUDGET) "
                "where ASSIGNMENT.P_NO = PROJECT.NUMBER")
        authorizer.define("WORK", core, AggregateFunction.COUNT)
        authorizer.permit("WORK", "ops")
        answer = authorizer.authorize(
            "ops", spec(core, AggregateFunction.COUNT)
        )
        # one row per (employee, project) pair, each counting 1
        assert all(row[-1] == 1 for row in answer.rows)
        assert len(answer.rows) == 6

    def test_count_groups(self, authorizer):
        core = "retrieve (ASSIGNMENT.E_NAME, ASSIGNMENT.P_NO)"
        authorizer.define("LOAD", core, AggregateFunction.COUNT)
        authorizer.permit("LOAD", "ops")
        answer = authorizer.authorize(
            "ops", spec(core, AggregateFunction.COUNT)
        )
        counts = dict((row[0], row[1]) for row in answer.rows)
        assert counts == {"Jones": 2, "Smith": 2, "Brown": 2}

    def test_render(self, authorizer):
        authorizer.define("SPEND", BUDGET_BY_SPONSOR,
                          AggregateFunction.SUM)
        authorizer.permit("SPEND", "analyst")
        answer = authorizer.authorize("analyst", spec(BUDGET_BY_SPONSOR))
        text = answer.render()
        assert "sum(BUDGET)" in text and "via aggregate view SPEND" in text


class TestDefinitionErrors:
    def test_duplicate_name(self, authorizer):
        authorizer.define("A", BUDGET_BY_SPONSOR, AggregateFunction.SUM)
        with pytest.raises(SafetyError):
            authorizer.define("A", BUDGET_BY_SPONSOR,
                              AggregateFunction.SUM)

    def test_unknown_grant(self, authorizer):
        with pytest.raises(SafetyError):
            authorizer.permit("NOPE", "u")
