"""Unit tests for meta-tuple decoding into permit clauses."""

from repro.meta.cell import MetaCell
from repro.meta.decode import permit_clauses
from repro.meta.metatuple import MetaTuple
from repro.predicates.comparators import Comparator
from repro.predicates.store import ConstraintStore

LABELS = ("NUMBER", "SPONSOR", "BUDGET")
EMPTY = ConstraintStore.empty()


def tup(*cells):
    return MetaTuple(frozenset({"V"}), tuple(cells), frozenset())


class TestColumnsAndConstants:
    def test_starred_columns_listed_in_order(self):
        meta = tup(MetaCell.blank(True), MetaCell.blank(),
                   MetaCell.blank(True))
        columns, clauses = permit_clauses(LABELS, meta, EMPTY)
        assert columns == ("NUMBER", "BUDGET")
        assert clauses == ()

    def test_constant_clause(self):
        meta = tup(MetaCell.blank(True),
                   MetaCell.constant("Acme", True), MetaCell.blank())
        _, clauses = permit_clauses(LABELS, meta, EMPTY)
        assert clauses == ("SPONSOR = Acme",)

    def test_large_constants_formatted(self):
        meta = tup(MetaCell.blank(True), MetaCell.blank(),
                   MetaCell.constant(250_000, True))
        _, clauses = permit_clauses(LABELS, meta, EMPTY)
        assert clauses == ("BUDGET = 250,000",)

    def test_unstarred_constant_still_describes(self):
        # A selection attribute outside the projection is still part of
        # the delivered portion's description.
        meta = tup(MetaCell.blank(True),
                   MetaCell.constant("Acme", False), MetaCell.blank())
        columns, clauses = permit_clauses(LABELS, meta, EMPTY)
        assert columns == ("NUMBER",)
        assert clauses == ("SPONSOR = Acme",)


class TestVariables:
    def test_interval_clauses(self):
        store = (EMPTY.constrain("x1", Comparator.GE, 300_000)
                 .constrain("x1", Comparator.LE, 600_000))
        meta = tup(MetaCell.blank(True), MetaCell.blank(),
                   MetaCell.variable("x1", True))
        _, clauses = permit_clauses(LABELS, meta, store)
        assert clauses == ("BUDGET >= 300,000", "BUDGET <= 600,000")

    def test_multi_occurrence_equality(self):
        meta = tup(MetaCell.variable("x1", True),
                   MetaCell.variable("x1", True), MetaCell.blank())
        _, clauses = permit_clauses(LABELS, meta, EMPTY)
        assert clauses == ("NUMBER = SPONSOR",)

    def test_var_var_relation_clause(self):
        store = EMPTY.relate("x1", Comparator.LT, "x2")
        meta = tup(MetaCell.variable("x1", True),
                   MetaCell.blank(),
                   MetaCell.variable("x2", True))
        _, clauses = permit_clauses(LABELS, meta, store)
        assert clauses == ("NUMBER < BUDGET",)

    def test_relation_with_absent_var_is_silent(self):
        store = EMPTY.relate("x1", Comparator.LT, "ghost")
        meta = tup(MetaCell.variable("x1", True), MetaCell.blank(),
                   MetaCell.blank())
        _, clauses = permit_clauses(LABELS, meta, store)
        assert clauses == ()

    def test_unconstrained_variable_is_silent(self):
        meta = tup(MetaCell.variable("x1", True), MetaCell.blank(),
                   MetaCell.blank())
        _, clauses = permit_clauses(LABELS, meta, EMPTY)
        assert clauses == ()
