# soundlint: disable-file=SL006 -- exercises the algebra/evaluation layer directly, below the authorization boundary; nothing is user-delivered
"""Unit tests for repro.algebra.database."""

import pytest

from repro.algebra.database import Database, build_database
from repro.algebra.schema import DatabaseSchema, make_schema
from repro.algebra.types import INTEGER, STRING
from repro.errors import SchemaError, UnknownRelationError


@pytest.fixture
def db():
    r = make_schema("R", [("A", STRING), ("N", INTEGER)], key=["A"])
    s = make_schema("S", [("B", STRING)], key=["B"])
    return build_database(
        [r, s], {"R": [("x", 1), ("y", 2)], "S": [("z",)]}
    )


class TestConstruction:
    def test_build_database(self, db):
        assert db.instance("R").cardinality == 2
        assert db.instance("S").cardinality == 1

    def test_instances_start_empty(self):
        schema = DatabaseSchema()
        schema.add(make_schema("R", [("A", STRING)]))
        database = Database(schema)
        assert database.instance("R").cardinality == 0

    def test_build_rejects_undeclared_instances(self):
        r = make_schema("R", [("A", STRING)])
        with pytest.raises(SchemaError):
            build_database([r], {"NOPE": [("x",)]})

    def test_unknown_relation(self, db):
        with pytest.raises(UnknownRelationError):
            db.instance("NOPE")


class TestMutation:
    def test_insert(self, db):
        db.insert("R", ("w", 9))
        assert ("w", 9) in db.instance("R")

    def test_insert_duplicate_is_noop(self, db):
        db.insert("R", ("x", 1))
        assert db.instance("R").cardinality == 2

    def test_delete(self, db):
        removed = db.delete("R", [("x", 1), ("nope", 0)])
        assert removed == 1
        assert ("x", 1) not in db.instance("R")

    def test_load_replaces(self, db):
        db.load("S", [("q",), ("r",)])
        assert db.instance("S").cardinality == 2

    def test_add_relation(self, db):
        db.add_relation(
            make_schema("T", [("C", INTEGER)]), rows=[(5,)]
        )
        assert db.instance("T").cardinality == 1
        assert "T" in db

    def test_total_rows(self, db):
        assert db.total_rows() == 3

    def test_iteration(self, db):
        names = [name for name, _ in db]
        assert names == ["R", "S"]

    def test_schema_of(self, db):
        assert db.schema_of("R").arity == 2
        assert db.relation_names() == ("R", "S")
