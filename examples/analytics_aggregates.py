#!/usr/bin/env python3
"""Domain scenario: statistics-only access via aggregate views.

The Section 6(2) extension in action: an analyst may learn the total
budget per sponsor without ever seeing a single project row, while an
auditor with full row access derives any aggregate for free, and a
narrowed aggregate request (budgets of large projects only) is refused
because it is not derivable from the granted statistic.

Run:  python examples/analytics_aggregates.py
"""

from repro.core import AuthorizationEngine
from repro.errors import AuthorizationError
from repro.extensions import AggregateAuthorizer, AggregateFunction
from repro.extensions.aggregates import AggregateSpec
from repro.lang.parser import parse_query
from repro.meta.catalog import PermissionCatalog
from repro.workloads import build_paper_database

BUDGET_BY_SPONSOR = "retrieve (PROJECT.SPONSOR, PROJECT.BUDGET)"


def main() -> None:
    database = build_paper_database()
    catalog = PermissionCatalog(database.schema)
    catalog.define_view(
        "view ALLP (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)"
    )
    catalog.permit("ALLP", "auditor")
    engine = AuthorizationEngine(database, catalog)

    aggregates = AggregateAuthorizer(engine)
    aggregates.define("SPEND_BY_SPONSOR", BUDGET_BY_SPONSOR,
                      AggregateFunction.SUM)
    aggregates.permit("SPEND_BY_SPONSOR", "analyst")

    print("=== analyst: SUM(BUDGET) by SPONSOR — granted statistic ===")
    answer = aggregates.authorize(
        "analyst",
        AggregateSpec(parse_query(BUDGET_BY_SPONSOR),
                      AggregateFunction.SUM),
    )
    print(answer.render())
    print()

    print("=== analyst: the underlying rows stay masked ===")
    rows = engine.authorize("analyst", BUDGET_BY_SPONSOR)
    print(rows.render())
    print()

    print("=== analyst: MAX over large projects only — refused ===")
    try:
        aggregates.authorize(
            "analyst",
            AggregateSpec(
                parse_query(
                    "retrieve (PROJECT.SPONSOR, PROJECT.BUDGET) "
                    "where PROJECT.BUDGET >= 300,000"
                ),
                AggregateFunction.MAX,
            ),
        )
    except AuthorizationError as error:
        print(f"denied: {error}")
    print()

    print("=== auditor: any aggregate, derived from visible rows ===")
    answer = aggregates.authorize(
        "auditor",
        AggregateSpec(parse_query(BUDGET_BY_SPONSOR),
                      AggregateFunction.AVG),
    )
    print(answer.render())


if __name__ == "__main__":
    main()
