#!/usr/bin/env python3
"""Quickstart: define a database, grant views, run masked retrievals.

This is the smallest complete tour of the public API:

1. declare a schema and load an instance;
2. define conjunctive views in the paper's surface syntax;
3. grant them to users with permit semantics;
4. issue retrieve statements *against the base relations* and receive
   masked answers plus inferred permit statements.

Run:  python examples/quickstart.py
"""

from repro import (
    AuthorizationEngine,
    INTEGER,
    PermissionCatalog,
    STRING,
    build_database,
    make_schema,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A database: books and loans of a small library.
    # ------------------------------------------------------------------
    book = make_schema(
        "BOOK",
        [("ISBN", STRING), ("TITLE", STRING), ("PRICE", INTEGER)],
        key=["ISBN"],
    )
    loan = make_schema(
        "LOAN",
        [("ISBN", STRING), ("MEMBER", STRING)],
        key=["ISBN", "MEMBER"],
    )
    database = build_database(
        [book, loan],
        {
            "BOOK": [
                ("1-111", "A Relational Model", 80),
                ("2-222", "Query-by-Example", 45),
                ("3-333", "Rare Incunabulum", 4000),
            ],
            "LOAN": [
                ("1-111", "ann"),
                ("2-222", "bob"),
                ("2-222", "ann"),
            ],
        },
    )

    # ------------------------------------------------------------------
    # 2. Views = statements of permission (never access windows).
    # ------------------------------------------------------------------
    catalog = PermissionCatalog(database.schema)
    catalog.define_view(
        "view AFFORDABLE (BOOK.ISBN, BOOK.TITLE, BOOK.PRICE) "
        "where BOOK.PRICE <= 100"
    )
    catalog.define_view(
        "view ANNS_LOANS (BOOK.ISBN, BOOK.TITLE, LOAN.MEMBER) "
        "where BOOK.ISBN = LOAN.ISBN and LOAN.MEMBER = ann"
    )

    # ------------------------------------------------------------------
    # 3. Grants (the PERMISSION relation).
    # ------------------------------------------------------------------
    catalog.permit("AFFORDABLE", "patron")
    catalog.permit("ANNS_LOANS", "ann")

    engine = AuthorizationEngine(database, catalog)

    # ------------------------------------------------------------------
    # 4. Queries against the base relations, masked per user.
    # ------------------------------------------------------------------
    print("=== patron asks for every book and its price ===")
    answer = engine.authorize(
        "patron", "retrieve (BOOK.TITLE, BOOK.PRICE)"
    )
    print(answer.render())
    print()

    print("=== ann asks who borrowed what ===")
    answer = engine.authorize(
        "ann",
        "retrieve (BOOK.TITLE, LOAN.MEMBER) "
        "where BOOK.ISBN = LOAN.ISBN",
    )
    print(answer.render())
    print()

    print("=== bob (no grants) asks the same ===")
    answer = engine.authorize(
        "bob",
        "retrieve (BOOK.TITLE, LOAN.MEMBER) "
        "where BOOK.ISBN = LOAN.ISBN",
    )
    print(answer.render())
    print()

    stats = answer.stats()
    print(f"bob received {stats.delivered_cells} of "
          f"{stats.total_cells} cells")


if __name__ == "__main__":
    main()
