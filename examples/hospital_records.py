#!/usr/bin/env python3
"""Domain scenario: role-based access to hospital records.

Four roles query the same patient/physician/treatment database; each
receives the portion its views permit, with inferred permit statements
explaining the reduction:

* the nurse sees demographics of non-psychiatric patients;
* Dr. House sees the full picture of his own patients;
* billing sees costs but never diagnoses;
* research sees expensive treatments plus non-psychiatric demographics,
  and can *join* them — a multi-relation permission INGRES-style
  single-relation models cannot express.

Run:  python examples/hospital_records.py
"""

from repro.extensions import UpdateAuthorizer
from repro.errors import AuthorizationError
from repro.workloads import hospital_scenario


def show(title: str, answer) -> None:
    print(f"=== {title} ===")
    print(answer.render())
    stats = answer.stats()
    print(f"-- {stats.delivered_cells}/{stats.total_cells} cells "
          f"delivered")
    print()


def main() -> None:
    scenario = hospital_scenario()
    engine = scenario.engine

    show(
        "nurse: all patients with wards and diagnoses",
        engine.authorize(
            "nurse",
            "retrieve (PATIENT.NAME, PATIENT.WARD, PATIENT.DIAGNOSIS)",
        ),
    )

    show(
        "Dr. House: his patients' diagnoses and drugs",
        engine.authorize(
            "house",
            "retrieve (PATIENT.NAME, PATIENT.DIAGNOSIS, TREATMENT.DRUG) "
            "where PATIENT.PID = TREATMENT.PID "
            "and TREATMENT.DOC = house",
        ),
    )

    show(
        "billing: costs per patient id (diagnoses stay hidden)",
        engine.authorize(
            "billing",
            "retrieve (TREATMENT.PID, TREATMENT.DRUG, TREATMENT.COST)",
        ),
    )

    show(
        "research: who gets expensive treatments, by name",
        engine.authorize(
            "research",
            "retrieve (PATIENT.NAME, TREATMENT.DRUG, TREATMENT.COST) "
            "where PATIENT.PID = TREATMENT.PID "
            "and TREATMENT.COST >= 1000",
        ),
    )

    # ---------------------------------------------------------------
    # Update permissions (the Section 6 extension): inserting requires
    # the whole row to lie within the user's views.  Billing's view
    # omits the physician column, so billing cannot insert; an intake
    # role with a full-row view can.
    # ---------------------------------------------------------------
    updates = UpdateAuthorizer(engine)
    try:
        updates.insert("billing", "TREATMENT",
                       ("p1", "house", "aspirin", 5))
    except AuthorizationError as error:
        print(f"billing insert denied: {error}")

    engine.define_view(
        "view INTAKE (TREATMENT.PID, TREATMENT.DOC, TREATMENT.DRUG, "
        "TREATMENT.COST)"
    )
    engine.permit("INTAKE", "intake")
    updates.insert("intake", "TREATMENT", ("p1", "house", "aspirin", 5))
    print("intake inserted a treatment row")


if __name__ == "__main__":
    main()
