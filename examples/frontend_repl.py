#!/usr/bin/env python3
"""The Section 6 front end, driven programmatically.

Feeds a scripted session through the interactive REPL: an administrator
defines a view and grants it, then users retrieve — with the
meta-relations kept fully transparent, exactly as the paper's closing
section envisions.  The same REPL serves interactive use via
``repro-authdb`` / ``python -m repro.cli``.

Run:  python examples/frontend_repl.py
"""

from repro.cli import Repl
from repro.workloads import build_paper_engine

SCRIPT = """\
.user admin
view TECH (EMPLOYEE.NAME, EMPLOYEE.TITLE) where EMPLOYEE.TITLE = technician
permit TECH to Kim
permit (PROJECT.NUMBER, PROJECT.SPONSOR) where PROJECT.SPONSOR = Acme to Kim
.user Kim
retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)
retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)
retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)
.user Brown
retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) where PROJECT.BUDGET >= 250,000
.grants
.meta EMPLOYEE
"""


def main() -> None:
    repl = Repl(build_paper_engine())
    for line in SCRIPT.splitlines():
        print(f"{repl.user}> {line}")
        output = repl.process_line(line)
        if output:
            print(output)
        print()


if __name__ == "__main__":
    main()
