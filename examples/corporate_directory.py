#!/usr/bin/env python3
"""Domain scenario: a corporate directory with salary-capped views.

Demonstrates three model behaviours on an HR database:

* column masking — staff see the directory but never salaries;
* predicate masking — the engineering manager sees salaries only in
  their department and only below a cap, and the inferred permit
  statement says exactly that;
* the Section 6(3) expressibility limit — the capped view can restrict
  only what the query requests, so asking for salaries *without* the
  department column yields nothing (and the library tells you).

Run:  python examples/corporate_directory.py
"""

from repro.workloads import corporate_scenario


def show(title: str, answer) -> None:
    print(f"=== {title} ===")
    print(answer.render())
    print()


def main() -> None:
    scenario = corporate_scenario()
    engine = scenario.engine

    show(
        "staff: the directory plus salaries (salaries mask)",
        engine.authorize(
            "staff", "retrieve (EMP.ENAME, EMP.DEPT, EMP.SALARY)"
        ),
    )

    show(
        "hr: everything, including budgets",
        engine.authorize(
            "hr",
            "retrieve (EMP.ENAME, EMP.SALARY, DEPT.BUDGET) "
            "where EMP.DEPT = DEPT.DNAME",
        ),
    )

    show(
        "engmgr: engineering salaries under the cap",
        engine.authorize(
            "engmgr",
            "retrieve (EMP.ENAME, EMP.DEPT, EMP.SALARY) "
            "where EMP.DEPT = eng",
        ),
    )

    show(
        "engmgr without the DEPT column: the capped view cannot be "
        "expressed, salaries mask (Section 6(3))",
        engine.authorize(
            "engmgr", "retrieve (EMP.ENAME, EMP.SALARY)"
        ),
    )

    # Revocation takes effect immediately.
    engine.revoke("ENG_SALARIES", "engmgr")
    show(
        "engmgr after revocation",
        engine.authorize(
            "engmgr",
            "retrieve (EMP.ENAME, EMP.DEPT, EMP.SALARY) "
            "where EMP.DEPT = eng",
        ),
    )


if __name__ == "__main__":
    main()
