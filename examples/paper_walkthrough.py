#!/usr/bin/env python3
"""The paper, end to end: Figure 1 plus the three Section 5 examples.

Prints every table the paper prints — the extended database, the pruned
meta-relations, the meta-products, the masks — using the experiment
harness, so the output can be compared line by line with the paper.

Run:  python examples/paper_walkthrough.py
"""

from repro.experiments import (  # noqa: F401  (package marker)
    ExperimentResult,
)
from repro.experiments.runner import run_all


def main() -> None:
    for result in run_all(["E1", "E3", "E4", "E5"]):
        print(result.render())
        print()


if __name__ == "__main__":
    main()
