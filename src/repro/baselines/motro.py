"""The paper's model wrapped in the comparison interface."""

from __future__ import annotations

from typing import Union

from repro.baselines.interface import Decision, Outcome
from repro.calculus.ast import Query
from repro.core.engine import AuthorizationEngine


class MotroModel:
    """Adapter: :class:`AuthorizationEngine` as a comparison baseline."""

    name = "Motro"

    def __init__(self, engine: AuthorizationEngine) -> None:
        self.engine = engine

    def authorize_query(self, user: str,
                        query: Union[Query, str]) -> Decision:
        answer = self.engine.authorize(user, query)
        stats = answer.stats()
        if stats.delivered_cells == 0:
            outcome = Outcome.DENIED
            note = "mask empty: nothing within permissions"
        elif answer.is_fully_delivered:
            outcome = Outcome.FULL
            note = "mask covers the whole answer"
        else:
            outcome = Outcome.PARTIAL
            note = "answer masked to the permitted subviews"
        return Decision(outcome, answer.labels, answer.delivered, note)
