"""The soundness oracle.

The paper's Theorem guarantees that every view in A' is a view of the
permitted views V1..Vm.  The semantic consequence — and the property a
security reviewer actually cares about — is *non-interference*: if two
database instances agree on every view the user is permitted to access,
the authorization process must deliver indistinguishable answers.  Any
difference would prove the user learned something not derivable from
the permitted views.

This module makes that property executable:

* :func:`materialize_view` / :func:`materialize_views` — evaluate
  permitted views over an instance;
* :func:`views_agree` — do two instances agree on a user's views?
* :func:`delivered_view` — the information content of a delivery
  (the *set* of delivered rows; see the multiplicity note below);
* :func:`check_non_interference` — the end-to-end oracle.

Multiplicity caveat: the paper delivers the answer's tuples with masked
values.  Two answer tuples that differ only in masked cells deliver the
same visible row, but their *count* still reveals that the hidden cells
differ — an inherent property of cell-masking presentations, not of the
mask derivation.  The oracle therefore compares delivered row *sets*,
which is exactly the information content of the permitted subviews the
Theorem speaks about.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Tuple, Union

from repro.algebra.database import Database
from repro.algebra.optimize import evaluate_optimized
from repro.algebra.relation import Relation
from repro.calculus.ast import Query
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.core.answer import AuthorizedAnswer
from repro.core.engine import AuthorizationEngine
from repro.meta.catalog import PermissionCatalog


def materialize_view(catalog: PermissionCatalog, name: str,
                     database: Database) -> Relation:
    """Evaluate view ``name`` over ``database``."""
    normalized = catalog.view(name).normalized
    plan = normalized.materialization_psj(database.schema)
    return evaluate_optimized(plan, database)


def materialize_views(catalog: PermissionCatalog, names: Iterable[str],
                      database: Database) -> Dict[str, Relation]:
    """Evaluate several views over ``database``."""
    return {
        name: materialize_view(catalog, name, database) for name in names
    }


def views_agree(catalog: PermissionCatalog, user: str,
                first: Database, second: Database) -> bool:
    """Do the two instances agree on every view permitted to ``user``?"""
    for name in catalog.views_of(user):
        left = materialize_view(catalog, name, first)
        right = materialize_view(catalog, name, second)
        if not left.same_rows(right):
            return False
    return True


def delivered_view(answer: AuthorizedAnswer) -> FrozenSet[Tuple]:
    """The information content of a delivery: its set of visible rows.

    Fully masked rows carry no information beyond the multiplicity
    caveat discussed in the module docstring and are dropped.
    """
    from repro.core.mask import MASKED

    rows = set()
    for row in answer.delivered:
        if all(value is MASKED for value in row):
            continue
        rows.add(tuple(
            "#" if value is MASKED else value for value in row
        ))
    return frozenset(rows)


def check_non_interference(
    catalog: PermissionCatalog,
    user: str,
    query: Union[Query, str],
    first: Database,
    second: Database,
    config: EngineConfig = DEFAULT_CONFIG,
) -> Tuple[bool, str]:
    """The end-to-end soundness check.

    Returns ``(ok, detail)``.  When the two instances agree on the
    user's permitted views, the deliveries must be equal; a mismatch is
    reported with both sides.  Instances that disagree on the views are
    vacuously fine (the check does not apply).
    """
    if not views_agree(catalog, user, first, second):
        return True, "instances differ on permitted views; check vacuous"

    first_answer = AuthorizationEngine(first, catalog, config) \
        .authorize(user, query)
    second_answer = AuthorizationEngine(second, catalog, config) \
        .authorize(user, query)

    left = delivered_view(first_answer)
    right = delivered_view(second_answer)
    if left == right:
        return True, "deliveries agree"
    only_left = sorted(map(str, left - right))
    only_right = sorted(map(str, right - left))
    return False, (
        "NON-INTERFERENCE VIOLATION: "
        f"only in first: {only_left}; only in second: {only_right}"
    )
