"""Common interface for the comparison baselines.

The paper's Section 1 contrasts its model with two authorization
mechanisms: System R's grant scheme [Griffiths & Wade 1976] and
INGRES's query modification [Stonebraker & Wong 1974].  To compare the
three on equal footing, every model implements
:class:`AuthorizationModel`: given a user and a conjunctive query over
the *base* relations, return a :class:`Decision` saying what portion of
the answer is delivered.

Decisions carry the delivered rows in the same masked-cell format the
Motro engine uses, so the coverage experiments can count delivered
cells uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Protocol, Tuple, Union

from repro.calculus.ast import Query


class Outcome(enum.Enum):
    """Coarse classification of an authorization decision."""

    DENIED = "denied"          # nothing delivered
    FULL = "full"              # the whole answer delivered
    PARTIAL = "partial"        # a reduced/masked answer delivered

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Decision:
    """The outcome of one authorization request.

    Attributes:
        outcome: coarse result.
        labels: columns of the delivered relation (empty when denied).
        delivered: delivered rows; masked cells hold
            :data:`repro.core.mask.MASKED`.
        note: a one-line explanation (which rule fired).
    """

    outcome: Outcome
    labels: Tuple[str, ...]
    delivered: Tuple[Tuple, ...]
    note: str = ""

    @property
    def delivered_cells(self) -> int:
        from repro.core.mask import MASKED

        return sum(
            1 for row in self.delivered for value in row
            if value is not MASKED
        )


class AuthorizationModel(Protocol):
    """A model that can authorize conjunctive base-relation queries."""

    #: Display name used in comparison tables.
    name: str

    def authorize_query(self, user: str,
                        query: Union[Query, str]) -> Decision:
        """Authorize ``query`` for ``user`` and deliver what is allowed."""
        ...
