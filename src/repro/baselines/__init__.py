"""S8 — comparison baselines and the soundness oracle.

Faithful reimplementations of the two mechanisms the paper contrasts
with in Section 1 — System R's grant scheme (views as access windows,
recursive revocation) and INGRES's query modification (single-relation
permissions, row/column asymmetry) — plus an adapter putting the
paper's engine behind the same interface, and a non-interference oracle
that makes the paper's Theorem executable.
"""

from repro.baselines.ingres import IngresModel, IngresPermission
from repro.baselines.interface import AuthorizationModel, Decision, Outcome
from repro.baselines.motro import MotroModel
from repro.baselines.oracle import (
    check_non_interference,
    delivered_view,
    materialize_view,
    materialize_views,
    views_agree,
)
from repro.baselines.system_r import Grant, SystemRModel

__all__ = [
    "AuthorizationModel",
    "Decision",
    "Grant",
    "IngresModel",
    "IngresPermission",
    "MotroModel",
    "Outcome",
    "SystemRModel",
    "check_non_interference",
    "delivered_view",
    "materialize_view",
    "materialize_views",
    "views_agree",
]
