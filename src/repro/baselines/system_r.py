"""The System R authorization baseline (Griffiths & Wade, 1976).

Reimplements the scheme the paper contrasts with in Section 1: access
permissions are granted on named objects — base relations and views —
optionally with the grant option; grants form a graph with timestamps
and revocation is recursive (a revoked grantee's own grants survive
only if independently supported by an earlier valid grant).

The paper's criticism is structural, not about grants: a view V over
relations A and B "is not only a statement of the permissions, but the
actual access window as well".  A query addressed at A or B is rejected
for lack of permissions on those relations even when the requested data
lies entirely within V; only queries addressed *at V* succeed.
:meth:`SystemRModel.authorize_query` reproduces exactly that behaviour,
and :meth:`authorize_view_query` provides the window path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.algebra.database import Database
from repro.algebra.optimize import evaluate_optimized
from repro.baselines.interface import Decision, Outcome
from repro.calculus.ast import Query, ViewDefinition
from repro.calculus.normalize import normalize_view
from repro.calculus.to_algebra import compile_query
from repro.errors import GrantError, UnknownViewError
from repro.lang.parser import parse_statement


@dataclass(frozen=True)
class Grant:
    """One edge of the grant graph."""

    grantor: str
    grantee: str
    object_name: str
    grant_option: bool
    timestamp: int


class SystemRModel:
    """Grant-based authorization with views as access windows."""

    name = "System R"

    def __init__(self, database: Database) -> None:
        self.database = database
        self._owners: Dict[str, str] = {}
        self._views: Dict[str, ViewDefinition] = {}
        self._grants: List[Grant] = []
        self._clock = itertools.count(1)
        # Base relations are owned by the DBA pseudo-user.
        for name in database.schema.names():
            self._owners[name] = "_dba"

    # ------------------------------------------------------------------
    # object management
    # ------------------------------------------------------------------

    def create_view(self, owner: str,
                    view: Union[ViewDefinition, str]) -> None:
        """Register a named view owned by ``owner``.

        System R would require the owner to hold privileges on the
        underlying relations; for the comparison harness the owner is
        assumed entitled to define the view (the DBA scenario).
        """
        if isinstance(view, str):
            parsed = parse_statement(view)
            assert isinstance(parsed, ViewDefinition)
            view = parsed
        if view.name in self._owners:
            raise GrantError(f"object {view.name!r} already exists")
        normalize_view(view, self.database.schema)  # validate
        self._views[view.name] = view
        self._owners[view.name] = owner

    def is_view(self, name: str) -> bool:
        return name in self._views

    # ------------------------------------------------------------------
    # GRANT / REVOKE
    # ------------------------------------------------------------------

    def _holds(self, user: str, object_name: str,
               need_option: bool = False,
               grants: Optional[List[Grant]] = None,
               before: Optional[int] = None) -> bool:
        if self._owners.get(object_name) == user:
            return True
        for grant in (grants if grants is not None else self._grants):
            if before is not None and grant.timestamp >= before:
                continue
            if (grant.grantee == user and grant.object_name == object_name
                    and (grant.grant_option or not need_option)):
                return True
        return False

    def grant(self, grantor: str, grantee: str, object_name: str,
              grant_option: bool = False) -> None:
        """``GRANT SELECT ON object TO grantee [WITH GRANT OPTION]``.

        Raises:
            GrantError: when the grantor lacks the grant option.
            UnknownViewError: for a nonexistent object.
        """
        if object_name not in self._owners:
            raise UnknownViewError(object_name)
        if not self._holds(grantor, object_name, need_option=True):
            raise GrantError(
                f"{grantor} may not grant on {object_name!r}"
            )
        self._grants.append(Grant(
            grantor, grantee, object_name, grant_option, next(self._clock)
        ))

    def revoke(self, grantor: str, grantee: str, object_name: str) -> None:
        """Revoke ``grantor``'s grants to ``grantee``, recursively.

        Implements the Griffiths-Wade semantics: after removing the
        direct grants, every remaining grant must be supportable by a
        chain of earlier grants not passing through the revoked edge;
        unsupported grants are deleted transitively.
        """
        remaining = [
            g for g in self._grants
            if not (g.grantor == grantor and g.grantee == grantee
                    and g.object_name == object_name)
        ]
        # Iteratively delete grants whose grantor no longer held the
        # grant option at the time of granting.
        changed = True
        while changed:
            changed = False
            supported: List[Grant] = []
            for grant in remaining:
                if self._holds(
                    grant.grantor, grant.object_name, need_option=True,
                    grants=[g for g in remaining if g is not grant],
                    before=grant.timestamp,
                ):
                    supported.append(grant)
                else:
                    changed = True
            remaining = supported
        self._grants = remaining

    def readable_objects(self, user: str) -> Set[str]:
        """Objects ``user`` may read (owned or granted)."""
        owned = {o for o, owner in self._owners.items() if owner == user}
        granted = {g.object_name for g in self._grants if g.grantee == user}
        return owned | granted

    # ------------------------------------------------------------------
    # authorization
    # ------------------------------------------------------------------

    def authorize_query(self, user: str,
                        query: Union[Query, str]) -> Decision:
        """A query addressed at base relations: all-or-nothing.

        Authorized iff the user may read *every* referenced relation;
        a granted view over those relations does not help — that is the
        limitation the paper's model removes.
        """
        if isinstance(query, str):
            parsed = parse_statement(query)
            assert isinstance(parsed, Query)
            query = parsed
        plan = compile_query(query, self.database.schema)
        readable = self.readable_objects(user)
        missing = sorted(plan.relation_names() - readable)
        if missing:
            return Decision(
                Outcome.DENIED, (), (),
                note=f"no READ permission on {', '.join(missing)}",
            )
        answer = evaluate_optimized(plan, self.database)
        return Decision(
            Outcome.FULL, answer.labels(), answer.rows,
            note="all referenced relations readable",
        )

    def authorize_view_query(self, user: str, view_name: str) -> Decision:
        """A query addressed at a named view: the access-window path."""
        if view_name not in self._views:
            raise UnknownViewError(view_name)
        if view_name not in self.readable_objects(user):
            return Decision(
                Outcome.DENIED, (), (),
                note=f"no READ permission on view {view_name}",
            )
        view = self._views[view_name]
        normalized = normalize_view(view, self.database.schema)
        plan = normalized.materialization_psj(self.database.schema)
        answer = evaluate_optimized(plan, self.database)
        return Decision(
            Outcome.FULL, answer.labels(), answer.rows,
            note=f"via access window {view_name}",
        )

    def grants_snapshot(self) -> Tuple[Grant, ...]:
        """The current grant graph (for tests and display)."""
        return tuple(self._grants)
