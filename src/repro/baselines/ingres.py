"""The INGRES query-modification baseline (Stonebraker & Wong, 1974).

Section 1's second comparator.  Its characteristics, as the paper
describes them:

* "permissions are granted only for actual relations or views of
  single relations" — :meth:`IngresModel.permit` accepts a relation,
  a set of permitted attributes, and a single-relation qualification;
* the algorithm "searches for permitted views whose attributes contain
  the attributes addressed by the query, and the qualifications placed
  on these attributes in the views are then conjoined with the
  qualification specified in the query";
* "the algorithm does not handle rows and columns symmetrically": if no
  permitted view covers every attribute of a relation the query
  addresses, the whole query is denied rather than reduced — the
  asymmetry Example E7 reproduces.

When several views of the same relation qualify, their qualifications
are combined disjunctively (any of them admits the tuple), matching the
effect of multiple RANGE restrictions in the original proposal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.algebra.database import Database
from repro.algebra.expression import (
    AtomicCondition,
    Col,
    Const,
    Operand,
    PSJQuery,
)
from repro.algebra.optimize import evaluate_optimized
from repro.algebra.relation import Row
from repro.algebra.schema import RelationSchema
from repro.baselines.interface import Decision, Outcome
from repro.calculus.ast import AttrRef, Condition, ConstTerm, Query, Term
from repro.calculus.to_algebra import compile_query
from repro.errors import SchemaError
from repro.lang.parser import parse_statement


@dataclass(frozen=True)
class IngresPermission:
    """One permitted single-relation view.

    Attributes:
        relation: the base relation.
        attributes: attribute names the user may address.
        conditions: single-relation qualification (conditions whose
            attribute references all target ``relation``).
    """

    relation: str
    attributes: Tuple[str, ...]
    conditions: Tuple[Condition, ...] = ()


class IngresModel:
    """Query modification over single-relation permissions."""

    name = "INGRES"

    def __init__(self, database: Database) -> None:
        self.database = database
        self._permissions: Dict[str, List[IngresPermission]] = {}

    # ------------------------------------------------------------------
    # permissions
    # ------------------------------------------------------------------

    def permit(self, user: str, relation: str,
               attributes: Sequence[str],
               conditions: Sequence[Condition] = ()) -> None:
        """Grant ``user`` a single-relation view of ``relation``."""
        schema = self.database.schema.get(relation)
        for attribute in attributes:
            schema.index_of(attribute)  # validates
        for condition in conditions:
            for ref in condition.attr_refs():
                if ref.relation != relation:
                    raise SchemaError(
                        "INGRES permissions are restricted to views of "
                        f"single relations; condition {condition} "
                        f"references {ref.relation}"
                    )
                schema.index_of(ref.attribute)
        self._permissions.setdefault(user, []).append(IngresPermission(
            relation, tuple(attributes), tuple(conditions)
        ))

    def permissions_of(self, user: str) -> Tuple[IngresPermission, ...]:
        return tuple(self._permissions.get(user, ()))

    # ------------------------------------------------------------------
    # query modification
    # ------------------------------------------------------------------

    def authorize_query(self, user: str,
                        query: Union[Query, str]) -> Decision:
        """Authorize by query modification, or deny outright."""
        if isinstance(query, str):
            parsed = parse_statement(query)
            assert isinstance(parsed, Query)
            query = parsed
        schema = self.database.schema
        plan = compile_query(query, schema)

        # Attributes the query addresses, per relation (over all
        # occurrences — INGRES's RANGE variables behave alike).
        addressed: Dict[str, set] = {}
        for ref in query.attr_refs():
            addressed.setdefault(ref.relation, set()).add(ref.attribute)

        # For each relation, the permitted views covering the addressed
        # attributes.  None covering -> the whole query is denied.
        qualifying: Dict[str, List[IngresPermission]] = {}
        for relation, attributes in addressed.items():
            views = [
                p for p in self.permissions_of(user)
                if p.relation == relation
                and attributes <= set(p.attributes)
            ]
            if not views:
                return Decision(
                    Outcome.DENIED, (), (),
                    note=(
                        f"no permitted view of {relation} covers "
                        f"attributes {', '.join(sorted(attributes))}"
                    ),
                )
            qualifying[relation] = views

        raw = evaluate_optimized(plan, self.database)

        # Conjoin the (disjunctive) view qualifications with the query:
        # a product row is kept when, for every occurrence, some
        # qualifying view's conditions hold on that occurrence's values.
        # Evaluate the unprojected product with the query's conditions,
        # then test the view qualifications on the full rows.
        offsets = plan.offsets(schema)
        wide_plan = PSJQuery(
            plan.occurrences, plan.conditions,
            tuple(range(plan.total_width(schema))),
        )
        wide = evaluate_optimized(wide_plan, self.database)

        keep_rows: List[Row] = []
        for row in wide.rows:
            admitted = all(
                any(
                    self._conditions_hold(
                        p.conditions, occ.relation, row, offsets[occ_index]
                    )
                    for p in qualifying[occ.relation]
                )
                for occ_index, occ in enumerate(plan.occurrences)
            )
            if admitted:
                keep_rows.append(tuple(row[i] for i in plan.output))

        labels = raw.labels()
        seen = set()
        delivered = []
        for row in keep_rows:
            if row not in seen:
                seen.add(row)
                delivered.append(row)

        if set(delivered) != set(raw.rows):
            outcome = Outcome.PARTIAL
            note = "query modified by view qualifications"
        else:
            outcome = Outcome.FULL
            note = "query within permissions"
        return Decision(outcome, labels, tuple(delivered), note)

    def _conditions_hold(self, conditions: Sequence[Condition],
                         relation: str, row: Row, offset: int) -> bool:
        schema = self.database.schema.get(relation)
        for condition in conditions:
            atomic = _to_atomic(condition, schema, offset)
            if not atomic.evaluate(row):
                return False
        return True


def _to_atomic(condition: Condition, schema: RelationSchema,
               offset: int) -> AtomicCondition:
    def operand(term: Term) -> Operand:
        if isinstance(term, AttrRef):
            return Col(offset + schema.index_of(term.attribute))
        assert isinstance(term, ConstTerm)
        return Const(term.value)

    return AtomicCondition(
        operand(condition.lhs), condition.op, operand(condition.rhs)
    )
