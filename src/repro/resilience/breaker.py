"""A per-(tenant, backend) circuit breaker.

Retries handle *transient* faults; a breaker handles *persistent* ones.
When a backend keeps failing, retrying every request multiplies the
damage — each request pays the full retry schedule before failing over,
and a tenant with a dead backend degrades every worker that touches
it.  The breaker cuts that short with the classic three-state machine:

* **closed** — requests flow to the backend; consecutive failures are
  counted, and at ``failure_threshold`` the breaker *opens*;
* **open** — requests skip the backend entirely (the caller fails over
  to the oracle immediately) until ``recovery_ms`` of clock time has
  passed;
* **half-open** — after the cool-down, exactly one probe request is
  allowed through: success closes the breaker, failure re-opens it
  (and restarts the cool-down).

The clock is injected — the breaker never reads wall time on its own,
so tests (and the chaos harness) drive state transitions with a fake
clock and soundlint SL004 keeps this module free of clock and
randomness imports.  All methods are thread-safe: one breaker is
shared by every serving worker that drains its tenant.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

#: State names, as reported by :attr:`CircuitBreaker.state`.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """When to open, and how long to stay open.

    Attributes:
        failure_threshold: consecutive failures that open the breaker.
        recovery_ms: cool-down before a half-open probe is allowed.
    """

    failure_threshold: int = 5
    recovery_ms: float = 1000.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"need a positive threshold: {self.failure_threshold}"
            )
        if self.recovery_ms < 0:
            raise ValueError(
                f"recovery cannot be negative: {self.recovery_ms}"
            )


class CircuitBreaker:
    """Thread-safe closed → open → half-open failure isolation."""

    def __init__(self, policy: BreakerPolicy,
                 clock: Callable[[], float]) -> None:
        self.policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        #: Lifetime transition counters (telemetry).
        self._opened = 0
        self._reclosed = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` right now.

        Reading the state *does not* advance it: an open breaker whose
        cool-down has passed still reports open until a request calls
        :meth:`allow` and claims the probe.
        """
        with self._lock:
            return self._state

    @property
    def opened_count(self) -> int:
        """How many times this breaker has opened (telemetry)."""
        with self._lock:
            return self._opened

    def allow(self) -> bool:
        """May the next request touch the backend?

        Returns True in the closed state, False while open, and — once
        the cool-down has elapsed — True for exactly one caller, which
        thereby claims the half-open probe (everyone else keeps
        failing over until the probe resolves).
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                elapsed_ms = (self._clock() - self._opened_at) * 1000.0
                if elapsed_ms < self.policy.recovery_ms:
                    return False
                self._state = HALF_OPEN
                self._probing = True
                return True
            # Half-open: the probe is in flight; hands off.
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        """A backend call succeeded: reset, closing if half-open."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._reclosed += 1
            self._state = CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        """A backend call failed: count, open at the threshold, and
        re-open (with a fresh cool-down) on a failed probe."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._trip_locked()
                return
            self._failures += 1
            if self._state == CLOSED \
                    and self._failures >= self.policy.failure_threshold:
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = OPEN
        self._failures = 0
        self._probing = False
        self._opened_at = self._clock()
        self._opened += 1
