"""Deterministic retry policy for transient backend failures.

A transient backend error (a driver hiccup, a momentarily locked
store) is usually gone by the next attempt, so the cheapest form of
fault tolerance is simply trying again — *bounded* times, with
*deterministic* backoff.  :class:`RetryPolicy` is pure data plus pure
functions: the delay for attempt ``k`` is an exponential of ``k`` with
a jitter term computed by integer hashing of ``(seed, attempt)``, so
two processes configured identically retry identically.  There is no
clock and no ``random`` in this module at all — wall time enters only
where a caller chooses to actually sleep, and soundlint SL004 patrols
this module to keep it that way.

The retry loop itself lives in :mod:`repro.resilience.failover`, next
to the circuit breaker and the oracle failover it composes with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: Knuth's multiplicative-hash constant; the jitter "PRNG" is one
#: multiply-and-mask of the (seed, attempt) pair — deterministic,
#: seedable, and free of any ``random`` import.
_HASH_MULTIPLIER = 2654435761
_HASH_MASK = 0xFFFFFFFF


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait between tries.

    Attributes:
        attempts: total tries at the primary backend (>= 1; 1 means
            no retry at all).
        base_delay_ms: backoff before the second try; doubles each
            further try.  0 disables sleeping entirely (the retries
            are then immediate), which is the deterministic default —
            tests and the chaos harness never wait on wall time.
        max_delay_ms: ceiling on any single backoff.
        jitter_ms: width of the deterministic jitter added to each
            backoff (0 disables jitter).
        seed: jitter seed; identical seeds replay identical delays.
    """

    attempts: int = 2
    base_delay_ms: float = 0.0
    max_delay_ms: float = 1000.0
    jitter_ms: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"need at least one attempt: {self.attempts}")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0 \
                or self.jitter_ms < 0:
            raise ValueError("retry delays cannot be negative")

    def jitter_fraction(self, attempt: int) -> float:
        """A deterministic pseudo-uniform value in [0, 1) for
        ``attempt`` — one multiplicative hash of ``(seed, attempt)``."""
        mixed = (self.seed * _HASH_MULTIPLIER + attempt * 40503) \
            & _HASH_MASK
        mixed = (mixed * _HASH_MULTIPLIER) & _HASH_MASK
        return mixed / float(_HASH_MASK + 1)

    def delay_ms(self, attempt: int) -> float:
        """Backoff after try number ``attempt`` (1-based) failed."""
        if attempt < 1:
            raise ValueError(f"attempts are 1-based: {attempt}")
        if self.base_delay_ms <= 0:
            return 0.0
        delay = self.base_delay_ms * (2 ** (attempt - 1))
        delay += self.jitter_ms * self.jitter_fraction(attempt)
        return min(delay, self.max_delay_ms)

    def delays_ms(self) -> Iterator[float]:
        """The full backoff schedule (one delay per retry)."""
        for attempt in range(1, self.attempts):
            yield self.delay_ms(attempt)
