"""Fault tolerance for execution backends: retry, breaker, failover.

The package composes three layers, each usable alone:

* :mod:`repro.resilience.retry` — a deterministic, seedable
  :class:`~repro.resilience.retry.RetryPolicy` (pure data, no clock);
* :mod:`repro.resilience.breaker` — a thread-safe per-(tenant,
  backend) :class:`~repro.resilience.breaker.CircuitBreaker` with an
  injected clock;
* :mod:`repro.resilience.failover` — the
  :class:`~repro.resilience.failover.ResilientExecutor` that wraps a
  backend with both and, when they are exhausted, soundly re-evaluates
  on the registered Python oracle.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.resilience.failover import (
    ExecutionOutcome,
    MaskedOutcome,
    ResilientExecutor,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BreakerPolicy",
    "CircuitBreaker",
    "RetryPolicy",
    "ResilientExecutor",
    "ExecutionOutcome",
    "MaskedOutcome",
]
