"""Sound oracle failover: backend failures never surface to callers.

The paper's masking semantics make the pure-Python evaluator a *sound
substitute* for any execution backend: the mask derivation is
backend-independent, so where the answer half runs is an operational
choice, not a semantic one (the parity discipline of soundlint SL008
is exactly the proof obligation).  That licence is what this module
cashes in: when a backend call fails past its retry budget — or its
circuit breaker is open — the :class:`ResilientExecutor` transparently
re-evaluates the plan on the registered oracle
(:class:`~repro.backends.python.PythonBackend`) instead of failing the
request closed.  The *authorization decision is unchanged*; only the
engine that computed the answer moved, and the move is recorded on
:class:`~repro.core.answer.AuthorizedAnswer.backend_used` /
``failover_reason`` and in the audit trail.

Fault sites wired here (see :mod:`repro.testing.faults`):

* ``backend.execute`` — every try at the primary backend;
* ``retry.sleep`` — before each backoff sleep;
* ``breaker.probe`` — a half-open probe attempt;
* ``failover.execute`` — the oracle re-evaluation itself (a fault
  here exhausts the safety net and the engine fails closed).

Soundlint SL009 pins this executor to its oracle and to the
differential suite ``tests/test_failover.py``, the same discipline
SL005/SL008 apply to the other fast paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import chain
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Tuple

from repro.algebra.columnar import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.errors import BackendError, BackendUnavailableError, \
    FaultInjected
from repro.resilience.breaker import BreakerPolicy, CircuitBreaker, \
    HALF_OPEN
from repro.resilience.retry import RetryPolicy
from repro.testing.faults import maybe_fault

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Deferred: repro.backends.base imports repro.core, whose engine
    # imports this package; runtime code only needs the protocol's
    # duck type, never the classes themselves.
    from repro.algebra.expression import PSJQuery
    from repro.algebra.relation import Relation, Row
    from repro.backends.base import DeliveredRows, ExecutionBackend
    from repro.core.compiled_mask import CompiledMask
    from repro.core.mask import Mask

#: Exception types a retry can plausibly outwait.  Anything else —
#: validation errors, programming bugs — propagates immediately to the
#: engine's fail-closed boundary; retrying would only replay it.
_RETRYABLE = (BackendError, FaultInjected)


@dataclass(frozen=True)
class ExecutionOutcome:
    """One evaluated plan, plus where and how it actually ran."""

    answer: Relation
    #: Factory name of the backend that produced the answer.
    backend_used: str
    #: Why evaluation moved off the primary backend (None = it didn't).
    failover_reason: Optional[str]
    #: Tries at the primary backend (0 when skipped outright).
    attempts: int


@dataclass(frozen=True)
class MaskedOutcome:
    """The ``execute_masked`` analogue of :class:`ExecutionOutcome`."""

    delivered: DeliveredRows
    backend_used: str
    failover_reason: Optional[str]
    attempts: int


@dataclass(frozen=True)
class StreamOutcome:
    """The ``execute_stream`` analogue of :class:`ExecutionOutcome`.

    ``chunks`` is already *primed*: the executor opened the stream and
    prefetched its first chunk inside the retry/breaker/failover loop,
    so establishment failures were absorbed there.  Failures after the
    first chunk raise out of the iterator itself — re-running the plan
    mid-delivery could duplicate or reorder already-yielded rows, so
    they belong to the consumer's fail-closed boundary
    (``AuthorizationEngine.authorize_stream`` ends the stream with the
    remainder withheld).
    """

    chunks: Iterator[Tuple[Row, ...]]
    backend_used: str
    failover_reason: Optional[str]
    attempts: int


class ResilientExecutor:
    """Retry, breaker, and oracle failover around one backend.

    One executor guards one engine's backend, and each tenant owns its
    engine — so the breaker is per ``(tenant, backend)`` and one
    tenant's flaky store never opens anyone else's breaker.

    When ``failover`` is False the safety net is off: retry exhaustion
    re-raises the last backend error, and an unavailable backend
    raises its typed :class:`~repro.errors.BackendUnavailableError` —
    the engine lets that type escape the fail-closed boundary, because
    a misconfigured data plane is an operator's bug, not a denial.
    """

    def __init__(
        self,
        primary: ExecutionBackend,
        oracle: ExecutionBackend,
        retry: RetryPolicy = RetryPolicy(),
        breaker_policy: BreakerPolicy = BreakerPolicy(),
        failover: bool = True,
        standing_reason: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.primary = primary
        self.oracle = oracle
        self.retry = retry
        self.failover = failover
        #: Set when the *configured* backend could not even be
        #: constructed (see ``AuthorizationEngine``): the executor
        #: then runs permanently on the oracle and every outcome
        #: carries this reason.
        self.standing_reason = standing_reason
        self.breaker = CircuitBreaker(breaker_policy, clock)
        self._sleep = sleep

    # ------------------------------------------------------------------
    # the two protocol calls, wrapped
    # ------------------------------------------------------------------

    def execute(self, plan: PSJQuery) -> ExecutionOutcome:
        """Evaluate ``plan``, failing over to the oracle if needed."""
        answer, used, reason, attempts = self._run(
            lambda backend: backend.execute(plan)
        )
        return ExecutionOutcome(answer, used, reason, attempts)

    def execute_masked(
        self,
        plan: PSJQuery,
        mask: Mask,
        compiled: Optional[CompiledMask] = None,
        drop_fully_masked: bool = False,
    ) -> MaskedOutcome:
        """Evaluate-and-mask ``plan``, failing over if needed."""
        delivered, used, reason, attempts = self._run(
            lambda backend: backend.execute_masked(
                plan, mask, compiled=compiled,
                drop_fully_masked=drop_fully_masked,
            )
        )
        return MaskedOutcome(delivered, used, reason, attempts)

    def execute_stream(
        self,
        plan: PSJQuery,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> StreamOutcome:
        """Open a chunked answer stream, failing over if needed.

        The whole retry/breaker/failover ladder applies to stream
        *establishment* — opening the backend's iterator and fetching
        the first chunk (see :func:`_primed_stream`).  Backends
        without a native ``execute_stream`` are materialized and
        chunked, so SQL backends and the oracle fallback both work;
        only the memory bound weakens, never the answer.
        """
        chunks, used, reason, attempts = self._run(
            lambda backend: _primed_stream(backend, plan, chunk_size)
        )
        return StreamOutcome(chunks, used, reason, attempts)

    # ------------------------------------------------------------------
    # the retry / breaker / failover loop
    # ------------------------------------------------------------------

    def _run(self, call: Callable[[ExecutionBackend], object]
             ) -> Tuple[object, str, Optional[str], int]:
        if self.standing_reason is not None:
            # The configured backend never existed; the oracle *is*
            # the primary here, with the construction failure on
            # record.  No breaker bookkeeping: there is nothing to
            # probe back to health.
            return (
                self._oracle_call(call), self.oracle.name,
                self.standing_reason, 0,
            )
        if self.primary is self.oracle:
            # The engine already runs on the oracle: retry still
            # applies (a fault may be transient), but failover would
            # re-run the identical code — skip the theatre and let
            # exhaustion propagate to the fail-closed boundary.
            return self._run_primary_only(call)
        if not self.breaker.allow():
            return self._failover(call, "circuit breaker open")
        last: Optional[Exception] = None
        attempts = 0
        for attempt in range(1, self.retry.attempts + 1):
            if attempt > 1 and not self.breaker.allow():
                return self._failover(
                    call, "circuit breaker opened mid-retry",
                    attempts=attempts,
                )
            probing = self.breaker.state == HALF_OPEN
            attempts = attempt
            try:
                if probing:
                    maybe_fault("breaker.probe")
                maybe_fault("backend.execute")
                result = call(self.primary)
            except BackendUnavailableError as error:
                # The driver vanished between construction and now;
                # retrying cannot re-install it.
                self.breaker.record_failure()
                if not self.failover:
                    raise
                return self._failover(call, str(error),
                                      attempts=attempts)
            except _RETRYABLE as error:
                self.breaker.record_failure()
                last = error
                if attempt < self.retry.attempts:
                    self._backoff(attempt)
                continue
            self.breaker.record_success()
            return result, self.primary.name, None, attempts
        reason = (
            f"retry exhausted after {attempts} attempt(s): "
            f"{type(last).__name__}: {last}"
        )
        if not self.failover:
            assert last is not None
            raise last
        return self._failover(call, reason, attempts=attempts)

    def _run_primary_only(
        self, call: Callable[[ExecutionBackend], object]
    ) -> Tuple[object, str, Optional[str], int]:
        """The degenerate loop when the primary *is* the oracle."""
        last: Optional[Exception] = None
        for attempt in range(1, self.retry.attempts + 1):
            try:
                maybe_fault("backend.execute")
                result = call(self.primary)
            except _RETRYABLE as error:
                last = error
                if attempt < self.retry.attempts:
                    self._backoff(attempt)
                continue
            return result, self.primary.name, None, attempt
        assert last is not None
        raise last

    def _backoff(self, attempt: int) -> None:
        """Sleep out the (deterministic) backoff for ``attempt``.

        A fault injected at ``retry.sleep`` propagates as a retryable
        failure of the *next* attempt would — it is part of the retry
        machinery, so the chaos harness can break the machinery
        itself, not just the backend under it.
        """
        maybe_fault("retry.sleep")
        delay_ms = self.retry.delay_ms(attempt)
        if delay_ms > 0:
            self._sleep(delay_ms / 1000.0)

    def _failover(
        self,
        call: Callable[[ExecutionBackend], object],
        reason: str,
        attempts: int = 0,
    ) -> Tuple[object, str, Optional[str], int]:
        """Re-run ``call`` on the oracle; sound by mask independence."""
        return (
            self._oracle_call(call), self.oracle.name, reason, attempts,
        )

    def _oracle_call(
        self, call: Callable[[ExecutionBackend], object]
    ) -> object:
        # A failure here (including an injected ``failover.execute``
        # fault) has exhausted the safety net: it propagates to the
        # engine's fail-closed boundary and the request is denied.
        maybe_fault("failover.execute")
        return call(self.oracle)


def _primed_stream(
    backend: ExecutionBackend, plan: PSJQuery, chunk_size: int,
) -> Iterator[Tuple[Row, ...]]:
    """Open ``backend``'s chunk stream and prefetch the first chunk.

    Streaming is an optional backend capability (see
    :mod:`repro.backends.base`): a backend without ``execute_stream``
    materializes its answer and is chunked here, so every backend
    participates in streamed deliveries.  The first-chunk prefetch
    pulls establishment failures — plan validation, the build sides of
    the first hash join, an embedded-engine error — into the caller's
    retry window; once a chunk exists the stream counts as
    established, and later failures raise out of the returned iterator
    to the consumer.
    """
    native = getattr(backend, "execute_stream", None)
    if native is None:
        chunks: Iterator[Tuple[Row, ...]] = iter_chunks(
            backend.execute(plan).rows, chunk_size,
        )
    else:
        chunks = iter(native(plan, chunk_size=chunk_size))
    try:
        first = next(chunks)
    except StopIteration:
        return iter(())
    return chain((first,), chunks)
