"""Seeded random workloads.

The paper promises experimentation with a front-end prototype but
reports no workload; this generator provides the synthetic equivalent:
random multi-relation schemas, instances over small value pools (so
joins actually join), random conjunctive views in the paper's surface
form, random conjunctive queries overlapping those views, and random
grants.  Everything is driven by a single :class:`random.Random` seed,
so tests, property checks and benchmarks are reproducible.

Instance mutation helpers support the non-interference oracle: a
mutated instance either agrees with the original on the user's views
(the check must then find identical deliveries) or differs (vacuous).
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import ExecutionBackend

from repro.algebra.columnar import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.algebra.database import Database, build_database
from repro.algebra.relation import Row
from repro.algebra.schema import DatabaseSchema, RelationSchema, make_schema
from repro.algebra.types import INTEGER, STRING
from repro.calculus.ast import (
    AttrRef,
    Condition,
    ConstTerm,
    Query,
    ViewDefinition,
)
from repro.errors import SafetyError
from repro.meta.catalog import PermissionCatalog
from repro.predicates.comparators import Comparator


@dataclass
class WorkloadSpec:
    """Shape parameters of a generated workload."""

    relations: int = 3
    min_arity: int = 2
    max_arity: int = 4
    rows_per_relation: int = 12
    string_pool: int = 6
    int_range: int = 20
    views: int = 4
    users: int = 2
    max_view_relations: int = 2
    comparison_probability: float = 0.6
    include_selection_attrs: float = 0.8
    seed: int = 0


@dataclass
class Workload:
    """A generated database, catalog, and query stream."""

    spec: WorkloadSpec
    database: Database
    catalog: PermissionCatalog
    users: Tuple[str, ...]
    views: Tuple[ViewDefinition, ...] = ()
    queries: List[Query] = field(default_factory=list)


class WorkloadGenerator:
    """Deterministic generator of schemas, instances, views, queries."""

    _ORDER_OPS = (Comparator.GE, Comparator.GT, Comparator.LE, Comparator.LT)

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # schema and instance
    # ------------------------------------------------------------------

    def schema(self, spec: WorkloadSpec) -> DatabaseSchema:
        """A random database scheme with keyed relations.

        Attribute domains alternate so every relation has both string
        and integer attributes; the first attribute is the key.
        """
        db_schema = DatabaseSchema()
        for r in range(spec.relations):
            arity = self.rng.randint(spec.min_arity, spec.max_arity)
            attributes = []
            for a in range(arity):
                name = f"{string.ascii_uppercase[a]}{r}"
                domain = STRING if a % 2 == 0 else INTEGER
                attributes.append((name, domain))
            db_schema.add(make_schema(
                f"R{r}", attributes, key=[attributes[0][0]]
            ))
        return db_schema

    def instance(self, spec: WorkloadSpec,
                 db_schema: DatabaseSchema) -> Database:
        """A random instance over small value pools."""
        instances: Dict[str, List[Tuple]] = {}
        for rel in db_schema:
            rows = []
            for _ in range(spec.rows_per_relation):
                row = tuple(
                    self._random_value(spec, attribute.domain.name)
                    for attribute in rel.attributes
                )
                rows.append(row)
            instances[rel.name] = rows
        return build_database(list(db_schema), instances)

    def _random_value(self, spec: WorkloadSpec,
                      domain_name: str) -> Union[str, int]:
        if domain_name == "string":
            return f"s{self.rng.randrange(spec.string_pool)}"
        return self.rng.randrange(spec.int_range)

    def iter_rows(self, spec: WorkloadSpec, relation: RelationSchema,
                  count: int) -> Iterator[Tuple[Union[str, int], ...]]:
        """Lazily generate ``count`` random rows for ``relation``.

        A generator rather than a list so that large-instance builders
        (:meth:`scaled_instance`, the backend benchmarks) never hold a
        second copy of a 10^6-row relation: rows stream straight into
        the consumer.  Duplicates are possible — set semantics dedupe
        them downstream, so the materialized relation may be smaller
        than ``count``.
        """
        for _ in range(count):
            yield tuple(
                self._random_value(spec, attribute.domain.name)
                for attribute in relation.attributes
            )

    def iter_row_chunks(
        self,
        spec: WorkloadSpec,
        relation: RelationSchema,
        count: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> Iterator[Tuple[Row, ...]]:
        """Generate ``count`` random rows as bounded-size chunks.

        The chunk-streamed sibling of :meth:`iter_rows`, for drivers
        that feed 10^7-row instances straight into a chunked consumer
        (the scale benchmarks, ``iter_apply_chunked``): only one chunk
        of rows exists at a time.  Row values are identical to
        ``iter_rows`` with the same generator state — this is a
        regrouping, not a different sampler.
        """
        return iter_chunks(
            self.iter_rows(spec, relation, count), chunk_size
        )

    def scaled_instance(
        self,
        spec: WorkloadSpec,
        db_schema: DatabaseSchema,
        rows_per_relation: Union[int, Mapping[str, int]],
        backend: Optional["ExecutionBackend"] = None,
    ) -> Database:
        """A random instance with per-relation row counts.

        Unlike :meth:`instance` (which reads ``spec.rows_per_relation``
        uniformly), this scales each relation independently — an int
        applies one count to every relation, a mapping sets counts per
        relation name (missing names fall back to the spec) — and
        streams rows from :meth:`iter_rows` instead of materializing
        intermediate lists.  When ``backend`` is given, the finished
        database is bulk-loaded into it before returning (the SQL
        backends chunk their inserts, so this is how 10^6-row stores
        are populated without a giant parameter list).
        """
        instances: Dict[str, Iterable[Row]] = {}
        for rel in db_schema:
            if isinstance(rows_per_relation, int):
                count = rows_per_relation
            else:
                count = rows_per_relation.get(
                    rel.name, spec.rows_per_relation
                )
            instances[rel.name] = self.iter_rows(spec, rel, count)
        database = build_database(list(db_schema), instances)
        if backend is not None:
            backend.load(database)
        return database

    # ------------------------------------------------------------------
    # views and queries
    # ------------------------------------------------------------------

    def view(self, spec: WorkloadSpec, db_schema: DatabaseSchema,
             name: str, attempts: int = 20) -> ViewDefinition:
        """A random safe conjunctive view."""
        for _ in range(attempts):
            try:
                candidate = self._expression(spec, db_schema, name)
                from repro.calculus.normalize import normalize_view

                normalize_view(candidate, db_schema)
                return candidate
            except SafetyError:
                continue
        # Fall back to a trivially safe full view of one relation.
        relation = self.rng.choice(list(db_schema))
        target = tuple(
            AttrRef(relation.name, a.name) for a in relation.attributes
        )
        return ViewDefinition(name, target, ())

    def query(self, spec: WorkloadSpec, db_schema: DatabaseSchema,
              attempts: int = 20) -> Query:
        """A random safe conjunctive query."""
        view = self.view(spec, db_schema, "_q", attempts)
        return Query(view.target, view.conditions)

    def _expression(self, spec: WorkloadSpec, db_schema: DatabaseSchema,
                    name: str) -> ViewDefinition:
        relations = list(db_schema)
        count = self.rng.randint(1, spec.max_view_relations)
        chosen: List[RelationSchema] = [
            self.rng.choice(relations) for _ in range(count)
        ]

        # Assign occurrence indices per relation.
        occ_counter: Dict[str, int] = {}
        occurrences: List[Tuple[RelationSchema, int]] = []
        for rel in chosen:
            occ_counter[rel.name] = occ_counter.get(rel.name, 0) + 1
            occurrences.append((rel, occ_counter[rel.name]))

        conditions: List[Condition] = []

        # Chain joins between consecutive occurrences on compatible
        # domains, so multi-relation views are connected.
        for (left, left_occ), (right, right_occ) in zip(
            occurrences, occurrences[1:]
        ):
            pairs = [
                (la, ra)
                for la in left.attributes
                for ra in right.attributes
                if la.domain.comparable_with(ra.domain)
            ]
            if not pairs:
                continue
            la, ra = self.rng.choice(pairs)
            conditions.append(Condition(
                AttrRef(left.name, la.name, left_occ),
                Comparator.EQ,
                AttrRef(right.name, ra.name, right_occ),
            ))

        # Sprinkle comparisons.
        selection_refs: List[AttrRef] = []
        for rel, occ in occurrences:
            if self.rng.random() > spec.comparison_probability:
                continue
            attribute = self.rng.choice(rel.attributes)
            ref = AttrRef(rel.name, attribute.name, occ)
            if attribute.domain is INTEGER:
                op = self.rng.choice(self._ORDER_OPS)
                bound = self.rng.randrange(spec.int_range)
                conditions.append(Condition(ref, op, ConstTerm(bound)))
            else:
                value = f"s{self.rng.randrange(spec.string_pool)}"
                op = self.rng.choice((Comparator.EQ, Comparator.NE))
                conditions.append(Condition(ref, op, ConstTerm(value)))
            selection_refs.append(ref)

        # Target list: a nonempty random subset per occurrence,
        # preferentially including the selection attributes (the
        # paper's advice) and the key (helps self-joins).
        target: List[AttrRef] = []
        for rel, occ in occurrences:
            names = [a.name for a in rel.attributes]
            take = self.rng.randint(1, len(names))
            picked = set(self.rng.sample(names, take))
            if self.rng.random() < spec.include_selection_attrs:
                picked.update(
                    r.attribute for r in selection_refs
                    if r.relation == rel.name and r.occurrence == occ
                )
                for condition in conditions:
                    for r in condition.attr_refs():
                        if r.relation == rel.name and r.occurrence == occ:
                            picked.add(r.attribute)
                picked.add(rel.key[0])
            target.extend(
                AttrRef(rel.name, n, occ) for n in names if n in picked
            )
        if not target:
            rel, occ = occurrences[0]
            target.append(AttrRef(rel.name, rel.attributes[0].name, occ))

        return ViewDefinition(name, tuple(target), tuple(conditions))

    # ------------------------------------------------------------------
    # query streams
    # ------------------------------------------------------------------

    def zipf_query_stream(
        self,
        spec: WorkloadSpec,
        db_schema: DatabaseSchema,
        distinct: int = 8,
        length: int = 100,
        skew: float = 1.2,
    ) -> List[Query]:
        """A Zipf-skewed stream over a pool of ``distinct`` queries.

        Real query traffic is heavily repetitive: a few hot statements
        dominate.  The stream samples query *rank* r with probability
        proportional to ``1 / (r+1)**skew`` — ``skew=0`` is uniform,
        larger values concentrate the mass on the head.  This is the
        workload the derivation cache is built for; see
        ``benchmarks/bench_cache.py``.
        """
        pool = [self.query(spec, db_schema) for _ in range(distinct)]
        weights = [1.0 / (rank + 1) ** skew for rank in range(distinct)]
        return [
            pool[i] for i in self.rng.choices(
                range(distinct), weights=weights, k=length
            )
        ]

    # ------------------------------------------------------------------
    # full workloads
    # ------------------------------------------------------------------

    def workload(self, spec: Optional[WorkloadSpec] = None) -> Workload:
        """Generate a complete workload: database, views, grants."""
        spec = spec or WorkloadSpec()
        db_schema = self.schema(spec)
        database = self.instance(spec, db_schema)
        catalog = PermissionCatalog(db_schema)

        views: List[ViewDefinition] = []
        for v in range(spec.views):
            view = self.view(spec, db_schema, f"V{v}")
            catalog.define_view(view)
            views.append(view)

        users = tuple(f"user{u}" for u in range(spec.users))
        for user in users:
            granted = self.rng.sample(
                views, self.rng.randint(1, len(views))
            )
            for view in granted:
                catalog.permit(view.name, user)

        return Workload(
            spec=spec,
            database=database,
            catalog=catalog,
            users=users,
            views=tuple(views),
        )

    # ------------------------------------------------------------------
    # instance mutation (for the non-interference oracle)
    # ------------------------------------------------------------------

    def mutate(self, spec: WorkloadSpec, database: Database) -> Database:
        """A copy of ``database`` with one random row edit.

        The edit may change a cell, insert a row, or delete a row; the
        oracle decides afterwards whether the user's views noticed.
        """
        schemas = list(database.schema)
        copy = build_database(
            schemas,
            {name: list(rel.rows) for name, rel in database},
        )
        relation = self.rng.choice(schemas)
        # Construction-time access: this edits the *ground truth* the
        # non-interference oracle compares against, not data shown to a
        # user, so it must not be filtered through any mask.
        rows = list(copy.instance(relation.name).rows)  # soundlint: disable=SL006 -- oracle ground truth, not user-visible data
        action = self.rng.choice(("edit", "insert", "delete"))
        if action == "edit" and rows:
            index = self.rng.randrange(len(rows))
            row = list(rows[index])
            column = self.rng.randrange(len(row))
            row[column] = self._random_value(
                spec, relation.attributes[column].domain.name
            )
            rows[index] = tuple(row)
        elif action == "delete" and rows:
            rows.pop(self.rng.randrange(len(rows)))
        else:
            rows.append(tuple(
                self._random_value(spec, a.domain.name)
                for a in relation.attributes
            ))
        copy.load(relation.name, rows)
        return copy
