"""S9 — workloads: the paper database, random generators, scenarios."""

from repro.workloads.generator import (
    Workload,
    WorkloadGenerator,
    WorkloadSpec,
)
from repro.workloads.paperdb import (
    EXAMPLE_1_QUERY,
    EXAMPLE_2_QUERY,
    EXAMPLE_3_QUERY,
    GRANTS,
    VIEW_STATEMENTS,
    build_paper_catalog,
    build_paper_database,
    build_paper_engine,
)
from repro.workloads.scenarios import (
    Scenario,
    corporate_scenario,
    hospital_scenario,
)
from repro.workloads.traffic import (
    TrafficOp,
    TrafficScript,
    TrafficSpec,
    build_traffic,
    drive_server,
    replay_serial,
)

__all__ = [
    "EXAMPLE_1_QUERY",
    "EXAMPLE_2_QUERY",
    "EXAMPLE_3_QUERY",
    "GRANTS",
    "Scenario",
    "TrafficOp",
    "TrafficScript",
    "TrafficSpec",
    "VIEW_STATEMENTS",
    "Workload",
    "WorkloadGenerator",
    "WorkloadSpec",
    "build_paper_catalog",
    "build_paper_database",
    "build_paper_engine",
    "build_traffic",
    "corporate_scenario",
    "drive_server",
    "hospital_scenario",
    "replay_serial",
]
