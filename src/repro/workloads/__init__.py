"""S9 — workloads: the paper database, random generators, scenarios."""

from repro.workloads.generator import (
    Workload,
    WorkloadGenerator,
    WorkloadSpec,
)
from repro.workloads.paperdb import (
    EXAMPLE_1_QUERY,
    EXAMPLE_2_QUERY,
    EXAMPLE_3_QUERY,
    GRANTS,
    VIEW_STATEMENTS,
    build_paper_catalog,
    build_paper_database,
    build_paper_engine,
)
from repro.workloads.scenarios import (
    Scenario,
    corporate_scenario,
    hospital_scenario,
)

__all__ = [
    "EXAMPLE_1_QUERY",
    "EXAMPLE_2_QUERY",
    "EXAMPLE_3_QUERY",
    "GRANTS",
    "Scenario",
    "VIEW_STATEMENTS",
    "Workload",
    "WorkloadGenerator",
    "WorkloadSpec",
    "build_paper_catalog",
    "build_paper_database",
    "build_paper_engine",
    "corporate_scenario",
    "hospital_scenario",
]
