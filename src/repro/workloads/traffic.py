"""Closed-loop multi-tenant traffic for the serving layer.

The serving benchmark and the concurrency differential suite both need
the same thing: realistic concurrent traffic whose *correct* outcome is
still computable.  This module provides it in three pieces:

**Deterministic scripts.**  :func:`build_traffic` expands a
:class:`TrafficSpec` into per-client op sequences — Zipf-skewed users
issuing Zipf-skewed queries, optionally interleaved with permit/revoke
churn — using a single seeded ``random.Random``.  Generation is fully
separated from execution, so the same spec always yields the same
script no matter how threads interleave later.

**A parity oracle by construction.**  Each simulated client owns a
*disjoint* slice of the user population, and its churn ops only ever
touch its own users' grants.  View definitions never change.  A
request's answer therefore depends only on the database (immutable)
and the issuing user's grant state, which evolves exactly along the
owning client's op sequence — so a client's answers under *any*
concurrent interleaving equal its answers under a serial replay of
just that client's ops against a fresh stack.
:func:`replay_serial` computes that oracle with a fresh
single-threaded engine per client; ``tests/test_serving.py`` asserts
byte-identical deliveries against :func:`drive_server`.

**Closed-loop execution.**  :func:`drive_server` runs one thread per
client, each waiting for its answer before issuing the next op — the
load model under which backlog, batching, and admission control are
meaningful.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.calculus.ast import Query
from repro.core.answer import AuthorizedAnswer
from repro.core.engine import AuthorizationEngine
from repro.serving.server import AuthorizationServer
from repro.workloads.generator import (
    Workload,
    WorkloadGenerator,
    WorkloadSpec,
)


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of a closed-loop traffic run (fully seed-determined)."""

    #: Concurrent closed-loop clients.
    clients: int = 8
    #: Ops issued by each client (queries plus churn ops).
    ops_per_client: int = 50
    #: Users owned by each client (disjoint across clients).
    users_per_client: int = 2
    #: Zipf skew over a client's users (0 = uniform).
    user_skew: float = 1.0
    #: Distinct queries in the shared hot pool.
    distinct_queries: int = 12
    #: Zipf skew over the query pool.
    query_skew: float = 1.2
    #: Every Nth op is a permit/revoke toggle instead of a query
    #: (0 disables churn).
    churn_every: int = 0
    #: Workload shape for the underlying database and views; its
    #: ``users`` field is overridden to ``clients * users_per_client``.
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"need at least one client: {self.clients}")
        if self.users_per_client < 1:
            raise ValueError(
                f"need at least one user per client: "
                f"{self.users_per_client}"
            )
        if self.distinct_queries < 1:
            raise ValueError(
                f"need a nonempty query pool: {self.distinct_queries}"
            )


@dataclass(frozen=True)
class TrafficOp:
    """One scripted client step.

    ``kind`` is ``"query"`` (with ``query`` set) or ``"permit"`` /
    ``"revoke"`` (with ``view`` set).  ``user`` always belongs to the
    issuing client's slice.
    """

    kind: str
    user: str
    query: Optional[Query] = None
    view: Optional[str] = None


@dataclass(frozen=True)
class TrafficScript:
    """A fully expanded run: the stack recipe plus per-client ops.

    ``spec`` regenerates an identical, independent copy of the
    database/catalog stack via :func:`fresh_stack` — which is how the
    serial oracle avoids sharing mutable state with the concurrent
    run.
    """

    spec: TrafficSpec
    clients: Tuple[Tuple[TrafficOp, ...], ...]

    @property
    def total_queries(self) -> int:
        return sum(
            1 for ops in self.clients for op in ops
            if op.kind == "query"
        )


def _zipf_pick(rng: random.Random, count: int, skew: float) -> int:
    """A Zipf-skewed rank in ``range(count)``."""
    weights = [1.0 / (rank + 1) ** skew for rank in range(count)]
    return rng.choices(range(count), weights=weights, k=1)[0]


def fresh_stack(spec: TrafficSpec) -> Workload:
    """An independent copy of the script's database/catalog stack.

    Deterministic in ``spec``: every call returns a structurally
    identical workload, so the concurrent run and the serial oracle
    can each mutate their own catalog without observing the other.
    """
    workload_spec = replace(
        spec.workload,
        users=spec.clients * spec.users_per_client,
        seed=spec.seed,
    )
    return WorkloadGenerator(seed=spec.seed).workload(workload_spec)


def client_users(spec: TrafficSpec,
                 users: Sequence[str]) -> Tuple[Tuple[str, ...], ...]:
    """Partition the user population into per-client disjoint slices."""
    k = spec.users_per_client
    return tuple(
        tuple(users[c * k:(c + 1) * k]) for c in range(spec.clients)
    )


def build_traffic(spec: TrafficSpec) -> TrafficScript:
    """Expand ``spec`` into deterministic per-client op sequences."""
    rng = random.Random(spec.seed)
    workload = fresh_stack(spec)
    generator = WorkloadGenerator(seed=spec.seed + 1)
    workload_spec = replace(
        spec.workload,
        users=spec.clients * spec.users_per_client,
        seed=spec.seed,
    )
    pool = [
        generator.query(workload_spec, workload.database.schema)
        for _ in range(spec.distinct_queries)
    ]
    slices = client_users(spec, workload.users)
    view_names = workload.catalog.view_names()

    # Track each user's simulated grant set so churn toggles are
    # recorded as explicit permit/revoke ops (replay never has to
    # guess state).
    granted: Dict[str, Set[str]] = {
        user: set(workload.catalog.views_of(user))
        for user in workload.users
    }

    clients: List[Tuple[TrafficOp, ...]] = []
    for client in range(spec.clients):
        mine = slices[client]
        ops: List[TrafficOp] = []
        for step in range(spec.ops_per_client):
            user = mine[_zipf_pick(rng, len(mine), spec.user_skew)]
            churn = (
                spec.churn_every > 0
                and (step + 1) % spec.churn_every == 0
                and view_names
            )
            if churn:
                view = rng.choice(view_names)
                if view in granted[user]:
                    granted[user].discard(view)
                    ops.append(TrafficOp("revoke", user, view=view))
                else:
                    granted[user].add(view)
                    ops.append(TrafficOp("permit", user, view=view))
            else:
                query = pool[
                    _zipf_pick(rng, len(pool), spec.query_skew)
                ]
                ops.append(TrafficOp("query", user, query=query))
        clients.append(tuple(ops))
    return TrafficScript(spec=spec, clients=tuple(clients))


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

def _apply_churn(engine: AuthorizationEngine, op: TrafficOp) -> None:
    if op.view is None:  # pragma: no cover - script construction bug
        raise ValueError(f"churn op without a view: {op}")
    if op.kind == "permit":
        engine.permit(op.view, op.user)
    else:
        engine.revoke(op.view, op.user)


def drive_server(
    script: TrafficScript,
    server: AuthorizationServer,
    tenant: str,
) -> Tuple[Tuple[AuthorizedAnswer, ...], ...]:
    """Run the script closed-loop: one thread per client, each
    waiting for its answer before the next op.  Returns each client's
    answers to its *query* ops, in script order."""
    engine = server.tenants.get(tenant).engine
    results: List[Tuple[AuthorizedAnswer, ...]] = [
        () for _ in script.clients
    ]
    failures: List[BaseException] = []

    def run_client(index: int) -> None:
        answers: List[AuthorizedAnswer] = []
        try:
            for op in script.clients[index]:
                if op.kind == "query":
                    assert op.query is not None
                    answers.append(
                        server.submit(tenant, op.user,
                                      op.query).result()
                    )
                else:
                    _apply_churn(engine, op)
            results[index] = tuple(answers)
        except BaseException as error:
            failures.append(error)
            raise

    threads = [
        threading.Thread(
            target=run_client, args=(index,),
            name=f"traffic-client-{index}", daemon=True,
        )
        for index in range(len(script.clients))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]
    return tuple(results)


def replay_serial(
    script: TrafficScript,
) -> Tuple[Tuple[AuthorizedAnswer, ...], ...]:
    """The parity oracle: each client's ops replayed in isolation
    through a fresh single-threaded engine over a fresh stack."""
    results: List[Tuple[AuthorizedAnswer, ...]] = []
    for ops in script.clients:
        workload = fresh_stack(script.spec)
        engine = AuthorizationEngine(workload.database,
                                     workload.catalog)
        answers: List[AuthorizedAnswer] = []
        for op in ops:
            if op.kind == "query":
                assert op.query is not None
                answers.append(engine.authorize(op.user, op.query))
            else:
                _apply_churn(engine, op)
        results.append(tuple(answers))
    return tuple(results)


def delivery_signature(
    answers: Sequence[AuthorizedAnswer],
) -> Tuple[Tuple[str, Tuple[Tuple[object, ...], ...]], ...]:
    """What parity compares: per answer, the user and the exact
    delivered tuples (shape *and* values)."""
    return tuple(
        (answer.user, answer.delivered) for answer in answers
    )
