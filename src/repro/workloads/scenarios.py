"""Two realistic scenarios exercising the public API.

These back the domain examples in ``examples/`` and several
integration tests:

* **Hospital** — patients, physicians and treatments; nurses may see
  demographic data of non-psychiatric patients, physicians see their
  own patients' treatments, billing sees costs but not diagnoses.
* **Corporate directory** — employees, departments and salaries;
  everyone sees the directory, HR sees salaries, managers see their
  department's salaries below a cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.algebra.database import Database, build_database
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.core.engine import AuthorizationEngine
from repro.meta.catalog import PermissionCatalog


@dataclass(frozen=True)
class Scenario:
    """A ready-to-use engine plus the cast of users."""

    engine: AuthorizationEngine
    users: Tuple[str, ...]


def hospital_scenario(config: EngineConfig = DEFAULT_CONFIG) -> Scenario:
    """Patients / physicians / treatments with role-based views."""
    patient = make_schema(
        "PATIENT",
        [("PID", STRING), ("NAME", STRING), ("WARD", STRING),
         ("DIAGNOSIS", STRING)],
        key=["PID"],
    )
    physician = make_schema(
        "PHYSICIAN",
        [("DOC", STRING), ("SPECIALTY", STRING)],
        key=["DOC"],
    )
    treatment = make_schema(
        "TREATMENT",
        [("PID", STRING), ("DOC", STRING), ("DRUG", STRING),
         ("COST", INTEGER)],
        key=["PID", "DOC", "DRUG"],
    )
    database = build_database(
        [patient, physician, treatment],
        {
            "PATIENT": [
                ("p1", "Adams", "cardiology", "arrhythmia"),
                ("p2", "Baker", "psychiatry", "anxiety"),
                ("p3", "Clark", "oncology", "lymphoma"),
                ("p4", "Davis", "cardiology", "infarction"),
            ],
            "PHYSICIAN": [
                ("house", "cardiology"),
                ("wilson", "oncology"),
                ("kelso", "psychiatry"),
            ],
            "TREATMENT": [
                ("p1", "house", "betablocker", 120),
                ("p2", "kelso", "ssri", 80),
                ("p3", "wilson", "chemo", 4200),
                ("p4", "house", "stent", 9100),
                ("p3", "house", "betablocker", 120),
            ],
        },
    )
    catalog = PermissionCatalog(database.schema)
    # Nurses: demographics of non-psychiatric patients.
    catalog.define_view(
        "view NURSE_VIEW (PATIENT.PID, PATIENT.NAME, PATIENT.WARD) "
        "where PATIENT.WARD != psychiatry"
    )
    # Physicians: their patients' full treatment picture (parameterized
    # per physician; here Dr. House's view).
    catalog.define_view(
        """view HOUSE_PATIENTS (PATIENT.PID, PATIENT.NAME,
                                PATIENT.DIAGNOSIS, TREATMENT.DRUG,
                                TREATMENT.COST)
           where PATIENT.PID = TREATMENT.PID
           and TREATMENT.DOC = house"""
    )
    # Billing: costs joined to patient ids, but no diagnoses.
    catalog.define_view(
        "view BILLING (TREATMENT.PID, TREATMENT.DRUG, TREATMENT.COST)"
    )
    # Research: expensive treatments only.
    catalog.define_view(
        "view EXPENSIVE (TREATMENT.PID, TREATMENT.DRUG, TREATMENT.COST) "
        "where TREATMENT.COST >= 1000"
    )
    catalog.permit("NURSE_VIEW", "nurse")
    catalog.permit("HOUSE_PATIENTS", "house")
    catalog.permit("BILLING", "billing")
    catalog.permit("EXPENSIVE", "research")
    catalog.permit("NURSE_VIEW", "research")
    engine = AuthorizationEngine(database, catalog, config)
    return Scenario(engine, ("nurse", "house", "billing", "research"))


def corporate_scenario(config: EngineConfig = DEFAULT_CONFIG) -> Scenario:
    """Employees / departments with salary-capped manager views."""
    employee = make_schema(
        "EMP",
        [("ENO", STRING), ("ENAME", STRING), ("DEPT", STRING),
         ("SALARY", INTEGER)],
        key=["ENO"],
    )
    department = make_schema(
        "DEPT",
        [("DNAME", STRING), ("HEAD", STRING), ("BUDGET", INTEGER)],
        key=["DNAME"],
    )
    database = build_database(
        [employee, department],
        {
            "EMP": [
                ("e1", "Ada", "eng", 120_000),
                ("e2", "Bob", "eng", 95_000),
                ("e3", "Cyd", "sales", 70_000),
                ("e4", "Dee", "sales", 150_000),
                ("e5", "Eli", "hr", 65_000),
            ],
            "DEPT": [
                ("eng", "Ada", 2_000_000),
                ("sales", "Dee", 1_200_000),
                ("hr", "Eli", 300_000),
            ],
        },
    )
    catalog = PermissionCatalog(database.schema)
    catalog.define_view(
        "view DIRECTORY (EMP.ENO, EMP.ENAME, EMP.DEPT)"
    )
    catalog.define_view(
        "view HR_SALARIES (EMP.ENO, EMP.ENAME, EMP.DEPT, EMP.SALARY)"
    )
    catalog.define_view(
        """view ENG_SALARIES (EMP.ENO, EMP.ENAME, EMP.DEPT, EMP.SALARY)
           where EMP.DEPT = eng and EMP.SALARY <= 100,000"""
    )
    catalog.define_view(
        "view DEPT_BUDGETS (DEPT.DNAME, DEPT.HEAD, DEPT.BUDGET)"
    )
    for user in ("staff", "hr", "engmgr"):
        catalog.permit("DIRECTORY", user)
    catalog.permit("HR_SALARIES", "hr")
    catalog.permit("ENG_SALARIES", "engmgr")
    catalog.permit("DEPT_BUDGETS", "hr")
    engine = AuthorizationEngine(database, catalog, config)
    return Scenario(engine, ("staff", "hr", "engmgr"))
