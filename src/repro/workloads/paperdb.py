"""The paper's running example: Figure 1's database and permissions.

Three relations (EMPLOYEE, PROJECT, ASSIGNMENT), four views (SAE, PSA,
ELP, EST) and the grants to Brown and Klein, exactly as printed in
Figure 1.  Every experiment and most tests start here.
"""

from __future__ import annotations

from typing import Tuple

from repro.algebra.database import Database, build_database
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.core.engine import AuthorizationEngine
from repro.meta.catalog import PermissionCatalog

#: The four view statements of Section 2, in the paper's order of
#: appearance in Figure 1's tables (SAE, ELP, EST, PSA would match the
#: EMPLOYEE' table; we define them in the order the paper introduces
#: them in Section 2 and grant in Figure 1's PERMISSION order).
VIEW_STATEMENTS: Tuple[str, ...] = (
    "view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)",
    """view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE,
                 PROJECT.NUMBER, PROJECT.BUDGET)
       where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
       and PROJECT.NUMBER = ASSIGNMENT.P_NO
       and PROJECT.BUDGET >= 250,000""",
    """view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, EMPLOYEE:1.TITLE)
       where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE""",
    "view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
    "where PROJECT.SPONSOR = Acme",
)

#: Figure 1's PERMISSION relation.
GRANTS: Tuple[Tuple[str, str], ...] = (
    ("Brown", "SAE"),
    ("Brown", "PSA"),
    ("Brown", "EST"),
    ("Klein", "ELP"),
    ("Klein", "EST"),
)


def build_paper_database() -> Database:
    """The database instance shown in Figure 1."""
    employee = make_schema(
        "EMPLOYEE",
        [("NAME", STRING), ("TITLE", STRING), ("SALARY", INTEGER)],
        key=["NAME"],
    )
    project = make_schema(
        "PROJECT",
        [("NUMBER", STRING), ("SPONSOR", STRING), ("BUDGET", INTEGER)],
        key=["NUMBER"],
    )
    assignment = make_schema(
        "ASSIGNMENT",
        [("E_NAME", STRING), ("P_NO", STRING)],
        key=["E_NAME", "P_NO"],
    )
    return build_database(
        [employee, project, assignment],
        {
            "EMPLOYEE": [
                ("Jones", "manager", 26_000),
                ("Smith", "technician", 22_000),
                ("Brown", "engineer", 32_000),
            ],
            "PROJECT": [
                ("bq-45", "Acme", 300_000),
                ("sv-72", "Apex", 450_000),
                ("vg-13", "Summit", 150_000),
            ],
            "ASSIGNMENT": [
                ("Jones", "bq-45"),
                ("Smith", "bq-45"),
                ("Jones", "sv-72"),
                ("Brown", "sv-72"),
                ("Smith", "vg-13"),
                ("Brown", "vg-13"),
            ],
        },
    )


def build_paper_catalog(database: Database) -> PermissionCatalog:
    """Figure 1's views and grants over ``database``'s schema."""
    catalog = PermissionCatalog(database.schema)
    for statement in VIEW_STATEMENTS:
        catalog.define_view(statement)
    for user, view_name in GRANTS:
        catalog.permit(view_name, user)
    return catalog


def build_paper_engine(
    config: EngineConfig = DEFAULT_CONFIG,
) -> AuthorizationEngine:
    """An engine over the Figure 1 database, views and grants."""
    database = build_paper_database()
    catalog = build_paper_catalog(database)
    return AuthorizationEngine(database, catalog, config)


#: The three retrieve statements of Section 5.
EXAMPLE_1_QUERY = (
    "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
    "where PROJECT.BUDGET >= 250,000"
)
EXAMPLE_2_QUERY = """retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)
    where EMPLOYEE.TITLE = engineer
    and EMPLOYEE.NAME = ASSIGNMENT.E_NAME
    and ASSIGNMENT.P_NO = PROJECT.NUMBER
    and PROJECT.BUDGET > 300,000"""
EXAMPLE_3_QUERY = """retrieve (EMPLOYEE:1.NAME, EMPLOYEE:1.SALARY,
                               EMPLOYEE:2.NAME, EMPLOYEE:2.SALARY)
    where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE"""
