"""Masks and their application to answers (Section 5).

The mask A' "is applied to the answer, yielding the data that may be
delivered to the user".  A mask row matches an answer tuple when some
assignment of the row's variables is consistent with the tuple's values
and satisfies the COMPARISON constraints; the row's starred columns are
then visible for that tuple.  A cell of the answer is delivered iff
some mask row makes it visible; everything else is masked.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, List, Tuple

from repro.algebra.relation import Column, Relation, Row
from repro.algebra.types import Value
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.table import MaskRow, MaskTable
from repro.predicates.store import ConstraintStore


class MaskedValue:
    """Sentinel for a cell withheld from the user."""

    _instance = None

    def __new__(cls) -> "MaskedValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "#####"

    def __str__(self) -> str:
        return "#####"


#: The singleton masked-cell sentinel.
MASKED = MaskedValue()


def meta_tuple_matches(meta: MetaTuple, store: ConstraintStore,
                       values: Row) -> bool:
    """Does a meta-tuple's selection condition admit a concrete tuple?

    Constants must equal the tuple's values; every occurrence of a
    variable must see the same value; the induced binding must satisfy
    the COMPARISON constraints.  This is the selection semantics of
    Section 3's subview reading of meta-tuples, shared by mask
    application and by the proposition-level materializer.
    """
    binding: Dict[str, Value] = {}
    for cell, value in zip(meta.cells, values):
        if cell.is_blank:
            continue
        if cell.is_constant:
            if cell.const_value != value:
                return False
            continue
        var = cell.var_name
        assert var is not None
        bound = binding.get(var)
        if bound is None:
            binding[var] = value
        elif bound != value:
            return False
    if not binding:
        return True
    return store.satisfied_by(binding)


def materialize_meta_tuple(meta: MetaTuple, store: ConstraintStore,
                           instance: Relation) -> Relation:
    """The relation a meta-tuple denotes over ``instance``.

    "Each individual meta-tuple may be regarded as defining a subview
    of the corresponding relation": select the tuples admitted by the
    constants/variables, project the starred attributes.  Works over a
    base-relation instance or a product instance, which is what the
    executable Propositions 1-3 checks need.
    """
    starred = meta.starred_positions()
    matching = instance.select(
        lambda row: meta_tuple_matches(meta, store, row)
    )
    return matching.project(starred)


@dataclass(frozen=True)
class Mask:
    """The final A': permitted views of the answer."""

    columns: Tuple[Column, ...]
    rows: Tuple[MaskRow, ...]

    @staticmethod
    def from_table(table: MaskTable) -> "Mask":
        return Mask(table.columns, table.rows)

    def labels(self) -> Tuple[str, ...]:
        return tuple(c.label for c in self.columns)

    @property
    def is_empty(self) -> bool:
        """True when nothing at all may be delivered."""
        return not self.rows

    @cached_property
    def covers_everything(self) -> bool:
        """True when some row stars all columns with no restriction.

        Example 3's outcome: "the answer will be delivered without any
        accompanying permit statements".  Cached: the check walks every
        row and restricts every row's constraint store, and callers
        (permit inference, ``apply``'s short-circuit) ask repeatedly.
        The dataclass is frozen, so the cached value can never go stale.
        """
        return any(
            all(cell.starred and cell.is_blank for cell in row.meta.cells)
            and row.store.restrict_closure(row.meta.variables()).is_empty()
            for row in self.rows
        )

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------

    def row_matches(self, mask_row: MaskRow, values: Row) -> bool:
        """Does ``mask_row``'s selection admit the answer tuple?"""
        return meta_tuple_matches(mask_row.meta, mask_row.store, values)

    def visible_positions(self, values: Row) -> FrozenSet[int]:
        """Columns of answer tuple ``values`` that may be delivered."""
        visible = set()
        for mask_row in self.rows:
            starred = mask_row.meta.starred_positions()
            if not starred:
                continue
            if set(starred) <= visible:
                continue
            if self.row_matches(mask_row, values):
                visible.update(starred)
        return frozenset(visible)

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------

    def apply(self, answer: Relation,
              drop_fully_masked: bool = False) -> Tuple[Tuple, ...]:
        """Mask ``answer``, returning delivered rows with MASKED cells."""
        if self.covers_everything and self.columns:
            # Example 3's fast path: every cell of every tuple is
            # visible, so no per-tuple matching is needed.  (Guarded on
            # non-zero arity: a zero-column answer has no visible cells
            # and must keep the drop_fully_masked semantics below.)
            return tuple(tuple(values) for values in answer.rows)
        delivered: List[Tuple] = []
        for values in answer.rows:
            visible = self.visible_positions(values)
            if not visible and drop_fully_masked:
                continue
            delivered.append(tuple(
                value if i in visible else MASKED
                for i, value in enumerate(values)
            ))
        return tuple(delivered)
