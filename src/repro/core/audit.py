"""Audit log for authorization decisions.

Real access-control deployments need to answer "who asked for what and
what did they get".  An :class:`AuditLog` attached to an engine records
one :class:`AuditRecord` per retrieval — the acting user, the statement,
the views consulted, and the delivery statistics — and can render an
activity report or per-user summaries.

The log stores no data values, only shapes, so the audit trail itself
never widens anyone's access.

Appends and reads are serialized by an internal lock, so one log can
be shared by every worker thread of a serving engine: sequence numbers
stay unique and gapless, capacity trimming cannot race an append, and
readers always observe a consistent snapshot of the trail.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.answer import AuthorizedAnswer, DeliveryStats


@dataclass(frozen=True)
class AuditRecord:
    """One authorized retrieval, shape only."""

    sequence: int
    user: str
    statement: str
    admissible_views: Tuple[str, ...]
    stats: DeliveryStats
    permit_statements: Tuple[str, ...]
    #: Whether the mask derivation came from the derivation cache.
    cache_hit: bool = False
    #: Ladder rung the mask was derived at (0 = full fidelity) — so
    #: operators can see overload-induced degradation in the trail.
    degradation_level: int = 0
    #: Failure behind a fail-closed denial, when there was one.
    error: Optional[str] = None
    #: Which execution backend evaluated the answer (None on denials
    #: that never reached evaluation).
    backend_used: Optional[str] = None
    #: Why evaluation failed over to the oracle, when it did — the
    #: trail must show operational reroutes, not just denials.
    failover_reason: Optional[str] = None

    @property
    def outcome(self) -> str:
        if self.stats.delivered_cells == 0:
            return "denied"
        if self.stats.delivered_cells == self.stats.total_cells:
            return "full"
        return "partial"


class AuditLog:
    """An append-only, in-memory audit trail."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        #: Oldest records are dropped beyond ``capacity`` (None = keep all).
        self.capacity = capacity
        self._records: List[AuditRecord] = []
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(self, answer: AuthorizedAnswer) -> AuditRecord:
        """Append a record for ``answer`` and return it (thread-safe)."""
        # The record is built outside the lock (stats() walks the
        # delivered rows); only numbering and the append are serial.
        stats = answer.stats()
        permits = tuple(str(p) for p in answer.permits)
        with self._lock:
            entry = AuditRecord(
                sequence=next(self._counter),
                user=answer.user,
                statement=str(answer.query),
                admissible_views=answer.derivation.admissible_views,
                stats=stats,
                permit_statements=permits,
                cache_hit=answer.cache_hit,
                degradation_level=answer.degradation_level,
                error=answer.error,
                backend_used=answer.backend_used,
                failover_reason=answer.failover_reason,
            )
            self._records.append(entry)
            if self.capacity is not None \
                    and len(self._records) > self.capacity:
                del self._records[0:len(self._records) - self.capacity]
        return entry

    def record_stream(
        self,
        user: str,
        statement: str,
        admissible_views: Tuple[str, ...],
        stats: DeliveryStats,
        permit_statements: Tuple[str, ...] = (),
        cache_hit: bool = False,
        degradation_level: int = 0,
        error: Optional[str] = None,
        backend_used: Optional[str] = None,
        failover_reason: Optional[str] = None,
    ) -> AuditRecord:
        """Append a record for a chunk-streamed delivery (thread-safe).

        Streamed answers are never materialized, so there is no
        :class:`~repro.core.answer.AuthorizedAnswer` to hand to
        :meth:`record`; the engine accounts cells chunk-by-chunk as it
        delivers them and reports the totals here once the stream ends
        (exhausted, failed closed, or abandoned by the consumer — the
        record covers exactly what was actually delivered).
        """
        with self._lock:
            entry = AuditRecord(
                sequence=next(self._counter),
                user=user,
                statement=statement,
                admissible_views=admissible_views,
                stats=stats,
                permit_statements=permit_statements,
                cache_hit=cache_hit,
                degradation_level=degradation_level,
                error=error,
                backend_used=backend_used,
                failover_reason=failover_reason,
            )
            self._records.append(entry)
            if self.capacity is not None \
                    and len(self._records) > self.capacity:
                del self._records[0:len(self._records) - self.capacity]
        return entry

    # ------------------------------------------------------------------
    # queries over the trail
    # ------------------------------------------------------------------

    def records(self, user: Optional[str] = None
                ) -> Tuple[AuditRecord, ...]:
        """All records, optionally filtered by user."""
        with self._lock:
            snapshot = tuple(self._records)
        if user is None:
            return snapshot
        return tuple(r for r in snapshot if r.user == user)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def outcome_counts(self, user: Optional[str] = None
                       ) -> Dict[str, int]:
        """How many denied / partial / full deliveries."""
        counts = {"denied": 0, "partial": 0, "full": 0}
        for entry in self.records(user):
            counts[entry.outcome] += 1
        return counts

    def cached_count(self, user: Optional[str] = None) -> int:
        """How many recorded derivations were served from the cache."""
        return sum(1 for r in self.records(user) if r.cache_hit)

    def degraded_count(self, user: Optional[str] = None) -> int:
        """How many recorded derivations ran below full fidelity."""
        return sum(
            1 for r in self.records(user) if r.degradation_level > 0
        )

    def failover_count(self, user: Optional[str] = None) -> int:
        """How many recorded answers were evaluated on the failover
        oracle rather than the configured backend."""
        return sum(
            1 for r in self.records(user) if r.failover_reason is not None
        )

    def delivered_fraction(self, user: Optional[str] = None) -> float:
        """Overall delivered-cells ratio across the trail."""
        total = delivered = 0
        for entry in self.records(user):
            total += entry.stats.total_cells
            delivered += entry.stats.delivered_cells
        if total == 0:
            return 1.0
        return delivered / total

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def report(self) -> str:
        """A human-readable activity report."""
        entries = self.records()
        if not entries:
            return "(no authorizations recorded)"
        lines = []
        for entry in entries:
            stats = entry.stats
            cached = " [cached]" if entry.cache_hit else ""
            degraded = (
                f" [degraded:{entry.degradation_level}]"
                if entry.degradation_level > 0 else ""
            )
            failed = " [fail-closed]" if entry.error is not None else ""
            if entry.failover_reason is not None:
                failed += f" [failover:{entry.backend_used}]"
            lines.append(
                f"#{entry.sequence} {entry.user}: {entry.outcome} "
                f"({stats.delivered_cells}/{stats.total_cells} cells) "
                f"via {', '.join(entry.admissible_views) or '(no views)'}"
                f"{cached}{degraded}{failed}"
            )
            lines.append(f"    {entry.statement}")
        summary = self.outcome_counts()
        lines.append(
            f"-- {len(entries)} requests: "
            f"{summary['full']} full, {summary['partial']} partial, "
            f"{summary['denied']} denied; "
            f"{self.cached_count()} served from the derivation cache; "
            f"{self.degraded_count()} degraded"
        )
        return "\n".join(lines)
