"""The authorization engine: Figure 2 made executable.

``authorize(user, query)`` runs the query's plan twice — over the
actual relations (yielding the answer A) and over the meta-relations
(yielding the mask A') — applies the mask to the answer, and attaches
the inferred permit statements.  Users direct queries at the actual
database; views never act as access windows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.audit import AuditLog

from repro.algebra.database import Database
from repro.algebra.optimize import evaluate_optimized
from repro.calculus.ast import Query
from repro.calculus.to_algebra import compile_query
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.core.answer import AuthorizedAnswer
from repro.core.mask import Mask
from repro.core.statements import infer_permits
from repro.errors import ParseError
from repro.extensions.closure import make_excuse
from repro.lang.parser import parse_statement
from repro.meta.catalog import PermissionCatalog
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.plan import MaskDerivation, derive_mask
from repro.metaalgebra.selfjoin import selfjoin_closure


class AuthorizationEngine:
    """Binds a database, a permission catalog, and a configuration."""

    def __init__(
        self,
        database: Database,
        catalog: Optional[PermissionCatalog] = None,
        config: EngineConfig = DEFAULT_CONFIG,
        audit: Optional["AuditLog"] = None,
    ):
        self.database = database
        self.catalog = catalog or PermissionCatalog(database.schema)
        self.config = config
        #: Optional audit trail; every authorize() appends a record.
        self.audit = audit
        # Per-user self-join closures: "once generated, they should be
        # stored with the original view definitions, until these
        # definitions are modified."
        self._selfjoin_cache: Dict[str, Dict[str, Tuple[MetaTuple, ...]]] = {}
        self._selfjoin_cache_version = -1

    # ------------------------------------------------------------------
    # convenience pass-throughs
    # ------------------------------------------------------------------

    def define_view(self, view) -> None:
        """Define a view (AST or surface text)."""
        self.catalog.define_view(view)

    def permit(self, view_name: str, user: str) -> None:
        """Grant ``user`` access to ``view_name``."""
        self.catalog.permit(view_name, user)

    def revoke(self, view_name: str, user: str) -> None:
        """Withdraw a grant."""
        self.catalog.revoke(view_name, user)

    # ------------------------------------------------------------------
    # the authorization process (Section 5)
    # ------------------------------------------------------------------

    def authorize(self, user: str,
                  query: Union[Query, str]) -> AuthorizedAnswer:
        """Answer ``query`` for ``user``, masked to their permissions."""
        if isinstance(query, str):
            parsed = parse_statement(query)
            if not isinstance(parsed, Query):
                raise ParseError("authorize expects a retrieve statement")
            query = parsed

        plan = compile_query(query, self.database.schema)
        answer = evaluate_optimized(plan, self.database)
        derivation = self.derive(user, query)
        assert derivation.mask is not None
        mask = Mask.from_table(derivation.mask)
        delivered = mask.apply(
            answer, drop_fully_masked=self.config.drop_fully_masked_rows
        )
        permits = infer_permits(mask)
        authorized = AuthorizedAnswer(
            user=user,
            query=query,
            plan=plan,
            answer=answer,
            mask=mask,
            delivered=delivered,
            permits=permits,
            derivation=derivation,
        )
        if self.audit is not None:
            self.audit.record(authorized)
        return authorized

    def derive(self, user: str,
               query: Union[Query, str]) -> MaskDerivation:
        """Derive the mask only (no data touched) — with full trace."""
        if isinstance(query, str):
            parsed = parse_statement(query)
            if not isinstance(parsed, Query):
                raise ParseError("derive expects a retrieve statement")
            query = parsed
        plan = compile_query(query, self.database.schema)

        excuse = None
        if self.config.existential_closure:
            admissible = self.catalog.admissible_views(
                user, plan.relation_names()
            )
            excuse = make_excuse(
                self.catalog, admissible, plan, self.database.schema
            )

        return derive_mask(
            plan,
            self.database.schema,
            self.catalog,
            user,
            self.config,
            excuse=excuse,
            selfjoin_pool=self._selfjoin_pool(user),
        )

    # ------------------------------------------------------------------
    # self-join cache
    # ------------------------------------------------------------------

    def _selfjoin_pool(
        self, user: str
    ) -> Optional[Dict[str, Tuple[MetaTuple, ...]]]:
        if not self.config.self_joins:
            return None
        if self._selfjoin_cache_version != self.catalog.version:
            self._selfjoin_cache.clear()
            self._selfjoin_cache_version = self.catalog.version
        cached = self._selfjoin_cache.get(user)
        if cached is not None:
            return cached

        pool: Dict[str, Tuple[MetaTuple, ...]] = {}
        permitted = self.catalog.views_of(user)
        store = self.catalog.store_for(permitted)
        for relation in self.database.schema.names():
            # The closure is computed once over all of the user's
            # views; derive_mask filters out combinations involving
            # views that are not admissible for a particular query.
            tuples = self.catalog.tuples_for(relation, permitted)
            pool[relation] = selfjoin_closure(
                self.database.schema.get(relation), tuples, store,
                self.config.max_selfjoin_rounds,
                self.config.max_selfjoin_tuples,
            )
        self._selfjoin_cache[user] = pool
        return pool
