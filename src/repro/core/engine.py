"""The authorization engine: Figure 2 made executable.

``authorize(user, query)`` runs the query's plan twice — over the
actual relations (yielding the answer A) and over the meta-relations
(yielding the mask A') — applies the mask to the answer, and attaches
the inferred permit statements.  Users direct queries at the actual
database; views never act as access windows.  The answer half runs
through a pluggable execution backend (``EngineConfig.backend``, see
:mod:`repro.backends`); mask derivation is backend-independent.

Two derived artifacts are memoized, following Section 5's advice that
derived results "should be stored with the original view definitions,
until these definitions are modified":

* per-user **self-join closures**, invalidated by the catalog's
  per-user cache token (a grant to one user no longer flushes
  another's closure);
* whole **mask derivations**, in a :class:`~repro.core.cache.DerivationCache`
  keyed by ``(user, canonical plan key)`` and guarded by the same
  token — see ``docs/CACHING.md`` for keys, invalidation rules, and
  the transparency guarantee.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import ExecutionBackend
    from repro.core.audit import AuditLog

from repro.algebra.database import Database
from repro.algebra.expression import PSJQuery
from repro.algebra.relation import Column, Relation, Row
from repro.backends import BACKEND_NAMES, make_backend
from repro.calculus.ast import Query, ViewDefinition
from repro.calculus.to_algebra import compile_query
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.core.answer import AuthorizedAnswer
from repro.core.cache import (
    CacheStats,
    DerivationCache,
    DerivationCacheLike,
)
from repro.core.compiled_mask import (
    CompiledMask,
    apply_mask_columnar,
    compile_mask,
)
from repro.core.mask import Mask
from repro.core.statements import InferredPermit, infer_permits
from repro.core.stream import AnswerStream, MaskedChunk
from repro.errors import (
    BackendUnavailableError,
    ParseError,
    ReproError,
)
from repro.extensions.closure import make_excuse
from repro.lang.parser import parse_statement
from repro.meta.catalog import PermissionCatalog
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.canonical import PlanKey, canonical_plan_key
from repro.metaalgebra.ladder import (
    EMPTY_LEVEL,
    derive_mask_resilient,
    empty_derivation,
    rung_config,
)
from repro.metaalgebra.budget import Budget
from repro.metaalgebra.plan import MaskDerivation
from repro.metaalgebra.selfjoin import selfjoin_closure
from repro.resilience.breaker import BreakerPolicy
from repro.resilience.failover import (
    ExecutionOutcome,
    ResilientExecutor,
    StreamOutcome,
)
from repro.resilience.retry import RetryPolicy
from repro.testing.faults import maybe_fault


class AuthorizationEngine:
    """Binds a database, a permission catalog, and a configuration."""

    def __init__(
        self,
        database: Database,
        catalog: Optional[PermissionCatalog] = None,
        config: EngineConfig = DEFAULT_CONFIG,
        audit: Optional["AuditLog"] = None,
        derivation_cache: Optional[DerivationCacheLike] = None,
    ) -> None:
        self.database = database
        self.catalog = catalog or PermissionCatalog(database.schema)
        self.config = config
        #: Where plans run (see repro.backends).  Built once per
        #: engine from ``config.backend``.  An *unknown* backend name
        #: always fails construction — misconfiguration should never
        #: masquerade as a denial.  A *known-but-unavailable* backend
        #: (e.g. duckdb without its driver) also fails construction
        #: unless ``config.backend_failover`` is on, in which case the
        #: engine runs permanently on the Python oracle and every
        #: answer records the standing failover reason.
        standing_reason: Optional[str] = None
        try:
            self.backend: "ExecutionBackend" = make_backend(
                config.backend, database
            )
        except BackendUnavailableError as error:
            if not config.backend_failover \
                    or config.backend not in BACKEND_NAMES:
                raise
            self.backend = make_backend("python", database)
            standing_reason = f"unavailable at construction: {error}"
        oracle: "ExecutionBackend" = (
            self.backend if self.backend.name == "python"
            else make_backend("python", database)
        )
        #: Retry/breaker/failover wrapper around ``backend`` — the
        #: engine's single evaluation entry point (see
        #: ``repro.resilience``).  One executor (and breaker) per
        #: engine, and one engine per tenant in the serving layer, so
        #: breaker state is per (tenant, backend).
        self.executor = ResilientExecutor(
            primary=self.backend,
            oracle=oracle,
            retry=RetryPolicy(
                attempts=config.backend_retry_attempts,
                base_delay_ms=config.backend_retry_base_ms,
                jitter_ms=config.backend_retry_jitter_ms,
            ),
            breaker_policy=BreakerPolicy(
                failure_threshold=config.breaker_failure_threshold,
                recovery_ms=config.breaker_recovery_ms,
            ),
            failover=config.backend_failover,
            standing_reason=standing_reason,
        )
        #: Optional audit trail; every authorize() appends a record.
        self.audit = audit
        # Per-user self-join closures, each tagged with the catalog
        # token it was computed under: "once generated, they should be
        # stored with the original view definitions, until these
        # definitions are modified."
        self._selfjoin_cache: Dict[
            str, Tuple[Tuple[int, int], Dict[str, Tuple[MetaTuple, ...]]]
        ] = {}
        #: LRU cache of mask derivations (see repro.core.cache).  An
        #: injected cache lets the serving layer substitute its
        #: lock-striped sharded implementation, or share one cache
        #: between engines that share a catalog.
        self._derivation_cache: DerivationCacheLike = (
            derivation_cache if derivation_cache is not None
            else DerivationCache(config.derivation_cache_size)
        )
        # Compiled plans and canonical keys are pure functions of the
        # (immutable) schema, so they are memoized unconditionally;
        # repeated statements skip the compiler entirely.  The memo
        # lock makes LRU bookkeeping safe under concurrent authorize
        # calls from serving worker threads.
        self._memo_lock = threading.RLock()
        self._plan_cache: "OrderedDict[Query, PSJQuery]" = OrderedDict()
        self._plan_key_cache: "OrderedDict[PSJQuery, PlanKey]" = \
            OrderedDict()
        self._plan_cache_capacity = max(
            512, 4 * max(config.derivation_cache_size, 0)
        )

    # ------------------------------------------------------------------
    # convenience pass-throughs
    # ------------------------------------------------------------------

    def define_view(self, view: Union["ViewDefinition", str]) -> None:
        """Define a view (AST or surface text)."""
        self.catalog.define_view(view)

    def permit(self, view_name: str, user: str) -> None:
        """Grant ``user`` access to ``view_name``."""
        self.catalog.permit(view_name, user)

    def revoke(self, view_name: str, user: str) -> None:
        """Withdraw a grant."""
        self.catalog.revoke(view_name, user)

    def stats(self) -> CacheStats:
        """Running statistics of the derivation cache."""
        return self._derivation_cache.stats

    # ------------------------------------------------------------------
    # the authorization process (Section 5)
    # ------------------------------------------------------------------

    def authorize(self, user: str,
                  query: Union[Query, str]) -> AuthorizedAnswer:
        """Answer ``query`` for ``user``, masked to their permissions.

        **Fail-closed contract** (``config.fail_closed``, the default):
        past parsing and plan validation — which still raise, so the
        caller can tell a malformed request from a denial — no internal
        failure ever propagates.  Budget exhaustion re-derives down the
        degradation ladder (the mask shrinks, never grows); anything
        else yields the empty-mask answer with
        :attr:`AuthorizedAnswer.error` set.  With ``fail_closed=False``
        (development), internal errors re-raise instead.
        """
        query = self._parse_query(query, "authorize")
        plan = self._compile(query)
        try:
            authorized = self._authorize_plan(user, query, plan)
        except BackendUnavailableError:
            # Only reachable with backend_failover off: a vanished
            # backend is the operator's misconfiguration, not a
            # denial, so the typed error escapes the boundary.
            raise
        except Exception as error:  # the fail-closed boundary
            if not self.config.fail_closed:
                raise
            authorized = self._failed_answer(user, query, plan, error)
        if self.audit is not None:
            self.audit.record(authorized)
        return authorized

    def _authorize_plan(self, user: str, query: Query,
                        plan: PSJQuery) -> AuthorizedAnswer:
        """The unprotected authorize path (inside the boundary)."""
        outcome = self._evaluate(plan)
        derivation, hit = self._derive_plan(user, plan)
        return self._assemble(user, query, plan, outcome, derivation,
                              hit)

    def _evaluate(self, plan: PSJQuery) -> ExecutionOutcome:
        """Evaluate ``plan`` through the resilient executor.

        The single answer-evaluation site of both authorize paths
        (full-fidelity and degraded).  The ``engine.evaluate`` fault
        site fires here, *outside* the executor, and stays fail-closed
        (it models a failure in the engine itself); the
        ``backend.execute`` site fires inside the executor's retry
        loop, so injected backend faults are retried and failed over
        like real ones.  Only an executor whose safety net is
        exhausted or disabled lets a failure propagate to the
        fail-closed boundary.
        """
        maybe_fault("engine.evaluate")
        return self.executor.execute(plan)

    def authorize_batch(
        self, user: str, queries: Iterable[Union[Query, str]]
    ) -> Tuple[AuthorizedAnswer, ...]:
        """Authorize many queries for one user, sharing derived work.

        Statements are parsed once per distinct text, compiled once per
        distinct query, and the mask derivation, answer evaluation,
        masking, and permit inference run once per distinct *canonical
        plan* — repeated or plan-equivalent requests reuse the batch's
        own memo (and the engine's derivation cache when enabled).  The
        result is element-wise equal to looping ``authorize`` over
        ``queries``; ``tests/test_derivation_cache.py`` enforces that
        equality.

        The fail-closed boundary applies per element: a failure while
        processing one query yields an empty-mask answer for that
        element and does not disturb its neighbours (failed elements
        are never memoized, so a transient fault cannot replay).
        """
        parsed: Dict[str, Query] = {}
        plans: Dict[Query, PSJQuery] = {}
        computed: Dict[PlanKey, Tuple[
            Relation, MaskDerivation, Mask, Tuple[Tuple, ...],
            Tuple[InferredPermit, ...], int, Optional[str],
            Optional[str],
        ]] = {}

        answers: List[AuthorizedAnswer] = []
        for item in queries:
            if isinstance(item, str):
                query = parsed.get(item)
                if query is None:
                    query = self._parse_query(item, "authorize_batch")
                    parsed[item] = query
            else:
                query = item
            plan = plans.get(query)
            if plan is None:
                plan = self._compile(query)
                plans[query] = plan

            try:
                key = self._plan_key(plan)
                memo = computed.get(key)
                if memo is None:
                    authorized = self._authorize_plan(user, query, plan)
                    computed[key] = (
                        authorized.answer, authorized.derivation,
                        authorized.mask, authorized.delivered,
                        authorized.permits,
                        authorized.degradation_level,
                        authorized.backend_used,
                        authorized.failover_reason,
                    )
                else:
                    answer, derivation, mask, delivered, permits, \
                        level, backend_used, failover_reason = memo
                    authorized = AuthorizedAnswer(
                        user=user,
                        query=query,
                        plan=plan,
                        answer=answer,
                        mask=mask,
                        delivered=delivered,
                        permits=permits,
                        derivation=derivation,
                        cache_hit=True,
                        degradation_level=level,
                        backend_used=backend_used,
                        failover_reason=failover_reason,
                    )
            except BackendUnavailableError:
                # See authorize(): typed misconfiguration escapes.
                raise
            except Exception as error:  # the fail-closed boundary
                if not self.config.fail_closed:
                    raise
                authorized = self._failed_answer(user, query, plan,
                                                 error)
            if self.audit is not None:
                self.audit.record(authorized)
            answers.append(authorized)
        return tuple(answers)

    def authorize_stream(
        self, user: str, query: Union[Query, str],
        chunk_size: Optional[int] = None,
    ) -> AnswerStream:
        """Answer ``query`` for ``user`` as a bounded-memory stream.

        The iterator mode of :meth:`authorize`: the same mask
        derivation (same cache), the same permits, the same fail-closed
        contract — but the answer is evaluated, masked (columnar
        kernel), and delivered chunk-by-chunk, so it is never
        materialized whole.  The concatenated chunks are byte-identical
        to :attr:`AuthorizedAnswer.delivered` for the same request
        (``tests/test_stream.py``).

        Divergences forced by streaming:

        * a failure *after* the first chunk cannot retry or fail over
          (re-running the plan could duplicate already-delivered
          rows); the stream ends early with
          :attr:`AnswerStream.error` set and the remainder withheld —
          fail-closed, per prefix.  Establishment failures still get
          the full retry/breaker/failover ladder.
        * ``config.max_stream_rows`` (via
          :meth:`repro.metaalgebra.budget.Budget.charge_stream`)
          bounds total delivery; the offending chunk is withheld.
        * the audit record is written when the stream *ends* —
          exhausted, failed, or closed by the consumer — covering
          exactly the delivered prefix.

        Args:
            chunk_size: rows per chunk; defaults to
                ``config.stream_chunk_size``.
        """
        query = self._parse_query(query, "authorize_stream")
        plan = self._compile(query)
        size = (
            chunk_size if chunk_size is not None and chunk_size > 0
            else self.config.stream_chunk_size
        )
        try:
            derivation, hit = self._derive_plan(user, plan)
            assert derivation.mask is not None
            if derivation.degradation_level >= EMPTY_LEVEL:
                stream = self._denied_stream(
                    user, query, plan, size,
                    derivation.degradation_reason or "denied",
                )
            else:
                mask = Mask.from_table(derivation.mask)
                compiled = self._compiled_for(user, plan, derivation)
                outcome = self._evaluate_stream(plan, size)
                stream = AnswerStream(
                    user=user,
                    query=query,
                    plan=plan,
                    mask=mask,
                    permits=infer_permits(mask),
                    chunk_size=size,
                    arity=len(plan.output),
                    cache_hit=hit,
                    degradation_level=derivation.degradation_level,
                    backend_used=outcome.backend_used,
                    failover_reason=outcome.failover_reason,
                )
                stream._chunks = self._stream_chunks(
                    stream, outcome.chunks, compiled,
                    derivation.admissible_views,
                )
                return stream
        except BackendUnavailableError:
            # See authorize(): typed misconfiguration escapes.
            raise
        except Exception as error:  # the fail-closed boundary
            if not self.config.fail_closed:
                raise
            stream = self._denied_stream(
                user, query, plan, size,
                f"{type(error).__name__}: {error}",
            )
        # Denied or failed before any chunk: the stream is born
        # finished, so audit immediately (live streams audit when
        # their generator ends).  No views were consulted for the
        # empty mask, matching the denied-answer shape.
        self._audit_stream(stream, ())
        return stream

    def _stream_chunks(
        self,
        stream: AnswerStream,
        chunks: Iterator[Tuple[Row, ...]],
        compiled: Optional[CompiledMask],
        admissible_views: Tuple[str, ...],
    ) -> Iterator[MaskedChunk]:
        """Mask and deliver answer chunks; the stream's engine half.

        Runs lazily as the caller iterates.  Everything downstream of
        establishment lives inside this generator's fail-closed
        boundary: an evaluation failure mid-answer, a masking failure,
        or stream-budget exhaustion ends the stream with
        ``stream.error`` set and the remainder withheld —
        already-delivered chunks cannot be recalled, and re-execution
        could duplicate them, so the sound move is to stop.  The
        ``finally`` clause also catches ``GeneratorExit`` (the
        consumer abandoned the stream), so the audit trail always gets
        exactly one record covering what was actually delivered.
        """
        budget = Budget.from_config(self.config)
        drop = self.config.drop_fully_masked_rows
        columns = stream.plan.output_columns(self.database.schema)
        total = 0
        try:
            for chunk in chunks:
                total += len(chunk)
                if budget is not None:
                    budget.charge_stream(total, "authorize_stream")
                masked = self._mask_chunk(chunk, compiled, stream.mask,
                                          columns, drop)
                stream.account(masked)
                yield masked
        except Exception as error:  # the fail-closed boundary
            if not self.config.fail_closed:
                stream.finished = True
                raise
            stream.error = f"{type(error).__name__}: {error}"
        finally:
            if not stream.finished:
                stream.finished = True
                self._audit_stream(stream, admissible_views)

    def _mask_chunk(
        self,
        chunk: Tuple[Row, ...],
        compiled: Optional[CompiledMask],
        mask: Mask,
        columns: Sequence[Column],
        drop: bool,
    ) -> MaskedChunk:
        """Mask one (already deduplicated) answer chunk.

        The columnar kernel masks the raw row tuple directly; the
        fallbacks wrap the chunk in a throwaway
        :class:`~repro.algebra.relation.Relation` because the
        interpreted ``Mask.apply`` speaks relations (safe: stream
        chunks are globally deduplicated, so set semantics cannot
        drop rows).
        """
        if compiled is not None and self.config.columnar_masks:
            return compiled.apply_rows(
                chunk, drop_fully_masked=drop,
                use_numpy=self.config.columnar_numpy,
            )
        relation = Relation(columns, chunk, validate=False)
        if compiled is not None:
            return compiled.apply(relation, drop_fully_masked=drop)
        return mask.apply(relation, drop_fully_masked=drop)

    def _evaluate_stream(self, plan: PSJQuery,
                         chunk_size: int) -> StreamOutcome:
        """Open ``plan``'s chunk stream through the resilient executor.

        Same fault-site discipline as :meth:`_evaluate`: the
        ``engine.evaluate`` site fires here, outside the executor, and
        the executor's ladder covers stream establishment (iterator
        creation plus the first chunk — see
        :func:`repro.resilience.failover._primed_stream`).
        """
        maybe_fault("engine.evaluate")
        return self.executor.execute_stream(plan, chunk_size=chunk_size)

    def _denied_stream(self, user: str, query: Query, plan: PSJQuery,
                       chunk_size: int, reason: str) -> AnswerStream:
        """An empty, already-finished stream: the fail-closed shape."""
        derivation = empty_derivation(
            plan, self.database.schema, reason=reason
        )
        assert derivation.mask is not None
        return AnswerStream(
            user=user,
            query=query,
            plan=plan,
            mask=Mask.from_table(derivation.mask),
            permits=(),
            chunk_size=chunk_size,
            arity=len(plan.output),
            degradation_level=EMPTY_LEVEL,
            error=reason,
        )

    def _audit_stream(self, stream: AnswerStream,
                      admissible_views: Tuple[str, ...]) -> None:
        """Append the end-of-stream audit record, if auditing is on."""
        if self.audit is None:
            return
        self.audit.record_stream(
            user=stream.user,
            statement=str(stream.query),
            admissible_views=admissible_views,
            stats=stream.stats(),
            permit_statements=tuple(str(p) for p in stream.permits),
            cache_hit=stream.cache_hit,
            degradation_level=stream.degradation_level,
            error=stream.error,
            backend_used=stream.backend_used,
            failover_reason=stream.failover_reason,
        )

    def authorize_degraded(
        self, user: str, query: Union[Query, str], floor: int,
        reason: Optional[str] = None,
    ) -> AuthorizedAnswer:
        """Answer ``query`` at degradation-ladder rung ``floor`` or
        below — the serving layer's admission-control shed path.

        Under overload a server trades fidelity for latency instead of
        queueing unboundedly: the mask is derived with the (cheaper)
        configuration of rung ``floor`` (see
        :func:`repro.metaalgebra.ladder.rung_config`), which by the
        ladder-subset invariant delivers a subset of the full answer —
        shedding can only ever *hide* more.  Two refinements keep the
        cost of shedding low:

        * a live cached full-fidelity derivation is still served (a
          hit costs almost nothing, so there is nothing to shed);
        * ``floor >= EMPTY_LEVEL`` short-circuits to the empty answer
          without evaluating the query at all.

        Degraded derivations are never stored in the cache, so an
        overload can never poison post-overload answers.  The same
        fail-closed contract as :meth:`authorize` applies.
        """
        query = self._parse_query(query, "authorize_degraded")
        plan = self._compile(query)
        try:
            authorized = self._authorize_plan_degraded(
                user, query, plan, floor, reason
            )
        except BackendUnavailableError:
            # See authorize(): typed misconfiguration escapes.
            raise
        except Exception as error:  # the fail-closed boundary
            if not self.config.fail_closed:
                raise
            authorized = self._failed_answer(user, query, plan, error)
        if self.audit is not None:
            self.audit.record(authorized)
        return authorized

    def _authorize_plan_degraded(
        self, user: str, query: Query, plan: PSJQuery, floor: int,
        reason: Optional[str],
    ) -> AuthorizedAnswer:
        """The unprotected shed path (inside the boundary)."""
        floor = max(0, min(floor, EMPTY_LEVEL))
        if floor == 0:
            return self._authorize_plan(user, query, plan)
        reason = reason or f"admission shed to rung {floor}"
        derivation, hit = self._derive_degraded(
            user, plan, floor, reason
        )
        if derivation.degradation_level >= EMPTY_LEVEL:
            # Nothing will be delivered: skip answer evaluation too.
            return self._denied_answer(user, query, plan, reason)
        outcome = self._evaluate(plan)
        return self._assemble(user, query, plan, outcome, derivation,
                              hit)

    def _derive_degraded(
        self, user: str, plan: PSJQuery, floor: int, reason: str,
    ) -> Tuple[MaskDerivation, bool]:
        """A derivation at rung ``floor`` or below, preferring a live
        cached full-fidelity entry (which costs nothing to serve)."""
        cache = self._derivation_cache
        if cache.enabled:
            key = self._plan_key(plan)
            token = self.catalog.cache_token(user)
            try:
                cached = cache.get(user, key, token)
            except ReproError:
                if not self.config.fail_closed:
                    raise
                cached = None
            if self._valid_cached(cached):
                assert isinstance(cached, MaskDerivation)
                return cached, True
        if floor >= EMPTY_LEVEL:
            return empty_derivation(
                plan, self.database.schema, reason=reason
            ), False
        rung = rung_config(self.config, floor)
        assert rung is not None
        derivation = self._derive_uncached(user, plan, config=rung)
        # derive_mask_resilient reports the rung relative to the
        # configuration it was handed; rungs compose by max, so the
        # absolute level is max(floor, relative) — except the empty
        # floor, which is already absolute.
        if derivation.degradation_level < EMPTY_LEVEL:
            derivation.degradation_level = max(
                floor, derivation.degradation_level
            )
        if derivation.degradation_reason is None:
            derivation.degradation_reason = reason
        # Degraded masks are never cached (see _derive_plan).
        return derivation, False

    def prepare(self, query: Union[Query, str]) -> Query:
        """Parse and plan ``query`` without touching any data.

        The serving layer's front door: malformed or unsafe statements
        fail *here*, synchronously on the submitting thread, before a
        request consumes a queue slot — so worker threads only ever
        see statements that are known to compile (the plan memo keeps
        the repeated compile free).
        """
        parsed = self._parse_query(query, "prepare")
        self._compile(parsed)
        return parsed

    def deny(self, user: str, query: Union[Query, str],
             reason: str) -> AuthorizedAnswer:
        """An audited, empty-mask denial of ``query``.

        Unlike :meth:`authorize_degraded` at the EMPTY floor, this
        never consults the derivation cache and never evaluates the
        query: the cost is bounded by plan compilation (memoized) and
        the answer is guaranteed empty.  The serving layer uses it for
        admission hard sheds and for failing one request closed after
        a worker-side fault.
        """
        parsed = self._parse_query(query, "deny")
        plan = self._compile(parsed)
        authorized = self._denied_answer(user, parsed, plan, reason)
        if self.audit is not None:
            self.audit.record(authorized)
        return authorized

    def derive(self, user: str,
               query: Union[Query, str]) -> MaskDerivation:
        """Derive the mask only (no data touched) — with full trace."""
        query = self._parse_query(query, "derive")
        plan = self._compile(query)
        derivation, _ = self._derive_plan(user, plan)
        return derivation

    def trace(self, user: str,
              query: Union[Query, str]) -> MaskDerivation:
        """A display-fidelity derivation: materializing product.

        The streaming product never materializes the rows Section 4.1
        would prune, so a streamed derivation cannot print the paper's
        pre-prune product table.  ``trace`` re-derives with
        ``streaming_product`` off — bypassing the derivation cache,
        which is keyed for the engine's own configuration — purely for
        explanation output; the final mask is identical either way.
        """
        query = self._parse_query(query, "trace")
        plan = self._compile(query)
        return self._derive_uncached(
            user, plan, config=self.config.but(streaming_product=False)
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_query(query: Union[Query, str], who: str) -> Query:
        if isinstance(query, str):
            parsed = parse_statement(query)
            if not isinstance(parsed, Query):
                raise ParseError(f"{who} expects a retrieve statement")
            return parsed
        return query

    def _compile(self, query: Query) -> PSJQuery:
        """Compile ``query`` with LRU memoization (the schema is
        immutable for the engine's lifetime, so plans never go stale).

        Compilation runs outside the memo lock; a racing thread at
        worst compiles the same plan twice and the second store wins —
        both plans are equal, so either may be served.
        """
        with self._memo_lock:
            plan = self._plan_cache.get(query)
            if plan is not None:
                self._plan_cache.move_to_end(query)
                return plan
        plan = compile_query(query, self.database.schema)
        with self._memo_lock:
            self._plan_cache[query] = plan
            while len(self._plan_cache) > self._plan_cache_capacity:
                self._plan_cache.popitem(last=False)
        return plan

    def _plan_key(self, plan: PSJQuery) -> PlanKey:
        """Canonical key of ``plan``, LRU-memoized like the plans."""
        with self._memo_lock:
            key = self._plan_key_cache.get(plan)
            if key is not None:
                self._plan_key_cache.move_to_end(plan)
                return key
        key = canonical_plan_key(plan, self.database.schema)
        with self._memo_lock:
            self._plan_key_cache[plan] = key
            while len(self._plan_key_cache) > self._plan_cache_capacity:
                self._plan_key_cache.popitem(last=False)
        return key

    def _assemble(self, user: str, query: Query, plan: PSJQuery,
                  outcome: ExecutionOutcome,
                  derivation: MaskDerivation,
                  hit: bool) -> AuthorizedAnswer:
        assert derivation.mask is not None
        answer = outcome.answer
        mask = Mask.from_table(derivation.mask)
        compiled = self._compiled_for(user, plan, derivation)
        if compiled is not None and self.config.columnar_masks:
            delivered = apply_mask_columnar(
                compiled, answer,
                drop_fully_masked=self.config.drop_fully_masked_rows,
                use_numpy=self.config.columnar_numpy,
            )
        elif compiled is not None:
            delivered = compiled.apply(
                answer,
                drop_fully_masked=self.config.drop_fully_masked_rows,
            )
        else:
            delivered = mask.apply(
                answer,
                drop_fully_masked=self.config.drop_fully_masked_rows,
            )
        return AuthorizedAnswer(
            user=user,
            query=query,
            plan=plan,
            answer=answer,
            mask=mask,
            delivered=delivered,
            permits=infer_permits(mask),
            derivation=derivation,
            cache_hit=hit,
            degradation_level=derivation.degradation_level,
            # A mask that fell all the way to empty is a fail-closed
            # denial; partial rungs are reported via degradation_level
            # alone.
            error=(
                derivation.degradation_reason
                if derivation.degradation_level == EMPTY_LEVEL
                else None
            ),
            backend_used=outcome.backend_used,
            failover_reason=outcome.failover_reason,
        )

    def _compiled_for(self, user: str, plan: PSJQuery,
                      derivation: MaskDerivation
                      ) -> Optional[CompiledMask]:
        """The compiled application kernel for ``derivation``'s mask.

        Amortized exactly like the derivation itself: the compiled mask
        is attached to the derivation's cache entry under the same
        catalog token, so a cache hit skips compilation and an
        invalidation drops both together.  Any failure — lookup, store,
        or compilation — degrades to the interpreted ``Mask.apply``
        (``None``), which is always correct; dev mode re-raises.
        """
        if not self.config.compiled_masks or derivation.mask is None:
            return None
        cache = self._derivation_cache
        key = token = None
        if cache.enabled and derivation.degradation_level == 0:
            try:
                key = self._plan_key(plan)
                token = self.catalog.cache_token(user)
                compiled = cache.get_compiled(user, key, token)
            except ReproError:
                if not self.config.fail_closed:
                    raise
                key = token = compiled = None
            if isinstance(compiled, CompiledMask):
                return compiled
        try:
            compiled = compile_mask(Mask.from_table(derivation.mask))
        except ReproError:
            if not self.config.fail_closed:
                raise
            return None
        if key is not None and token is not None:
            try:
                cache.put_compiled(user, key, token, compiled)
            except ReproError:
                if not self.config.fail_closed:
                    raise
        return compiled

    def _failed_answer(self, user: str, query: Query, plan: PSJQuery,
                       error: Exception) -> AuthorizedAnswer:
        """The fail-closed fallback: nothing delivered, error recorded."""
        return self._denied_answer(
            user, query, plan, f"{type(error).__name__}: {error}"
        )

    def _denied_answer(self, user: str, query: Query, plan: PSJQuery,
                       reason: str) -> AuthorizedAnswer:
        """An empty-mask answer: nothing delivered, ``reason`` recorded.

        Built from parts that cannot themselves fail — an empty mask
        over the plan's output columns and an empty answer relation —
        so the fail-closed boundary never recurses into another
        failure.  Also the shape of an admission-control hard shed.
        """
        derivation = empty_derivation(
            plan, self.database.schema, reason=reason
        )
        assert derivation.mask is not None
        return AuthorizedAnswer(
            user=user,
            query=query,
            plan=plan,
            answer=Relation(
                plan.output_columns(self.database.schema), (),
                validate=False,
            ),
            mask=Mask.from_table(derivation.mask),
            delivered=(),
            permits=(),
            derivation=derivation,
            cache_hit=False,
            degradation_level=EMPTY_LEVEL,
            error=reason,
        )

    def _derive_plan(self, user: str,
                     plan: PSJQuery) -> Tuple[MaskDerivation, bool]:
        """Cached mask derivation; the bool reports a cache hit.

        The cache is treated as an untrusted accelerator: a lookup
        failure degrades to a fresh derivation, a stored entry that is
        no longer a well-formed derivation is discarded as a miss, and
        a store failure loses only future hits — never the answer.
        """
        cache = self._derivation_cache
        if not cache.enabled:
            return self._derive_uncached(user, plan), False
        key = self._plan_key(plan)
        token = self.catalog.cache_token(user)
        try:
            cached = cache.get(user, key, token)
        except ReproError:
            if not self.config.fail_closed:
                raise
            cached = None
        if self._valid_cached(cached):
            assert isinstance(cached, MaskDerivation)
            return cached, True
        derivation = self._derive_uncached(user, plan)
        if derivation.degradation_level == 0:
            # Degraded masks are transient by design: caching one would
            # keep serving the shrunken mask after the overload passed.
            try:
                cache.put(user, key, token, derivation)
            except ReproError:
                if not self.config.fail_closed:
                    raise
        return derivation, False

    @staticmethod
    def _valid_cached(cached: object) -> bool:
        """Structural validation of a cache entry before serving it."""
        return (
            isinstance(cached, MaskDerivation)
            and cached.mask is not None
        )

    def _derive_uncached(
        self, user: str, plan: PSJQuery,
        config: Optional[EngineConfig] = None,
    ) -> MaskDerivation:
        config = config if config is not None else self.config
        excuse = None
        if config.existential_closure:
            try:
                admissible = self.catalog.admissible_views(
                    user, plan.relation_names()
                )
                excuse = make_excuse(
                    self.catalog, admissible, plan, self.database.schema
                )
            except ReproError:
                # The excuse only ever *keeps* rows the pruning would
                # drop, so deriving without it stays sound (the mask
                # shrinks).  Dev mode wants the traceback instead.
                if not config.fail_closed:
                    raise
                excuse = None
        try:
            selfjoin_pool = self._selfjoin_pool(user)
        except ReproError:
            # Without the memoized pool derive_mask recomputes the
            # closure itself; a persistent fault then degrades down
            # the ladder to the no-self-join rung.
            if not config.fail_closed:
                raise
            selfjoin_pool = None
        return derive_mask_resilient(
            plan,
            self.database.schema,
            self.catalog,
            user,
            config,
            excuse=excuse,
            selfjoin_pool=selfjoin_pool,
        )

    # ------------------------------------------------------------------
    # self-join cache
    # ------------------------------------------------------------------

    def _selfjoin_pool(
        self, user: str
    ) -> Optional[Dict[str, Tuple[MetaTuple, ...]]]:
        if not self.config.self_joins:
            return None
        token = self.catalog.cache_token(user)
        with self._memo_lock:
            cached = self._selfjoin_cache.get(user)
            if cached is not None and cached[0] == token:
                return cached[1]

        # Computed outside the lock: closures can be expensive and
        # recomputation is idempotent — concurrent threads at worst
        # duplicate work, and whichever stores last wins.  The token
        # was captured *before* the catalog reads below, so a racing
        # revoke leaves a pool that is stored under a stale token and
        # recomputed on the next call.
        pool: Dict[str, Tuple[MetaTuple, ...]] = {}
        permitted = self.catalog.views_of(user)
        store = self.catalog.store_for(permitted)
        for relation in self.database.schema.names():
            # The closure is computed once over all of the user's
            # views; derive_mask filters out combinations involving
            # views that are not admissible for a particular query.
            tuples = self.catalog.tuples_for(relation, permitted)
            pool[relation] = selfjoin_closure(
                self.database.schema.get(relation), tuples, store,
                self.config.max_selfjoin_rounds,
                self.config.max_selfjoin_tuples,
            )
        with self._memo_lock:
            self._selfjoin_cache[user] = (token, pool)
        return pool
