"""The authorization engine: Figure 2 made executable.

``authorize(user, query)`` runs the query's plan twice — over the
actual relations (yielding the answer A) and over the meta-relations
(yielding the mask A') — applies the mask to the answer, and attaches
the inferred permit statements.  Users direct queries at the actual
database; views never act as access windows.

Two derived artifacts are memoized, following Section 5's advice that
derived results "should be stored with the original view definitions,
until these definitions are modified":

* per-user **self-join closures**, invalidated by the catalog's
  per-user cache token (a grant to one user no longer flushes
  another's closure);
* whole **mask derivations**, in a :class:`~repro.core.cache.DerivationCache`
  keyed by ``(user, canonical plan key)`` and guarded by the same
  token — see ``docs/CACHING.md`` for keys, invalidation rules, and
  the transparency guarantee.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.audit import AuditLog

from repro.algebra.database import Database
from repro.algebra.expression import PSJQuery
from repro.algebra.optimize import evaluate_optimized
from repro.algebra.relation import Relation
from repro.calculus.ast import Query
from repro.calculus.to_algebra import compile_query
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.core.answer import AuthorizedAnswer
from repro.core.cache import CacheStats, DerivationCache
from repro.core.mask import Mask
from repro.core.statements import InferredPermit, infer_permits
from repro.errors import ParseError
from repro.extensions.closure import make_excuse
from repro.lang.parser import parse_statement
from repro.meta.catalog import PermissionCatalog
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.canonical import PlanKey, canonical_plan_key
from repro.metaalgebra.plan import MaskDerivation, derive_mask
from repro.metaalgebra.selfjoin import selfjoin_closure


class AuthorizationEngine:
    """Binds a database, a permission catalog, and a configuration."""

    def __init__(
        self,
        database: Database,
        catalog: Optional[PermissionCatalog] = None,
        config: EngineConfig = DEFAULT_CONFIG,
        audit: Optional["AuditLog"] = None,
    ):
        self.database = database
        self.catalog = catalog or PermissionCatalog(database.schema)
        self.config = config
        #: Optional audit trail; every authorize() appends a record.
        self.audit = audit
        # Per-user self-join closures, each tagged with the catalog
        # token it was computed under: "once generated, they should be
        # stored with the original view definitions, until these
        # definitions are modified."
        self._selfjoin_cache: Dict[
            str, Tuple[Tuple[int, int], Dict[str, Tuple[MetaTuple, ...]]]
        ] = {}
        #: LRU cache of mask derivations (see repro.core.cache).
        self._derivation_cache = DerivationCache(
            config.derivation_cache_size
        )
        # Compiled plans and canonical keys are pure functions of the
        # (immutable) schema, so they are memoized unconditionally;
        # repeated statements skip the compiler entirely.
        self._plan_cache: "OrderedDict[Query, PSJQuery]" = OrderedDict()
        self._plan_key_cache: "OrderedDict[PSJQuery, PlanKey]" = \
            OrderedDict()
        self._plan_cache_capacity = max(
            512, 4 * max(config.derivation_cache_size, 0)
        )

    # ------------------------------------------------------------------
    # convenience pass-throughs
    # ------------------------------------------------------------------

    def define_view(self, view) -> None:
        """Define a view (AST or surface text)."""
        self.catalog.define_view(view)

    def permit(self, view_name: str, user: str) -> None:
        """Grant ``user`` access to ``view_name``."""
        self.catalog.permit(view_name, user)

    def revoke(self, view_name: str, user: str) -> None:
        """Withdraw a grant."""
        self.catalog.revoke(view_name, user)

    def stats(self) -> CacheStats:
        """Running statistics of the derivation cache."""
        return self._derivation_cache.stats

    # ------------------------------------------------------------------
    # the authorization process (Section 5)
    # ------------------------------------------------------------------

    def authorize(self, user: str,
                  query: Union[Query, str]) -> AuthorizedAnswer:
        """Answer ``query`` for ``user``, masked to their permissions."""
        query = self._parse_query(query, "authorize")
        plan = self._compile(query)
        answer = evaluate_optimized(plan, self.database)
        derivation, hit = self._derive_plan(user, plan)
        authorized = self._assemble(user, query, plan, answer,
                                    derivation, hit)
        if self.audit is not None:
            self.audit.record(authorized)
        return authorized

    def authorize_batch(
        self, user: str, queries: Iterable[Union[Query, str]]
    ) -> Tuple[AuthorizedAnswer, ...]:
        """Authorize many queries for one user, sharing derived work.

        Statements are parsed once per distinct text, compiled once per
        distinct query, and the mask derivation, answer evaluation,
        masking, and permit inference run once per distinct *canonical
        plan* — repeated or plan-equivalent requests reuse the batch's
        own memo (and the engine's derivation cache when enabled).  The
        result is element-wise equal to looping ``authorize`` over
        ``queries``; ``tests/test_derivation_cache.py`` enforces that
        equality.
        """
        parsed: Dict[str, Query] = {}
        plans: Dict[Query, PSJQuery] = {}
        computed: Dict[PlanKey, Tuple[
            Relation, MaskDerivation, Mask, Tuple[Tuple, ...],
            Tuple[InferredPermit, ...],
        ]] = {}

        answers: List[AuthorizedAnswer] = []
        for item in queries:
            if isinstance(item, str):
                query = parsed.get(item)
                if query is None:
                    query = self._parse_query(item, "authorize_batch")
                    parsed[item] = query
            else:
                query = item
            plan = plans.get(query)
            if plan is None:
                plan = self._compile(query)
                plans[query] = plan

            key = self._plan_key(plan)
            memo = computed.get(key)
            if memo is None:
                answer = evaluate_optimized(plan, self.database)
                derivation, hit = self._derive_plan(user, plan)
                authorized = self._assemble(user, query, plan, answer,
                                            derivation, hit)
                computed[key] = (
                    answer, derivation, authorized.mask,
                    authorized.delivered, authorized.permits,
                )
            else:
                answer, derivation, mask, delivered, permits = memo
                authorized = AuthorizedAnswer(
                    user=user,
                    query=query,
                    plan=plan,
                    answer=answer,
                    mask=mask,
                    delivered=delivered,
                    permits=permits,
                    derivation=derivation,
                    cache_hit=True,
                )
            if self.audit is not None:
                self.audit.record(authorized)
            answers.append(authorized)
        return tuple(answers)

    def derive(self, user: str,
               query: Union[Query, str]) -> MaskDerivation:
        """Derive the mask only (no data touched) — with full trace."""
        query = self._parse_query(query, "derive")
        plan = self._compile(query)
        derivation, _ = self._derive_plan(user, plan)
        return derivation

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_query(query: Union[Query, str], who: str) -> Query:
        if isinstance(query, str):
            parsed = parse_statement(query)
            if not isinstance(parsed, Query):
                raise ParseError(f"{who} expects a retrieve statement")
            return parsed
        return query

    def _compile(self, query: Query) -> PSJQuery:
        """Compile ``query`` with LRU memoization (the schema is
        immutable for the engine's lifetime, so plans never go stale)."""
        plan = self._plan_cache.get(query)
        if plan is not None:
            self._plan_cache.move_to_end(query)
            return plan
        plan = compile_query(query, self.database.schema)
        self._plan_cache[query] = plan
        while len(self._plan_cache) > self._plan_cache_capacity:
            self._plan_cache.popitem(last=False)
        return plan

    def _plan_key(self, plan: PSJQuery) -> PlanKey:
        """Canonical key of ``plan``, LRU-memoized like the plans."""
        key = self._plan_key_cache.get(plan)
        if key is not None:
            self._plan_key_cache.move_to_end(plan)
            return key
        key = canonical_plan_key(plan, self.database.schema)
        self._plan_key_cache[plan] = key
        while len(self._plan_key_cache) > self._plan_cache_capacity:
            self._plan_key_cache.popitem(last=False)
        return key

    def _assemble(self, user: str, query: Query, plan: PSJQuery,
                  answer: Relation, derivation: MaskDerivation,
                  hit: bool) -> AuthorizedAnswer:
        assert derivation.mask is not None
        mask = Mask.from_table(derivation.mask)
        delivered = mask.apply(
            answer, drop_fully_masked=self.config.drop_fully_masked_rows
        )
        return AuthorizedAnswer(
            user=user,
            query=query,
            plan=plan,
            answer=answer,
            mask=mask,
            delivered=delivered,
            permits=infer_permits(mask),
            derivation=derivation,
            cache_hit=hit,
        )

    def _derive_plan(self, user: str,
                     plan: PSJQuery) -> Tuple[MaskDerivation, bool]:
        """Cached mask derivation; the bool reports a cache hit."""
        cache = self._derivation_cache
        if not cache.enabled:
            return self._derive_uncached(user, plan), False
        key = self._plan_key(plan)
        token = self.catalog.cache_token(user)
        cached = cache.get(user, key, token)
        if cached is not None:
            return cached, True
        derivation = self._derive_uncached(user, plan)
        cache.put(user, key, token, derivation)
        return derivation, False

    def _derive_uncached(self, user: str,
                         plan: PSJQuery) -> MaskDerivation:
        excuse = None
        if self.config.existential_closure:
            admissible = self.catalog.admissible_views(
                user, plan.relation_names()
            )
            excuse = make_excuse(
                self.catalog, admissible, plan, self.database.schema
            )
        return derive_mask(
            plan,
            self.database.schema,
            self.catalog,
            user,
            self.config,
            excuse=excuse,
            selfjoin_pool=self._selfjoin_pool(user),
        )

    # ------------------------------------------------------------------
    # self-join cache
    # ------------------------------------------------------------------

    def _selfjoin_pool(
        self, user: str
    ) -> Optional[Dict[str, Tuple[MetaTuple, ...]]]:
        if not self.config.self_joins:
            return None
        token = self.catalog.cache_token(user)
        cached = self._selfjoin_cache.get(user)
        if cached is not None and cached[0] == token:
            return cached[1]

        pool: Dict[str, Tuple[MetaTuple, ...]] = {}
        permitted = self.catalog.views_of(user)
        store = self.catalog.store_for(permitted)
        for relation in self.database.schema.names():
            # The closure is computed once over all of the user's
            # views; derive_mask filters out combinations involving
            # views that are not admissible for a particular query.
            tuples = self.catalog.tuples_for(relation, permitted)
            pool[relation] = selfjoin_closure(
                self.database.schema.get(relation), tuples, store,
                self.config.max_selfjoin_rounds,
                self.config.max_selfjoin_tuples,
            )
        self._selfjoin_cache[user] = (token, pool)
        return pool
