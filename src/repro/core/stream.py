"""Chunk-streamed authorized answers: bounded-memory delivery.

:class:`AnswerStream` is the iterator-mode counterpart of
:class:`~repro.core.answer.AuthorizedAnswer`, produced by
:meth:`repro.core.engine.AuthorizationEngine.authorize_stream`.  The
*authorization decision* is identical — same mask derivation, same
inferred permits, same fail-closed contract — but the answer side is a
pipeline: evaluation yields deduplicated rows in chunks
(:func:`repro.algebra.optimize.iter_evaluate_optimized` on the Python
backend, materialize-and-chunk elsewhere), each chunk is masked by the
columnar kernel, delivered, and dropped.  A 10^7-row answer therefore
never exists in memory at once; what is retained is the hash-join
build sides, the dedupe set, and one chunk.

The stream accounts delivery statistics as it goes, so after
exhaustion :meth:`AnswerStream.stats` reports exactly what
``AuthorizedAnswer.stats()`` would have for the same request — over
the rows *actually delivered*: a stream that failed closed mid-way (or
was abandoned by its consumer) reports the prefix it delivered, with
:attr:`AnswerStream.error` carrying the failure.  The audit trail gets
one record per stream, written when the stream ends.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.algebra.expression import PSJQuery
from repro.algebra.relation import Row
from repro.calculus.ast import Query
from repro.core.answer import DeliveryStats
from repro.core.mask import MASKED, Mask
from repro.core.statements import InferredPermit

#: One delivered chunk: answer tuples whose hidden cells hold the
#: ``MASKED`` sentinel (the streaming unit of ``Mask.apply`` output).
MaskedChunk = Tuple[Tuple, ...]


class AnswerStream:
    """A chunk-streamed authorized answer.

    Iterate to receive masked chunks; each chunk is a tuple of answer
    rows with withheld cells replaced by the ``MASKED`` sentinel
    (exactly :meth:`repro.core.mask.Mask.apply` output, cut into
    ``chunk_size`` pieces — byte-identity is property-tested in
    ``tests/test_stream.py``).  The authorization metadata — mask,
    permits, degradation level, backend provenance — is available
    immediately; delivery statistics accumulate as chunks are
    consumed and are final once :attr:`finished` is True.

    A denied or failed request yields an empty stream with
    :attr:`error` set (the fail-closed shape).  A mid-stream failure
    ends the stream early — already-delivered chunks stand, the
    remainder is withheld — and sets :attr:`error` likewise.
    """

    __slots__ = (
        "user", "query", "plan", "mask", "permits", "chunk_size",
        "cache_hit", "degradation_level", "backend_used",
        "failover_reason", "error", "finished", "arity",
        "total_rows", "delivered_cells", "full_rows", "partial_rows",
        "masked_rows", "_chunks",
    )

    def __init__(
        self,
        user: str,
        query: Query,
        plan: PSJQuery,
        mask: Mask,
        permits: Tuple[InferredPermit, ...],
        chunk_size: int,
        arity: int,
        cache_hit: bool = False,
        degradation_level: int = 0,
        error: Optional[str] = None,
        backend_used: Optional[str] = None,
        failover_reason: Optional[str] = None,
    ) -> None:
        self.user = user
        self.query = query
        self.plan = plan
        self.mask = mask
        self.permits = permits
        self.chunk_size = chunk_size
        self.arity = arity
        self.cache_hit = cache_hit
        self.degradation_level = degradation_level
        #: Failure diagnostic: set up-front on a denial, or mid-stream
        #: when delivery failed closed after some chunks.
        self.error = error
        self.backend_used = backend_used
        self.failover_reason = failover_reason
        #: True once the stream ended (exhausted, failed, or closed);
        #: statistics are final from then on.
        self.finished = error is not None
        self.total_rows = 0
        self.delivered_cells = 0
        self.full_rows = 0
        self.partial_rows = 0
        self.masked_rows = 0
        #: The chunk source, attached by the engine after construction
        #: (the generator closes over this instance for accounting).
        self._chunks: Iterator[MaskedChunk] = iter(())

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[MaskedChunk]:
        return self._chunks

    def chunks(self) -> Iterator[MaskedChunk]:
        """The masked chunks, in answer order (alias of iteration)."""
        return self._chunks

    def rows(self) -> Iterator[Tuple]:
        """The masked rows one by one (flattens the chunks)."""
        for chunk in self._chunks:
            for row in chunk:
                yield row

    def close(self) -> None:
        """Abandon the stream: the remainder is never evaluated.

        Closing triggers the same end-of-stream bookkeeping as
        exhaustion — the audit record covers the delivered prefix.
        """
        close = getattr(self._chunks, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------
    # accounting (driven by the engine's chunk generator)
    # ------------------------------------------------------------------

    def account(self, chunk: MaskedChunk) -> None:
        """Fold one delivered chunk into the running statistics."""
        arity = self.arity
        self.total_rows += len(chunk)
        for row in chunk:
            hidden = row.count(MASKED)
            self.delivered_cells += arity - hidden
            if hidden == 0:
                self.full_rows += 1
            elif hidden == arity and arity > 0:
                self.masked_rows += 1
            else:
                self.partial_rows += 1

    def stats(self) -> DeliveryStats:
        """Delivery statistics over the chunks consumed *so far*.

        Identical to ``AuthorizedAnswer.stats()`` for the same request
        once the stream is exhausted.
        """
        return DeliveryStats(
            total_rows=self.total_rows,
            total_cells=self.total_rows * self.arity,
            delivered_cells=self.delivered_cells,
            full_rows=self.full_rows,
            partial_rows=self.partial_rows,
            masked_rows=self.masked_rows,
        )

    @property
    def failed_over(self) -> bool:
        """True when evaluation ran on the failover oracle."""
        return self.failover_reason is not None

    def __repr__(self) -> str:
        state = "finished" if self.finished else "open"
        return (
            f"AnswerStream(user={self.user!r}, {state}, "
            f"{self.total_rows} rows delivered)"
        )


__all__ = ["AnswerStream", "MaskedChunk"]
