"""Authorized answers: the engine's result object.

The front end of Section 6 returns "a derived relation, whose structure
corresponds to the request but whose tuples include only permitted
values, and a set of inferred permit statements describing the portion
delivered" — :class:`AuthorizedAnswer` is that pair, plus the raw
answer, the mask, the derivation trace, and delivery statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.algebra.expression import PSJQuery
from repro.algebra.relation import Relation
from repro.calculus.ast import Query
from repro.core.mask import MASKED, Mask
from repro.core.statements import InferredPermit
from repro.metaalgebra.ladder import DEGRADATION_LEVELS
from repro.metaalgebra.plan import MaskDerivation


@dataclass(frozen=True)
class DeliveryStats:
    """Cell- and row-level accounting of one delivery."""

    total_rows: int
    total_cells: int
    delivered_cells: int
    full_rows: int
    partial_rows: int
    masked_rows: int

    @property
    def delivered_fraction(self) -> float:
        if self.total_cells == 0:
            return 1.0
        return self.delivered_cells / self.total_cells


@dataclass(frozen=True)
class AuthorizedAnswer:
    """Everything the engine returns for one retrieve statement."""

    user: str
    query: Query
    plan: PSJQuery
    answer: Relation
    mask: Mask
    delivered: Tuple[Tuple, ...]
    permits: Tuple[InferredPermit, ...]
    derivation: MaskDerivation
    #: Whether the mask derivation was served from the engine's
    #: derivation cache (the answer itself is always evaluated fresh).
    cache_hit: bool = False
    #: Ladder rung the mask was derived at (0 = full fidelity; see
    #: ``repro.metaalgebra.ladder``).  Under overload the mask shrinks,
    #: never grows, so a degraded answer is still sound.
    degradation_level: int = 0
    #: Diagnostic behind a fail-closed denial; ``None`` when the
    #: request was processed normally.
    error: Optional[str] = None
    #: Which execution backend actually evaluated the answer.  Under
    #: failover this may differ from the configured backend; ``None``
    #: on denials that never reached evaluation.
    backend_used: Optional[str] = None
    #: Why evaluation moved off the configured backend (retry
    #: exhaustion, open circuit breaker, backend unavailable); ``None``
    #: when the configured backend answered.  The answer itself is
    #: identical either way — mask derivation is backend-independent.
    failover_reason: Optional[str] = None

    @property
    def failed_over(self) -> bool:
        """True when evaluation ran on the failover oracle."""
        return self.failover_reason is not None

    @property
    def degraded(self) -> bool:
        """True when the mask was derived below full fidelity."""
        return self.degradation_level > 0

    @property
    def degradation(self) -> str:
        """Human-readable rung name (``"full"`` … ``"empty"``)."""
        return DEGRADATION_LEVELS[self.degradation_level]

    @property
    def labels(self) -> Tuple[str, ...]:
        return self.answer.labels()

    @property
    def is_fully_delivered(self) -> bool:
        return all(
            all(value is not MASKED for value in row)
            for row in self.delivered
        ) and len(self.delivered) == self.answer.cardinality

    @property
    def is_fully_masked(self) -> bool:
        return all(
            all(value is MASKED for value in row) for row in self.delivered
        )

    def stats(self) -> DeliveryStats:
        total_rows = len(self.delivered)
        arity = self.answer.arity
        delivered_cells = 0
        full_rows = partial_rows = masked_rows = 0
        for row in self.delivered:
            visible = sum(1 for value in row if value is not MASKED)
            delivered_cells += visible
            if visible == arity:
                full_rows += 1
            elif visible == 0:
                masked_rows += 1
            else:
                partial_rows += 1
        return DeliveryStats(
            total_rows=total_rows,
            total_cells=total_rows * arity,
            delivered_cells=delivered_cells,
            full_rows=full_rows,
            partial_rows=partial_rows,
            masked_rows=masked_rows,
        )

    def render(self) -> str:
        """The delivered relation plus permit statements, as text."""
        lines = [self._render_table()]
        if self.permits:
            lines.append("")
            lines.extend(p.render() for p in self.permits)
        elif not self.mask.is_empty:
            lines.append("")
            lines.append("-- delivered in full, no permit statements required")
        return "\n".join(lines)

    def _render_table(self) -> str:
        labels = self.labels
        rows: List[Tuple[str, ...]] = [
            tuple(str(value) for value in row) for row in self.delivered
        ]
        widths = [len(label) for label in labels]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Tuple[str, ...]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        header = line(tuple(labels))
        rule = "-+-".join("-" * w for w in widths)
        body = [line(row) for row in rows]
        return "\n".join([header, rule] + body)

    def __str__(self) -> str:
        return self.render()
