"""The mask-derivation cache.

Section 5's cost model says authorization is dominated by running the
query plan over the meta-relations, and recommends storing derived
artifacts "with the original view definitions, until these definitions
are modified".  :class:`DerivationCache` extends that advice from
self-join closures to whole :class:`~repro.metaalgebra.plan.MaskDerivation`
results: an LRU map keyed by ``(user, canonical plan key)`` whose
entries carry the catalog *token* they were derived under.

**Transparency invariant.** A cached mask may be served only while the
catalog state it was derived from is current *for that user*.  Tokens
come from :meth:`repro.meta.catalog.PermissionCatalog.cache_token`:
``(definitions_version, grants_version(user))``.  Any ``view`` /
``drop`` bumps the definitions version (global invalidation); a
``permit`` / ``revoke`` bumps only the affected user's grants version,
so one user's mutation never flushes another's entries.  A stale entry
is discarded on lookup and counted as an invalidation — a cache that
survives a revoke would be a security hole, not a performance bug
(cf. Guarnieri et al., "Strong and Provably Secure Database Access
Control").  The differential and property suites in
``tests/test_derivation_cache.py`` and
``tests/property/test_cache_invalidation.py`` enforce the invariant.

**Thread safety.**  Every public method takes the cache's internal
lock, so lookups, stores, stats increments and LRU eviction are atomic
with respect to each other — the serving layer
(:mod:`repro.serving`) shares one cache between many worker threads.
The invariant survives concurrent mutation because tokens are captured
*before* a derivation starts: a revoke that lands mid-derivation bumps
the live token, so the entry stored afterwards (under the stale token)
can never be served.  ``tests/property/test_concurrent_cache.py``
exercises exactly these interleavings.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Protocol, Tuple

from repro.metaalgebra.canonical import PlanKey
from repro.metaalgebra.plan import MaskDerivation
from repro.testing.faults import maybe_corrupt, maybe_fault

#: Catalog state a cache entry was derived under:
#: ``(definitions_version, grants_version(user))``.
CacheToken = Tuple[int, int]


@dataclass
class CacheStats:
    """Running counters of one cache's behaviour.

    Attributes:
        hits: lookups served from a live entry.
        misses: lookups that found no entry (stale lookups count as
            both an invalidation and a miss).
        invalidations: entries discarded because their catalog token
            went stale.
        evictions: live entries dropped by the LRU bound.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @classmethod
    def merged(cls, parts: Iterable["CacheStats"]) -> "CacheStats":
        """Counter-wise sum of ``parts`` (shard aggregation)."""
        total = cls()
        for part in parts:
            total.hits += part.hits
            total.misses += part.misses
            total.invalidations += part.invalidations
            total.evictions += part.evictions
        return total

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (1.0 when nothing was looked up)."""
        if self.lookups == 0:
            return 1.0
        return self.hits / self.lookups

    def render(self) -> str:
        return (
            f"derivation cache: {self.hits} hits, {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), "
            f"{self.invalidations} invalidations, "
            f"{self.evictions} evictions"
        )

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class _Entry:
    token: CacheToken
    derivation: MaskDerivation
    #: Compiled mask-application kernel for the derivation's mask
    #: (``repro.core.compiled_mask``), attached lazily by the engine on
    #: first delivery.  It lives and dies with the entry: the same
    #: token guards it, so a grant or definition change that would
    #: invalidate the derivation invalidates the compiled matcher too.
    compiled: Optional[object] = None


class DerivationCacheLike(Protocol):
    """What the engine needs from a derivation cache.

    :class:`DerivationCache` is the reference implementation; the
    serving layer's lock-striped
    :class:`~repro.serving.shards.ShardedDerivationCache` implements
    the same surface over many internal shards.
    """

    @property
    def stats(self) -> CacheStats: ...  # noqa: E704

    @property
    def enabled(self) -> bool: ...  # noqa: E704

    def __len__(self) -> int: ...  # noqa: E704

    def get(self, user: str, plan_key: PlanKey,
            token: CacheToken) -> Optional[MaskDerivation]: ...  # noqa: E704

    def put(self, user: str, plan_key: PlanKey, token: CacheToken,
            derivation: MaskDerivation) -> None: ...  # noqa: E704

    def get_compiled(self, user: str, plan_key: PlanKey,
                     token: CacheToken) -> Optional[object]: ...  # noqa: E704

    def put_compiled(self, user: str, plan_key: PlanKey,
                     token: CacheToken,
                     compiled: object) -> None: ...  # noqa: E704

    def invalidate_user(self, user: str) -> None: ...  # noqa: E704

    def clear(self) -> None: ...  # noqa: E704

    def users(self) -> Tuple[str, ...]: ...  # noqa: E704


class DerivationCache:
    """LRU cache of mask derivations with version invalidation.

    Capacity 0 (or negative) disables the cache entirely: lookups
    return ``None`` without touching the statistics, stores are
    dropped.

    All public methods are atomic under one internal lock: statistics
    increments, the stale-entry discard inside :meth:`get`, and the
    store-plus-eviction inside :meth:`put` each happen as a unit, so
    the cache may be shared between threads (the serving layer does).
    Derivations themselves are computed outside the cache and never
    mutated after a store, so served references are safe to read
    without the lock.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, PlanKey], _Entry]" = \
            OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------

    def get(self, user: str, plan_key: PlanKey,
            token: CacheToken) -> Optional[MaskDerivation]:
        """The cached derivation, or ``None`` on miss/stale entry."""
        if not self.enabled:
            return None
        maybe_fault("cache.get")
        key = (user, plan_key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.token != token:
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
        # The engine revalidates what comes back (see
        # AuthorizationEngine._valid_cached): a corrupted entry is
        # treated as a miss, never served.
        return maybe_corrupt("cache.entry", entry.derivation)

    def put(self, user: str, plan_key: PlanKey, token: CacheToken,
            derivation: MaskDerivation) -> None:
        """Store ``derivation``, evicting least-recently-used entries."""
        if not self.enabled:
            return
        maybe_fault("cache.put")
        key = (user, plan_key)
        with self._lock:
            self._entries[key] = _Entry(token, derivation)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    # ------------------------------------------------------------------
    # compiled mask kernels (stored alongside the derivation)
    # ------------------------------------------------------------------

    def get_compiled(self, user: str, plan_key: PlanKey,
                     token: CacheToken) -> Optional[object]:
        """The compiled mask attached to a live entry, else ``None``.

        Deliberately side-effect free: no statistics, no LRU bump, no
        stale-entry eviction — the derivation lookup that precedes it
        already did all three.  The engine revalidates the type of what
        comes back before using it.
        """
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get((user, plan_key))
            if entry is None or entry.token != token:
                return None
            return entry.compiled

    def put_compiled(self, user: str, plan_key: PlanKey,
                     token: CacheToken, compiled: object) -> None:
        """Attach a compiled mask to the matching live entry.

        A no-op when the entry is missing or its token went stale — a
        compiled mask must never outlive the derivation it was built
        from.
        """
        if not self.enabled:
            return
        key = (user, plan_key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.token != token:
                return
            self._entries[key] = replace(entry, compiled=compiled)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def invalidate_user(self, user: str) -> None:
        """Eagerly drop every entry of ``user`` (token comparison makes
        this optional; provided for explicit flushes)."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == user]
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)

    def clear(self) -> None:
        """Drop every entry (counters survive)."""
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()

    def users(self) -> Tuple[str, ...]:
        """Distinct users with live entries (diagnostics)."""
        with self._lock:
            seen: Dict[str, None] = {}
            for user, _ in self._entries:
                seen.setdefault(user)
            return tuple(seen)
