"""Paper-style explanations of the authorization process.

``explain(engine, user, query)`` renders everything Section 5's
examples print — the plan, the pruned meta-relations, the self-join
yields, the meta-product after replications are removed, each selection
step, the projection, the final mask, the delivered relation and the
inferred permit statements — as one text document.  The CLI exposes it
as ``.explain``; tests and the examples use it for human-checkable
output.
"""

from __future__ import annotations

from typing import List, Union

from repro.calculus.ast import Query
from repro.core.engine import AuthorizationEngine
from repro.errors import ReproError
from repro.experiments.tables import (
    ascii_table,
    mask_table,
    pruned_meta_table,
)


def explain(engine: AuthorizationEngine, user: str,
            query: Union[Query, str]) -> str:
    """A full, paper-style trace of one authorization."""
    answer = engine.authorize(user, query)
    derivation = answer.derivation
    if derivation.streamed and derivation.degradation_level == 0:
        # The streaming product never materializes the pre-prune rows,
        # so re-derive (materializing, uncached) for the paper's full
        # product table; the mask is identical either way.
        try:
            derivation = engine.trace(user, answer.query)
        except ReproError:
            pass  # fall back to the streamed (post-prune) trace
    schema = engine.database.schema
    sections: List[str] = []

    def add(heading: str, body: str) -> None:
        sections.append(f"-- {heading} --\n{body}")

    add("query", str(answer.query))
    add("algebra plan (S)", answer.plan.describe(schema))
    add(
        "stage-one pruning",
        "admissible views for "
        f"{user}: {', '.join(derivation.admissible_views) or '(none)'}",
    )

    for relation in sorted(derivation.pruned_meta):
        tuples = derivation.pruned_meta[relation]
        labels = schema.get(relation).attribute_names
        if tuples:
            add(f"pruned {relation}'",
                pruned_meta_table(relation, labels, tuples))
        added = derivation.selfjoin_added.get(relation, ())
        if added:
            add(f"self-join yields in {relation}'",
                pruned_meta_table(relation, labels, added))

    add("meta-product after replications are removed",
        mask_table(derivation.raw_product, show_views=True))

    labels = [c.label for c in derivation.raw_product.columns]
    for step, table in derivation.after_selections:
        add(f"after selection {step.render(labels)}",
            mask_table(table, show_views=True))

    assert derivation.projected is not None and derivation.mask is not None
    add("after projection", mask_table(derivation.projected))
    add("the mask A'", mask_table(derivation.mask))
    add("delivered answer", answer.render())

    stats = answer.stats()
    add(
        "delivery statistics",
        ascii_table(
            ("total rows", "full", "partial", "masked",
             "cells delivered"),
            [(stats.total_rows, stats.full_rows, stats.partial_rows,
              stats.masked_rows,
              f"{stats.delivered_cells}/{stats.total_cells}")],
        ),
    )
    return "\n\n".join(sections)
