"""S7 — the authorization engine (the paper's contribution).

Masks and their application to answers, inferred permit statements,
authorized answers with delivery statistics, the engine tying the data
path and the meta path together (Figure 2), and the Section 6 front
end.
"""

from repro.core.answer import AuthorizedAnswer, DeliveryStats
from repro.core.audit import AuditLog, AuditRecord
from repro.core.cache import CacheStats, DerivationCache
from repro.core.compiled_mask import CompiledMask, compile_mask
from repro.core.engine import AuthorizationEngine
from repro.core.explain import explain
from repro.core.mask import (
    MASKED,
    Mask,
    MaskedValue,
    materialize_meta_tuple,
    meta_tuple_matches,
)
from repro.core.session import FrontEnd, FrontEndResult, Session
from repro.core.statements import (
    InferredPermit,
    infer_permits,
    render_permits,
)

__all__ = [
    "AuditLog",
    "AuditRecord",
    "AuthorizationEngine",
    "AuthorizedAnswer",
    "CacheStats",
    "CompiledMask",
    "DeliveryStats",
    "DerivationCache",
    "compile_mask",
    "FrontEnd",
    "FrontEndResult",
    "InferredPermit",
    "MASKED",
    "Mask",
    "MaskedValue",
    "Session",
    "explain",
    "infer_permits",
    "materialize_meta_tuple",
    "meta_tuple_matches",
    "render_permits",
]
