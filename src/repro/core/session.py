"""The database front end of Section 6.

"The user will define access authorization with permit statements, and
the system will insert automatically the appropriate meta-tuples into
the meta-relations.  In response to a retrieve statement, the user will
receive a derived relation ... and a set of inferred permit statements
describing the portion delivered.  Thus, the meta-relations and the
meta-tuple notation would be completely transparent, with all
user-system communication done with customary query language
statements."

:class:`FrontEnd` dispatches parsed statements against an engine;
:class:`Session` fixes the acting user.  Both are shared by the CLI and
the example programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.calculus.ast import Query, ViewDefinition
from repro.core.answer import AuthorizedAnswer
from repro.core.engine import AuthorizationEngine
from repro.errors import ReproError
from repro.lang.parser import (
    DeleteCommand,
    InsertCommand,
    ModifyCommand,
    PermitCommand,
    PermitViewCommand,
    RevokeCommand,
    parse_statement,
)


@dataclass
class FrontEndResult:
    """Outcome of one statement: a message, and the answer if any."""

    message: str
    answer: Optional[AuthorizedAnswer] = None

    def __str__(self) -> str:
        return self.message


class FrontEnd:
    """Statement dispatcher: views, grants, retrievals, and updates."""

    def __init__(self, engine: AuthorizationEngine,
                 strict_updates: bool = True) -> None:
        self.engine = engine
        from repro.extensions.updates import UpdateAuthorizer

        self.updates = UpdateAuthorizer(engine, strict=strict_updates)
        self._anonymous_counter = 0

    def _fresh_anonymous_view_name(self) -> str:
        while True:
            self._anonymous_counter += 1
            name = f"_P{self._anonymous_counter}"
            if not self.engine.catalog.has_view(name):
                return name

    def execute(self, statement: Union[str, ViewDefinition, Query,
                                       PermitCommand, RevokeCommand,
                                       InsertCommand, DeleteCommand,
                                       ModifyCommand],
                user: str) -> FrontEndResult:
        """Execute one statement on behalf of ``user``."""
        if isinstance(statement, str):
            statement = parse_statement(statement)

        if isinstance(statement, ViewDefinition):
            self.engine.define_view(statement)
            return FrontEndResult(f"view {statement.name} defined")

        if isinstance(statement, PermitCommand):
            for view_name in statement.views:
                for grantee in statement.users:
                    self.engine.permit(view_name, grantee)
            return FrontEndResult(
                f"permitted {', '.join(statement.views)} "
                f"to {', '.join(statement.users)}"
            )

        if isinstance(statement, PermitViewCommand):
            name = self._fresh_anonymous_view_name()
            self.engine.define_view(statement.as_view(name))
            for grantee in statement.users:
                self.engine.permit(name, grantee)
            return FrontEndResult(
                f"permitted anonymous view {name} "
                f"to {', '.join(statement.users)}"
            )

        if isinstance(statement, RevokeCommand):
            for view_name in statement.views:
                for grantee in statement.users:
                    self.engine.revoke(view_name, grantee)
            return FrontEndResult(
                f"revoked {', '.join(statement.views)} "
                f"from {', '.join(statement.users)}"
            )

        if isinstance(statement, InsertCommand):
            self.updates.insert(user, statement.relation, statement.values)
            return FrontEndResult(
                f"inserted 1 row into {statement.relation}"
            )

        if isinstance(statement, DeleteCommand):
            removed = self.updates.delete(
                user, statement.relation, statement.conditions
            )
            return FrontEndResult(
                f"deleted {removed} row(s) from {statement.relation}"
            )

        if isinstance(statement, ModifyCommand):
            changed = self.updates.modify(
                user, statement.relation, statement.conditions,
                dict(statement.updates),
            )
            return FrontEndResult(
                f"modified {changed} row(s) in {statement.relation}"
            )

        assert isinstance(statement, Query)
        answer = self.engine.authorize(user, statement)
        return FrontEndResult(answer.render(), answer)


class Session:
    """A front end bound to one user (the paper's interactive setting)."""

    def __init__(self, engine: AuthorizationEngine, user: str) -> None:
        self.front_end = FrontEnd(engine)
        self.user = user

    def execute(self, statement: Union[str, ViewDefinition, Query,
                                       PermitCommand, RevokeCommand]
                ) -> FrontEndResult:
        """Execute a statement as this session's user."""
        return self.front_end.execute(statement, self.user)

    def retrieve(self, text: str) -> AuthorizedAnswer:
        """Run a retrieve statement and return the authorized answer.

        Raises:
            ReproError: when the statement is not a retrieval or fails.
        """
        result = self.execute(text)
        if result.answer is None:
            raise ReproError("statement was not a retrieval")
        return result.answer
