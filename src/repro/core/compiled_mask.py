"""Compiled mask-application kernels (the online hot path).

``Mask.apply`` is the one per-request cost that scales with the answer:
the interpreted path re-derives each row's starred positions and
re-walks every mask row's cells for every answer tuple — an
O(|A| * |A'|) nested scan of interpreted work.  This module compiles a
:class:`~repro.core.mask.Mask` once into a specialized matcher so the
per-tuple work collapses to hash probes and precomputed checks:

* **constant cells** become an equality key.  Rows are grouped by the
  *positions* of their constant cells (their signature) and bucketed in
  a hash index keyed by the constant *values*; an answer tuple probes
  each signature once and never evaluates a row whose constants it
  cannot match.
* **variable cells** become precomputed equality-group position lists
  (one membership walk per repeated variable) plus per-variable
  interval checks hoisted out of the constraint store.
* the **constraint store** is consulted only when a row actually binds
  variables *and* carries variable-to-variable relations; rows whose
  store is provably unsatisfiable are dropped at compile time.
* rows that match unconditionally (no constants, no variables) are
  folded into a precomputed ``always_visible`` set, which also yields
  the ``covers_everything`` fast path: when the mask always exposes
  every column, ``apply`` returns the answer rows untouched.

Compilation is pure: the compiled matcher is differentially identical
to the interpreted ``Mask.apply`` / ``Mask.visible_positions`` (the
reference oracle), a property enforced by
``tests/property/test_compiled_mask.py`` across generated masks,
answers, blanks, repeated variables, and COMPARISON constraints.  The
engine stores compiled masks alongside derivations in the
:class:`~repro.core.cache.DerivationCache` under the same catalog
version token, so compilation is amortized exactly like derivation
(``docs/CACHING.md``), and ``EngineConfig.compiled_masks`` opts back
into the interpreted path for A/B benchmarking
(``docs/PERFORMANCE.md``).

On top of the row-at-a-time kernel this module provides the *columnar*
data plane (ROADMAP item 5): :func:`apply_mask_columnar` evaluates the
same compiled checks as per-column passes over the answer's
:meth:`~repro.algebra.relation.Relation.column_data` view — constant
signatures become one hash-probe sweep per column group, equality
groups one paired-column comparison pass, intervals one membership
pass with normalization hoisted — and :func:`iter_apply_chunked`
streams those passes over bounded chunks so a 10^7-row answer is
masked in O(chunk) memory.  Both are registered fast paths under the
same SL005 discipline, with the interpreted ``Mask.apply`` still the
oracle (``tests/property/test_columnar_relation.py``,
``tests/property/test_chunked_apply.py``).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.algebra.columnar import (
    DEFAULT_CHUNK_SIZE,
    columns_of,
    iter_chunks,
    numpy_or_none,
)
from repro.algebra.relation import Relation, Row
from repro.algebra.to_sql import MaskPredicateRow, MaskPredicateView
from repro.algebra.types import Value
from repro.core.mask import MASKED, Mask
from repro.meta.metatuple import MetaTuple
from repro.predicates.intervals import Interval
from repro.predicates.store import ConstraintStore

#: Per-column value sequences of one chunk (see ``columns_of``).
Columns = Tuple[Tuple[Value, ...], ...]


class CompiledRow:
    """One mask row, lowered to positional checks.

    The row's membership in the hash index already guarantees its
    constant cells match; what remains per tuple is the precomputed
    equality groups, the hoisted interval checks, and — only when the
    row's store relates variables to each other — the full
    ``satisfied_by`` residual check.
    """

    __slots__ = ("star_set", "eq_groups", "interval_checks",
                 "binding_spec", "store", "_members")

    def __init__(
        self,
        star_set: FrozenSet[int],
        eq_groups: Tuple[Tuple[int, ...], ...],
        interval_checks: Tuple[Tuple[int, Interval], ...],
        binding_spec: Optional[Tuple[Tuple[str, int], ...]],
        store: Optional[ConstraintStore],
    ) -> None:
        self.star_set = star_set
        self.eq_groups = eq_groups
        self.interval_checks = interval_checks
        self.binding_spec = binding_spec
        self.store = store
        self._members: Optional[
            Tuple[Tuple[int, Callable[[Value], bool]], ...]] = None

    def members(self) -> Tuple[Tuple[int, Callable[[Value], bool]], ...]:
        """Interval checks as compiled membership closures.

        :meth:`Interval.membership` hoists normalization out of the
        per-value test; built lazily so the row kernel (which calls
        ``Interval.contains`` directly) pays nothing for it.
        """
        members = self._members
        if members is None:
            members = tuple(
                (position, interval.membership())
                for position, interval in self.interval_checks
            )
            self._members = members
        return members

    def matches(self, values: Row) -> bool:
        """Does this row admit ``values``?  (Constants already probed.)"""
        for group in self.eq_groups:
            first = values[group[0]]
            for position in group[1:]:
                if values[position] != first:
                    return False
        for position, interval in self.interval_checks:
            if not interval.contains(values[position]):
                return False
        if self.binding_spec is not None:
            assert self.store is not None
            binding = {
                var: values[position]
                for var, position in self.binding_spec
            }
            return self.store.satisfied_by(binding)
        return True


class CompiledMask:
    """A mask lowered to a constant hash index plus compiled rows."""

    __slots__ = ("ncols", "always_visible", "groups", "covers_all",
                 "_masked_template", "_full_set", "_columnar")

    def __init__(self, ncols: int, always_visible: FrozenSet[int],
                 groups: Tuple[
                     Tuple[Tuple[int, ...],
                           Dict[Tuple, List[CompiledRow]]], ...]) -> None:
        self.ncols = ncols
        self.always_visible = always_visible
        self.groups = groups
        #: Every column is visible for every tuple: apply() may return
        #: the answer untouched (the ``covers_everything`` fast path,
        #: generalized to unions of unconditional rows).
        self.covers_all = ncols > 0 and len(always_visible) == ncols
        self._masked_template = (MASKED,) * ncols
        self._full_set = frozenset(range(ncols))
        self._columnar: Optional[_ColumnarPlan] = None

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------

    def visible_positions(self, values: Row) -> FrozenSet[int]:
        """Columns of ``values`` that may be delivered.

        Differentially identical to
        :meth:`repro.core.mask.Mask.visible_positions`.
        """
        if self.covers_all:
            return self._full_set
        visible = set(self.always_visible)
        ncols = self.ncols
        for positions, buckets in self.groups:
            rows = buckets.get(tuple(values[p] for p in positions))
            if not rows:
                continue
            for row in rows:
                if row.star_set <= visible:
                    continue
                if row.matches(values):
                    visible |= row.star_set
                    if len(visible) == ncols:
                        return self._full_set
        return frozenset(visible)

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------

    def apply(self, answer: Relation,
              drop_fully_masked: bool = False) -> Tuple[Tuple, ...]:
        """Mask ``answer`` — byte-identical to ``Mask.apply``."""
        if self.covers_all:
            return tuple(tuple(values) for values in answer.rows)
        ncols = self.ncols
        delivered: List[Tuple] = []
        append = delivered.append
        masked_row = self._masked_template
        for values in answer.rows:
            visible = self.visible_positions(values)
            if not visible:
                if drop_fully_masked:
                    continue
                append(masked_row)
            elif len(visible) == ncols:
                append(tuple(values))
            else:
                append(tuple(
                    value if i in visible else MASKED
                    for i, value in enumerate(values)
                ))
        return tuple(delivered)

    # ------------------------------------------------------------------
    # the columnar kernel (vectorized column-wise passes)
    # ------------------------------------------------------------------

    def columnar_plan(self) -> "_ColumnarPlan":
        """The hash index re-keyed for column sweeps (built lazily).

        Single-position constant groups are re-keyed by the bare value
        so the per-value probe needs no tuple allocation, and rows
        with *no* constants are pulled out as broadcast rows — they
        are evaluated once per chunk as whole-column passes instead of
        being probed per row.
        """
        plan = self._columnar
        if plan is None:
            probes: List[Tuple[Tuple[int, ...],
                               Dict[Any, List[CompiledRow]]]] = []
            broadcast: List[CompiledRow] = []
            for positions, buckets in self.groups:
                if not positions:
                    for rows in buckets.values():
                        broadcast.extend(rows)
                elif len(positions) == 1:
                    probes.append((positions, {
                        key[0]: rows for key, rows in buckets.items()
                    }))
                else:
                    probes.append(
                        (positions, dict(buckets))
                    )
            plan = _ColumnarPlan(tuple(probes), tuple(broadcast))
            self._columnar = plan
        return plan

    def apply_rows(self, rows: Sequence[Row],
                   drop_fully_masked: bool = False,
                   use_numpy: bool = False) -> Tuple[Tuple, ...]:
        """Mask one chunk of (already deduplicated) rows columnar-ly.

        The chunk unit of :func:`iter_apply_chunked`; byte-identical
        to :meth:`apply` over a relation holding exactly ``rows``.
        """
        if not rows:
            return ()
        return self.apply_columns(
            columns_of(rows, self.ncols), len(rows),
            drop_fully_masked=drop_fully_masked, use_numpy=use_numpy,
        )

    def apply_columns(self, cols: Columns, nrows: int,
                      drop_fully_masked: bool = False,
                      use_numpy: bool = False) -> Tuple[Tuple, ...]:
        """Mask ``nrows`` rows given as per-column value sequences."""
        ncols = self.ncols
        if ncols == 0:
            # A zero-column row has no visible cells; the interpreted
            # path still delivers it as () unless dropping.
            return () if drop_fully_masked else ((),) * nrows
        if self.covers_all:
            return tuple(zip(*cols))
        vis = self._match_columns(cols, nrows, use_numpy)
        out_cols: List[Sequence[Value]] = []
        for c in range(ncols):
            flags = vis[c]
            if flags is None:
                out_cols.append(cols[c])
            else:
                out_cols.append([
                    value if flag else MASKED
                    for value, flag in zip(cols[c], flags)
                ])
        delivered = zip(*out_cols)
        if drop_fully_masked and not self.always_visible:
            keep = bytearray(nrows)
            for flags in vis:
                assert flags is not None
                for i, flag in enumerate(flags):
                    if flag:
                        keep[i] = 1
            return tuple(
                row for row, kept in zip(delivered, keep) if kept
            )
        return tuple(delivered)

    def _match_columns(
        self, cols: Columns, nrows: int, use_numpy: bool,
    ) -> List[Optional[bytearray]]:
        """Visibility flags per column (``None`` = always visible)."""
        vis: List[Optional[bytearray]] = [
            None if c in self.always_visible else bytearray(nrows)
            for c in range(self.ncols)
        ]
        plan = self.columnar_plan()
        numpy = numpy_or_none() if use_numpy else None
        arrays: Dict[int, Any] = {}

        # Constant-signature groups: one hash-probe sweep per group,
        # grouping hit indices by value so each matching mask row runs
        # its residual checks over exactly its candidate rows.
        for positions, probe in plan.probes:
            hits: Dict[Any, List[int]] = {}
            get = probe.get
            if len(positions) == 1:
                keys: Iterable[Any] = cols[positions[0]]
            else:
                keys = zip(*(cols[p] for p in positions))
            for i, key in enumerate(keys):
                if get(key) is None:
                    continue
                acc = hits.get(key)
                if acc is None:
                    hits[key] = acc = []
                acc.append(i)
            for key, candidates in hits.items():
                for row in probe[key]:
                    matched = _filter_candidates(row, cols, candidates)
                    if matched:
                        _mark(row.star_set, matched, vis)

        # Broadcast rows (no constants): whole-column passes.  Rows
        # sharing an equality-group shape share its scan via the cache
        # — the common many-intervals-over-one-join-shape masks then
        # pay the expensive pass once per chunk, not once per row.
        eq_cache: Dict[Tuple[Tuple[int, ...], ...], List[int]] = {}
        for row in plan.broadcast:
            matched_b = None
            if numpy is not None:
                matched_b = _broadcast_numpy(row, cols, nrows, numpy,
                                             arrays)
            if matched_b is None:
                matched_b = _broadcast_candidates(row, cols, nrows,
                                                  eq_cache)
            if matched_b:
                _mark(row.star_set, matched_b, vis)
        return vis


class _ColumnarPlan:
    """The hash index of a :class:`CompiledMask`, re-keyed for sweeps.

    ``probes`` holds the constant-signature groups (single-position
    groups keyed by bare value, multi-position by value tuple);
    ``broadcast`` holds the rows with no constant cells, which are
    evaluated as whole-column passes.
    """

    __slots__ = ("probes", "broadcast")

    def __init__(
        self,
        probes: Tuple[Tuple[Tuple[int, ...],
                            Dict[Any, List[CompiledRow]]], ...],
        broadcast: Tuple[CompiledRow, ...],
    ) -> None:
        self.probes = probes
        self.broadcast = broadcast


def _mark(star_set: FrozenSet[int], indices: Sequence[int],
          vis: List[Optional[bytearray]]) -> None:
    """Set the visibility flag of ``indices`` in each starred column."""
    for column in star_set:
        flags = vis[column]
        if flags is None:
            continue
        for i in indices:
            flags[i] = 1


def _filter_candidates(row: CompiledRow, cols: Columns,
                       candidates: List[int]) -> List[int]:
    """Narrow candidate row indices by ``row``'s residual checks.

    The columnar counterpart of :meth:`CompiledRow.matches`: equality
    groups first (cheap tuple compares), then the hoisted interval
    memberships, then — rarely — the full constraint-store residual.
    Each pass is a single comprehension over the surviving indices.
    """
    for group in row.eq_groups:
        base = cols[group[0]]
        for position in group[1:]:
            other = cols[position]
            candidates = [
                i for i in candidates if other[i] == base[i]
            ]
            if not candidates:
                return candidates
    for position, member in row.members():
        column = cols[position]
        candidates = [i for i in candidates if member(column[i])]
        if not candidates:
            return candidates
    if row.binding_spec is not None:
        store = row.store
        assert store is not None
        spec = row.binding_spec
        candidates = [
            i for i in candidates
            if store.satisfied_by(
                {var: cols[position][i] for var, position in spec}
            )
        ]
    return candidates


def _broadcast_candidates(
    row: CompiledRow, cols: Columns, nrows: int,
    eq_cache: Dict[Tuple[Tuple[int, ...], ...], List[int]],
) -> Sequence[int]:
    """Indices matched by a constant-free row, via full-column passes.

    The first equality-group scan is the expensive one (it touches
    every row of the chunk); rows sharing the same group shape share
    it through ``eq_cache``.
    """
    candidates: Optional[List[int]] = None
    if row.eq_groups:
        candidates = eq_cache.get(row.eq_groups)
        if candidates is None:
            for group in row.eq_groups:
                base = cols[group[0]]
                for position in group[1:]:
                    other = cols[position]
                    if candidates is None:
                        candidates = [
                            i for i, (a, b)
                            in enumerate(zip(base, other)) if a == b
                        ]
                    else:
                        candidates = [
                            i for i in candidates
                            if other[i] == base[i]
                        ]
            assert candidates is not None
            eq_cache[row.eq_groups] = candidates
    for position, member in row.members():
        column = cols[position]
        if candidates is None:
            candidates = [
                i for i, value in enumerate(column) if member(value)
            ]
        else:
            candidates = [
                i for i in candidates if member(column[i])
            ]
        if not candidates:
            return candidates
    if row.binding_spec is not None:
        store = row.store
        assert store is not None
        spec = row.binding_spec
        pool: Iterable[int] = (
            range(nrows) if candidates is None else candidates
        )
        candidates = [
            i for i in pool
            if store.satisfied_by(
                {var: cols[position][i] for var, position in spec}
            )
        ]
    if candidates is None:
        # No checks at all would have made the row unconditional (it
        # lives in always_visible); reaching here means every check
        # passed for every row of the chunk.
        return range(nrows)
    return candidates


def _broadcast_numpy(
    row: CompiledRow, cols: Columns, nrows: int, numpy: Any,
    arrays: Dict[int, Any],
) -> Optional[Sequence[int]]:
    """The vectorized variant of :func:`_broadcast_candidates`.

    Returns ``None`` when the row is not profitably or safely
    vectorizable — constraint-store residuals, or comparisons numpy
    refuses (mixed-type interval bounds) — in which case the caller
    falls back to the pure pass, whose semantics (including raised
    ``TypeError`` on genuinely incomparable values) are the reference.
    """
    if row.binding_spec is not None:
        return None
    if not row.eq_groups and not row.interval_checks:
        return None

    def arr(position: int) -> Any:
        cached = arrays.get(position)
        if cached is None:
            arrays[position] = cached = numpy.asarray(cols[position])
        return cached

    try:
        match = None
        for group in row.eq_groups:
            base = arr(group[0])
            for position in group[1:]:
                eq = base == arr(position)
                if eq is False or eq is True:
                    # dtype clash collapsed to a scalar: every pair
                    # compares equal/unequal wholesale.
                    eq = numpy.full(nrows, bool(eq))
                match = eq if match is None else (match & eq)
        for position, interval in row.interval_checks:
            norm = interval.normalized()
            column = arr(position)
            if norm.lo is not None:
                bound = (column > norm.lo) if norm.lo_strict \
                    else (column >= norm.lo)
                match = bound if match is None else (match & bound)
            if norm.hi is not None:
                bound = (column < norm.hi) if norm.hi_strict \
                    else (column <= norm.hi)
                match = bound if match is None else (match & bound)
            for value in norm.excluded:
                # Per-value != rather than isin: isin would promote
                # the excluded values to the column dtype (int 3 to
                # "3" against a string column), widening the
                # exclusion beyond the pure path's semantics.
                bound = column != value
                if bound is True or bound is False:
                    bound = numpy.full(nrows, bool(bound))
                match = bound if match is None else (match & bound)
    except TypeError:
        return None
    if match is None:  # pragma: no cover - guarded above
        return None
    result: List[int] = numpy.flatnonzero(match).tolist()
    return result


def _compile_row(meta: MetaTuple, store: ConstraintStore) -> Optional[
        Tuple[Tuple[Tuple[int, ...], Tuple], CompiledRow]]:
    """Lower one mask row; ``None`` when it can never deliver a cell.

    Returns ``((constant positions, constant values), compiled row)`` —
    the first element is the row's slot in the hash index.
    """
    star_set = frozenset(meta.starred_positions())
    if not star_set:
        return None  # delivers nothing; the interpreted path skips too

    const_positions: List[int] = []
    const_values: List = []
    var_positions: Dict[str, List[int]] = {}
    for position, cell in enumerate(meta.cells):
        if cell.is_constant:
            const_positions.append(position)
            const_values.append(cell.const_value)
        else:
            var = cell.var_name
            if var is not None:
                var_positions.setdefault(var, []).append(position)

    eq_groups = tuple(
        tuple(positions) for positions in var_positions.values()
        if len(positions) > 1
    )

    if not var_positions:
        # No variables: the interpreted matcher never consults the
        # store for such a row (an empty binding short-circuits to
        # True), so neither do we.
        return ((tuple(const_positions), tuple(const_values)),
                CompiledRow(star_set, eq_groups, (), None, None))

    if store.is_definitely_unsat():
        # Tightening never un-empties an interval, so this row can
        # never satisfy its constraints: drop it at compile time.
        return None

    interval_checks = tuple(
        (positions[0], interval)
        for var, positions in var_positions.items()
        for interval in (store.interval_for(var),)
        if not interval.is_top
    )
    if any(interval.is_empty() for _, interval in interval_checks):
        return None

    if store.relations():
        # Variable-to-variable constraints: fall back to the full
        # residual check, binding variables in first-occurrence order
        # exactly as the interpreted matcher does.
        binding_spec = tuple(
            (var, var_positions[var][0]) for var in meta.variables()
        )
        return ((tuple(const_positions), tuple(const_values)),
                CompiledRow(star_set, eq_groups, interval_checks,
                            binding_spec, store))

    # Interval-only store: the hoisted checks are the whole semantics,
    # provided no residual (unbound) variable is pinned to an empty
    # interval — that case is constant per row, so decide it now.
    residual = store.mentioned_vars() - set(var_positions)
    if any(store.interval_for(var).is_empty() for var in residual):
        return None
    return ((tuple(const_positions), tuple(const_values)),
            CompiledRow(star_set, eq_groups, interval_checks, None, None))


#: Sentinel distinguishing "row contributes nothing" (None) from "row
#: cannot be expressed as direct positional checks".
_NOT_EXTRACTABLE = object()


def _extract_row(meta: MetaTuple, store: ConstraintStore) -> object:
    """Lower one mask row to a :class:`MaskPredicateRow`.

    Returns ``None`` when the row can never deliver a cell (no stars,
    or provably unsatisfiable constraints), the sentinel
    ``_NOT_EXTRACTABLE`` when its semantics cannot be written as
    direct positional checks, and a :class:`MaskPredicateRow`
    otherwise.  The case analysis mirrors :func:`_compile_row` — the
    compiled in-Python matcher — except that variable-to-variable
    relations are extractable only when every store-mentioned variable
    is bound by a cell: then ``ConstraintStore.satisfied_by`` reduces
    to per-variable interval membership plus direct pairwise
    comparisons, which SQL can evaluate.  A relation touching an
    *unbound* variable keeps its existential reading and stays with
    the Python matcher.
    """
    star_set = frozenset(meta.starred_positions())
    if not star_set:
        return None

    const_checks: List[Tuple[int, Value]] = []
    var_positions: Dict[str, List[int]] = {}
    for position, cell in enumerate(meta.cells):
        value = cell.const_value
        if value is not None:
            const_checks.append((position, value))
        else:
            var = cell.var_name
            if var is not None:
                var_positions.setdefault(var, []).append(position)

    eq_groups = tuple(
        tuple(positions) for positions in var_positions.values()
        if len(positions) > 1
    )

    if not var_positions:
        # No variables: the interpreted matcher never consults the
        # store (an empty binding short-circuits to True).
        return MaskPredicateRow(
            star_set, tuple(const_checks), eq_groups, (), ()
        )

    if store.is_definitely_unsat():
        return None

    interval_checks = tuple(
        (positions[0], interval)
        for var, positions in var_positions.items()
        for interval in (store.interval_for(var),)
        if not interval.is_top
    )
    if any(interval.is_empty() for _, interval in interval_checks):
        return None

    relations = store.relations()
    if relations:
        if not store.mentioned_vars() <= frozenset(var_positions):
            return _NOT_EXTRACTABLE
        relation_checks = tuple(
            (var_positions[r.left][0], r.op, var_positions[r.right][0])
            for r in relations
        )
        return MaskPredicateRow(
            star_set, tuple(const_checks), eq_groups,
            interval_checks, relation_checks,
        )

    # Interval-only store: hoisted checks are the whole semantics
    # unless a residual (unbound) variable is pinned to an empty
    # interval, which kills the row outright.
    residual = store.mentioned_vars() - frozenset(var_positions)
    if any(store.interval_for(var).is_empty() for var in residual):
        return None
    return MaskPredicateRow(
        star_set, tuple(const_checks), eq_groups, interval_checks, ()
    )


def sql_predicate_view(mask: Mask) -> Optional[MaskPredicateView]:
    """The SQL-extractable predicate view of ``mask``, if one exists.

    ``None`` means some row's matching semantics cannot be expressed
    as direct positional checks (a variable-to-variable constraint
    mentioning a variable no cell binds); the SQL backends then fall
    back to evaluating the plan in SQL and applying the mask with the
    Python matchers.  When a view *is* returned, evaluating its
    predicates is differentially identical to the interpreted
    :meth:`repro.core.mask.Mask.visible_positions`
    (``tests/property/test_backend_parity.py``).
    """
    always_visible: set = set()
    rows: List[MaskPredicateRow] = []
    for mask_row in mask.rows:
        extracted = _extract_row(mask_row.meta, mask_row.store)
        if extracted is None:
            continue
        if extracted is _NOT_EXTRACTABLE:
            return None
        assert isinstance(extracted, MaskPredicateRow)
        if extracted.is_unconditional:
            always_visible |= extracted.star_set
        else:
            rows.append(extracted)
    kept = tuple(
        row for row in rows if not row.star_set <= always_visible
    )
    return MaskPredicateView(
        len(mask.columns), frozenset(always_visible), kept
    )


def compile_mask(mask: Mask) -> CompiledMask:
    """Compile ``mask`` into a :class:`CompiledMask` matcher."""
    ncols = len(mask.columns)
    always_visible: set = set()
    pending: List[Tuple[Tuple[Tuple[int, ...], Tuple], CompiledRow]] = []
    for mask_row in mask.rows:
        compiled = _compile_row(mask_row.meta, mask_row.store)
        if compiled is None:
            continue
        (positions, _), row = compiled
        if (not positions and not row.eq_groups
                and not row.interval_checks and row.binding_spec is None):
            # Unconditional: contributes its stars to every tuple.
            always_visible |= row.star_set
        else:
            pending.append(compiled)

    # The hash index: one bucket map per constant-position signature.
    # Rows whose stars are already always visible can never add a cell.
    index: Dict[Tuple[int, ...], Dict[Tuple, List[CompiledRow]]] = {}
    for (positions, values), row in pending:
        if row.star_set <= always_visible:
            continue
        buckets = index.setdefault(positions, {})
        buckets.setdefault(values, []).append(row)

    # Within each bucket, try rows with the largest starred sets first:
    # the visible union grows fastest, the subset skip fires more often,
    # and the all-columns early exit is reached sooner.  Order never
    # changes the union itself, so this is purely a scheduling choice.
    for buckets in index.values():
        for rows in buckets.values():
            rows.sort(key=lambda row: len(row.star_set), reverse=True)

    groups = tuple(index.items())
    return CompiledMask(ncols, frozenset(always_visible), groups)


def apply_mask_columnar(compiled: CompiledMask, answer: Relation,
                        drop_fully_masked: bool = False,
                        use_numpy: bool = False) -> Tuple[Tuple, ...]:
    """Mask ``answer`` through the columnar kernel.

    Byte-identical to :meth:`CompiledMask.apply` and to the
    interpreted oracle :meth:`repro.core.mask.Mask.apply`
    (``tests/property/test_columnar_relation.py``); only the scan
    order differs — per-column passes over the relation's cached
    :meth:`~repro.algebra.relation.Relation.column_data` view instead
    of per-row probes.  ``use_numpy`` additionally vectorizes the
    broadcast passes when numpy is importable (and silently does not
    when it isn't).
    """
    return compiled.apply_columns(
        answer.column_data(), len(answer.rows),
        drop_fully_masked=drop_fully_masked, use_numpy=use_numpy,
    )


def iter_apply_chunked(
    compiled: CompiledMask,
    rows: Iterable[Row],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    drop_fully_masked: bool = False,
    use_numpy: bool = False,
) -> Iterator[Tuple[Tuple, ...]]:
    """Mask a row stream chunk-by-chunk in O(chunk) memory.

    The concatenation of the yielded chunks is byte-identical to
    masking the materialized stream with :meth:`CompiledMask.apply` /
    ``Mask.apply`` — for any chunk size, including 1 and sizes beyond
    the stream length (``tests/property/test_chunked_apply.py``).
    ``rows`` must already be deduplicated (relation rows and the
    streaming evaluator's output both are); masking is per-row, so
    chunk boundaries cannot change any delivered cell.
    """
    for chunk in iter_chunks(rows, chunk_size):
        yield compiled.apply_rows(
            chunk, drop_fully_masked=drop_fully_masked,
            use_numpy=use_numpy,
        )
