"""Compiled mask-application kernels (the online hot path).

``Mask.apply`` is the one per-request cost that scales with the answer:
the interpreted path re-derives each row's starred positions and
re-walks every mask row's cells for every answer tuple — an
O(|A| * |A'|) nested scan of interpreted work.  This module compiles a
:class:`~repro.core.mask.Mask` once into a specialized matcher so the
per-tuple work collapses to hash probes and precomputed checks:

* **constant cells** become an equality key.  Rows are grouped by the
  *positions* of their constant cells (their signature) and bucketed in
  a hash index keyed by the constant *values*; an answer tuple probes
  each signature once and never evaluates a row whose constants it
  cannot match.
* **variable cells** become precomputed equality-group position lists
  (one membership walk per repeated variable) plus per-variable
  interval checks hoisted out of the constraint store.
* the **constraint store** is consulted only when a row actually binds
  variables *and* carries variable-to-variable relations; rows whose
  store is provably unsatisfiable are dropped at compile time.
* rows that match unconditionally (no constants, no variables) are
  folded into a precomputed ``always_visible`` set, which also yields
  the ``covers_everything`` fast path: when the mask always exposes
  every column, ``apply`` returns the answer rows untouched.

Compilation is pure: the compiled matcher is differentially identical
to the interpreted ``Mask.apply`` / ``Mask.visible_positions`` (the
reference oracle), a property enforced by
``tests/property/test_compiled_mask.py`` across generated masks,
answers, blanks, repeated variables, and COMPARISON constraints.  The
engine stores compiled masks alongside derivations in the
:class:`~repro.core.cache.DerivationCache` under the same catalog
version token, so compilation is amortized exactly like derivation
(``docs/CACHING.md``), and ``EngineConfig.compiled_masks`` opts back
into the interpreted path for A/B benchmarking
(``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.algebra.relation import Relation, Row
from repro.algebra.to_sql import MaskPredicateRow, MaskPredicateView
from repro.algebra.types import Value
from repro.core.mask import MASKED, Mask
from repro.meta.metatuple import MetaTuple
from repro.predicates.intervals import Interval
from repro.predicates.store import ConstraintStore


class CompiledRow:
    """One mask row, lowered to positional checks.

    The row's membership in the hash index already guarantees its
    constant cells match; what remains per tuple is the precomputed
    equality groups, the hoisted interval checks, and — only when the
    row's store relates variables to each other — the full
    ``satisfied_by`` residual check.
    """

    __slots__ = ("star_set", "eq_groups", "interval_checks",
                 "binding_spec", "store")

    def __init__(
        self,
        star_set: FrozenSet[int],
        eq_groups: Tuple[Tuple[int, ...], ...],
        interval_checks: Tuple[Tuple[int, Interval], ...],
        binding_spec: Optional[Tuple[Tuple[str, int], ...]],
        store: Optional[ConstraintStore],
    ) -> None:
        self.star_set = star_set
        self.eq_groups = eq_groups
        self.interval_checks = interval_checks
        self.binding_spec = binding_spec
        self.store = store

    def matches(self, values: Row) -> bool:
        """Does this row admit ``values``?  (Constants already probed.)"""
        for group in self.eq_groups:
            first = values[group[0]]
            for position in group[1:]:
                if values[position] != first:
                    return False
        for position, interval in self.interval_checks:
            if not interval.contains(values[position]):
                return False
        if self.binding_spec is not None:
            assert self.store is not None
            binding = {
                var: values[position]
                for var, position in self.binding_spec
            }
            return self.store.satisfied_by(binding)
        return True


class CompiledMask:
    """A mask lowered to a constant hash index plus compiled rows."""

    __slots__ = ("ncols", "always_visible", "groups", "covers_all",
                 "_masked_template", "_full_set")

    def __init__(self, ncols: int, always_visible: FrozenSet[int],
                 groups: Tuple[
                     Tuple[Tuple[int, ...],
                           Dict[Tuple, List[CompiledRow]]], ...]) -> None:
        self.ncols = ncols
        self.always_visible = always_visible
        self.groups = groups
        #: Every column is visible for every tuple: apply() may return
        #: the answer untouched (the ``covers_everything`` fast path,
        #: generalized to unions of unconditional rows).
        self.covers_all = ncols > 0 and len(always_visible) == ncols
        self._masked_template = (MASKED,) * ncols
        self._full_set = frozenset(range(ncols))

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------

    def visible_positions(self, values: Row) -> FrozenSet[int]:
        """Columns of ``values`` that may be delivered.

        Differentially identical to
        :meth:`repro.core.mask.Mask.visible_positions`.
        """
        if self.covers_all:
            return self._full_set
        visible = set(self.always_visible)
        ncols = self.ncols
        for positions, buckets in self.groups:
            rows = buckets.get(tuple(values[p] for p in positions))
            if not rows:
                continue
            for row in rows:
                if row.star_set <= visible:
                    continue
                if row.matches(values):
                    visible |= row.star_set
                    if len(visible) == ncols:
                        return self._full_set
        return frozenset(visible)

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------

    def apply(self, answer: Relation,
              drop_fully_masked: bool = False) -> Tuple[Tuple, ...]:
        """Mask ``answer`` — byte-identical to ``Mask.apply``."""
        if self.covers_all:
            return tuple(tuple(values) for values in answer.rows)
        ncols = self.ncols
        delivered: List[Tuple] = []
        append = delivered.append
        masked_row = self._masked_template
        for values in answer.rows:
            visible = self.visible_positions(values)
            if not visible:
                if drop_fully_masked:
                    continue
                append(masked_row)
            elif len(visible) == ncols:
                append(tuple(values))
            else:
                append(tuple(
                    value if i in visible else MASKED
                    for i, value in enumerate(values)
                ))
        return tuple(delivered)


def _compile_row(meta: MetaTuple, store: ConstraintStore) -> Optional[
        Tuple[Tuple[Tuple[int, ...], Tuple], CompiledRow]]:
    """Lower one mask row; ``None`` when it can never deliver a cell.

    Returns ``((constant positions, constant values), compiled row)`` —
    the first element is the row's slot in the hash index.
    """
    star_set = frozenset(meta.starred_positions())
    if not star_set:
        return None  # delivers nothing; the interpreted path skips too

    const_positions: List[int] = []
    const_values: List = []
    var_positions: Dict[str, List[int]] = {}
    for position, cell in enumerate(meta.cells):
        if cell.is_constant:
            const_positions.append(position)
            const_values.append(cell.const_value)
        else:
            var = cell.var_name
            if var is not None:
                var_positions.setdefault(var, []).append(position)

    eq_groups = tuple(
        tuple(positions) for positions in var_positions.values()
        if len(positions) > 1
    )

    if not var_positions:
        # No variables: the interpreted matcher never consults the
        # store for such a row (an empty binding short-circuits to
        # True), so neither do we.
        return ((tuple(const_positions), tuple(const_values)),
                CompiledRow(star_set, eq_groups, (), None, None))

    if store.is_definitely_unsat():
        # Tightening never un-empties an interval, so this row can
        # never satisfy its constraints: drop it at compile time.
        return None

    interval_checks = tuple(
        (positions[0], interval)
        for var, positions in var_positions.items()
        for interval in (store.interval_for(var),)
        if not interval.is_top
    )
    if any(interval.is_empty() for _, interval in interval_checks):
        return None

    if store.relations():
        # Variable-to-variable constraints: fall back to the full
        # residual check, binding variables in first-occurrence order
        # exactly as the interpreted matcher does.
        binding_spec = tuple(
            (var, var_positions[var][0]) for var in meta.variables()
        )
        return ((tuple(const_positions), tuple(const_values)),
                CompiledRow(star_set, eq_groups, interval_checks,
                            binding_spec, store))

    # Interval-only store: the hoisted checks are the whole semantics,
    # provided no residual (unbound) variable is pinned to an empty
    # interval — that case is constant per row, so decide it now.
    residual = store.mentioned_vars() - set(var_positions)
    if any(store.interval_for(var).is_empty() for var in residual):
        return None
    return ((tuple(const_positions), tuple(const_values)),
            CompiledRow(star_set, eq_groups, interval_checks, None, None))


#: Sentinel distinguishing "row contributes nothing" (None) from "row
#: cannot be expressed as direct positional checks".
_NOT_EXTRACTABLE = object()


def _extract_row(meta: MetaTuple, store: ConstraintStore) -> object:
    """Lower one mask row to a :class:`MaskPredicateRow`.

    Returns ``None`` when the row can never deliver a cell (no stars,
    or provably unsatisfiable constraints), the sentinel
    ``_NOT_EXTRACTABLE`` when its semantics cannot be written as
    direct positional checks, and a :class:`MaskPredicateRow`
    otherwise.  The case analysis mirrors :func:`_compile_row` — the
    compiled in-Python matcher — except that variable-to-variable
    relations are extractable only when every store-mentioned variable
    is bound by a cell: then ``ConstraintStore.satisfied_by`` reduces
    to per-variable interval membership plus direct pairwise
    comparisons, which SQL can evaluate.  A relation touching an
    *unbound* variable keeps its existential reading and stays with
    the Python matcher.
    """
    star_set = frozenset(meta.starred_positions())
    if not star_set:
        return None

    const_checks: List[Tuple[int, Value]] = []
    var_positions: Dict[str, List[int]] = {}
    for position, cell in enumerate(meta.cells):
        value = cell.const_value
        if value is not None:
            const_checks.append((position, value))
        else:
            var = cell.var_name
            if var is not None:
                var_positions.setdefault(var, []).append(position)

    eq_groups = tuple(
        tuple(positions) for positions in var_positions.values()
        if len(positions) > 1
    )

    if not var_positions:
        # No variables: the interpreted matcher never consults the
        # store (an empty binding short-circuits to True).
        return MaskPredicateRow(
            star_set, tuple(const_checks), eq_groups, (), ()
        )

    if store.is_definitely_unsat():
        return None

    interval_checks = tuple(
        (positions[0], interval)
        for var, positions in var_positions.items()
        for interval in (store.interval_for(var),)
        if not interval.is_top
    )
    if any(interval.is_empty() for _, interval in interval_checks):
        return None

    relations = store.relations()
    if relations:
        if not store.mentioned_vars() <= frozenset(var_positions):
            return _NOT_EXTRACTABLE
        relation_checks = tuple(
            (var_positions[r.left][0], r.op, var_positions[r.right][0])
            for r in relations
        )
        return MaskPredicateRow(
            star_set, tuple(const_checks), eq_groups,
            interval_checks, relation_checks,
        )

    # Interval-only store: hoisted checks are the whole semantics
    # unless a residual (unbound) variable is pinned to an empty
    # interval, which kills the row outright.
    residual = store.mentioned_vars() - frozenset(var_positions)
    if any(store.interval_for(var).is_empty() for var in residual):
        return None
    return MaskPredicateRow(
        star_set, tuple(const_checks), eq_groups, interval_checks, ()
    )


def sql_predicate_view(mask: Mask) -> Optional[MaskPredicateView]:
    """The SQL-extractable predicate view of ``mask``, if one exists.

    ``None`` means some row's matching semantics cannot be expressed
    as direct positional checks (a variable-to-variable constraint
    mentioning a variable no cell binds); the SQL backends then fall
    back to evaluating the plan in SQL and applying the mask with the
    Python matchers.  When a view *is* returned, evaluating its
    predicates is differentially identical to the interpreted
    :meth:`repro.core.mask.Mask.visible_positions`
    (``tests/property/test_backend_parity.py``).
    """
    always_visible: set = set()
    rows: List[MaskPredicateRow] = []
    for mask_row in mask.rows:
        extracted = _extract_row(mask_row.meta, mask_row.store)
        if extracted is None:
            continue
        if extracted is _NOT_EXTRACTABLE:
            return None
        assert isinstance(extracted, MaskPredicateRow)
        if extracted.is_unconditional:
            always_visible |= extracted.star_set
        else:
            rows.append(extracted)
    kept = tuple(
        row for row in rows if not row.star_set <= always_visible
    )
    return MaskPredicateView(
        len(mask.columns), frozenset(always_visible), kept
    )


def compile_mask(mask: Mask) -> CompiledMask:
    """Compile ``mask`` into a :class:`CompiledMask` matcher."""
    ncols = len(mask.columns)
    always_visible: set = set()
    pending: List[Tuple[Tuple[Tuple[int, ...], Tuple], CompiledRow]] = []
    for mask_row in mask.rows:
        compiled = _compile_row(mask_row.meta, mask_row.store)
        if compiled is None:
            continue
        (positions, _), row = compiled
        if (not positions and not row.eq_groups
                and not row.interval_checks and row.binding_spec is None):
            # Unconditional: contributes its stars to every tuple.
            always_visible |= row.star_set
        else:
            pending.append(compiled)

    # The hash index: one bucket map per constant-position signature.
    # Rows whose stars are already always visible can never add a cell.
    index: Dict[Tuple[int, ...], Dict[Tuple, List[CompiledRow]]] = {}
    for (positions, values), row in pending:
        if row.star_set <= always_visible:
            continue
        buckets = index.setdefault(positions, {})
        buckets.setdefault(values, []).append(row)

    # Within each bucket, try rows with the largest starred sets first:
    # the visible union grows fastest, the subset skip fires more often,
    # and the all-columns early exit is reached sooner.  Order never
    # changes the union itself, so this is purely a scheduling choice.
    for buckets in index.values():
        for rows in buckets.values():
            rows.sort(key=lambda row: len(row.star_set), reverse=True)

    groups = tuple(index.items())
    return CompiledMask(ncols, frozenset(always_visible), groups)
