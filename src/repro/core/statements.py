"""Inferred permit statements accompanying a delivered answer.

"This answer is accompanied by statements describing the portions
delivered" — each mask row decodes into one ``permit`` statement over
the answer's columns (Example 1's ``permit (NUMBER, SPONSOR) where
SPONSOR = Acme``).  When the mask covers the entire answer, no
statements are attached (Example 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.mask import Mask
from repro.meta.decode import permit_clauses


@dataclass(frozen=True)
class InferredPermit:
    """One ``permit (COLS...) [where ...]`` statement."""

    columns: Tuple[str, ...]
    clauses: Tuple[str, ...]

    def render(self) -> str:
        text = f"permit ({', '.join(self.columns)})"
        if self.clauses:
            text += " where " + " and ".join(self.clauses)
        return text

    def __str__(self) -> str:
        return self.render()


def infer_permits(mask: Mask) -> Tuple[InferredPermit, ...]:
    """Decode a mask into permit statements.

    A mask that covers the whole answer yields no statements; otherwise
    one statement per mask row, deduplicated, unrestricted statements
    first (they describe the widest portions).
    """
    if mask.is_empty or mask.covers_everything:
        return ()

    labels = mask.labels()
    statements: List[InferredPermit] = []
    seen = set()
    for row in mask.rows:
        columns, clauses = permit_clauses(labels, row.meta, row.store)
        if not columns:
            continue
        permit = InferredPermit(columns, clauses)
        key = (permit.columns, frozenset(permit.clauses))
        if key not in seen:
            seen.add(key)
            statements.append(permit)

    statements.sort(key=lambda p: (len(p.clauses), -len(p.columns)))
    return tuple(statements)


def render_permits(permits: Sequence[InferredPermit]) -> str:
    """Multi-line rendering of a statement list."""
    return "\n".join(p.render() for p in permits)
