"""Engine configuration.

:class:`EngineConfig` collects every behavioural switch of the
authorization engine in one frozen dataclass.  The defaults implement
the full model of the paper: base Definitions 1-3 plus all three
Section 4.2 refinements.  Each switch exists so the ablation
experiments (DESIGN.md E9/E11) can measure the contribution of the
corresponding refinement, and so the base model can be studied in
isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class EngineConfig:
    """Behavioural switches for mask derivation and delivery.

    Attributes:
        refine_selection: apply the four-case analysis of Section 4.2
            (clear / retain / conjoin / discard) during meta-selection.
            When False, selection follows Definition 2 literally and
            always conjoins the query predicate into the meta-tuple.
        product_padding: extend meta-products with blank-padded tuples
            ``(a1..am, ⊔..⊔)`` and ``(⊔..⊔, b1..bn)`` so subviews of one
            operand survive projections that remove the other operand's
            attributes (first refinement of Section 4.2).
        self_joins: infer additional subviews by losslessly joining
            meta-tuples of different views stored in the same
            meta-relation (third refinement of Section 4.2).
        existential_closure: keep a product row whose variable refers to
            a meta-tuple outside the row when that missing meta-tuple is
            subsumed by one present in the row.  This is an extension
            beyond the paper (see ``repro.extensions.closure``); the
            paper prunes all such rows.
        require_star_for_selection: Definition 2 only selects meta-tuples
            whose referenced cells are starred.  The refined engine
            always admits the *provably sound* unstarred outcomes
            (mu implies lambda: retain; mu equivalent to lambda: clear)
            — see ``repro.metaalgebra.selection``.  Setting this flag to
            False additionally clears unstarred cells whenever lambda
            implies mu, which delivers query-predicate-selected subsets
            of views (INGRES-flavoured, violates the strict Theorem and
            the non-interference property); it exists for the
            Section 6(3) experiments only.  The sound default is True.
        dedupe: remove replicated meta-tuples after products, as the
            paper does in its Example 2 and 3 tables.
        prune_dangling: after products, drop rows that still reference
            meta-tuples outside the row (Section 4.1's pruning).  Only
            disable this for displaying intermediate tables; masks
            derived without pruning are not sound.
        drop_fully_masked_rows: omit answer rows in which every cell is
            masked from the delivered relation.  The paper's examples
            mask cell-wise; dropping empty rows is presentation sugar.
        max_selfjoin_rounds: fixpoint bound for the self-join closure.
        max_selfjoin_tuples: cap on combined tuples per meta-relation.
            The closure is worst-case exponential in the number of
            pairwise-joinable views; the cap keeps pathological catalogs
            tractable (dropping combinations is always sound — it only
            costs completeness).
        derivation_cache_size: LRU capacity of the mask-derivation
            cache (entries keyed by user and canonical plan key,
            invalidated by catalog version tokens — see
            ``docs/CACHING.md``).  0 disables caching; the delivered
            answers are identical either way (the transparency
            guarantee enforced by ``tests/test_derivation_cache.py``).
        max_mask_rows: budget — cap on meta-tuples materialized by any
            single meta-algebra operator node during one derivation
            (0 = unlimited).  Exceeding it triggers the degradation
            ladder, not a failure (see ``docs/RESILIENCE.md``).
        max_selfjoin_pool: budget — cap on the per-relation self-join
            pool (original meta-tuples plus closure) a derivation will
            consume (0 = unlimited).  Distinct from
            ``max_selfjoin_tuples``, which soft-truncates *generation*;
            this limit makes an oversized pool degrade to the
            no-self-join rung instead.
        derivation_deadline_ms: budget — wall-time limit per derivation
            attempt (0 = no deadline).  Each ladder rung gets a fresh
            deadline, so the worst case is ``rungs * deadline``.
        compiled_masks: apply masks through compiled matchers
            (``repro.core.compiled_mask``): each mask row is compiled
            once into a constant hash-index probe plus precomputed
            equality groups and interval checks, and the compiled form
            is cached alongside the derivation under the same version
            token.  Delivered rows are identical to the interpreted
            :meth:`repro.core.mask.Mask.apply` (the differential suite
            ``tests/property/test_compiled_mask.py`` enforces it); the
            switch exists as an opt-out for A/B benchmarking and as a
            fallback.  See ``docs/PERFORMANCE.md``.
        streaming_product: fold the dangling-reference pruning and the
            provenance-aware dedupe into the meta-product's combination
            loop, so product rows destined for pruning are never
            materialized (and ``max_mask_rows`` only meters rows that
            actually survive).  The resulting pruned product is
            identical to materialize-then-prune
            (``tests/property/test_streaming_product.py``); the switch
            exists as an opt-out for A/B benchmarking and for printing
            the paper's pre-prune product tables.
        degradation_ladder: on budget exhaustion or internal failure,
            re-derive at progressively cheaper rungs (full refinements
            → no self-joins → no padding → base model → empty mask)
            instead of failing; each rung provably delivers a subset of
            the rung above.  When False, a budgeted derivation that
            exhausts its budget goes straight to the empty mask (or
            raises, in dev mode).
        fail_closed: catch any internal error past parsing/validation
            inside ``authorize``/``authorize_batch`` and return the
            empty-mask answer (with ``AuthorizedAnswer.error`` set)
            instead of propagating.  Set to False in development to get
            the original traceback.
        backend: which execution backend evaluates answers —
            ``"python"`` (the in-process reference evaluator),
            ``"sqlite"`` (plans compiled to SQL over an embedded
            stdlib sqlite3 store), or ``"duckdb"`` (the same compiler
            over the optional duckdb driver).  Delivered answers are
            backend-independent (``tests/property/
            test_backend_parity.py``); mask derivation always runs
            in-process.  See ``repro.backends`` and
            ``docs/BACKENDS.md``.
        backend_failover: on backend retry exhaustion, an open circuit
            breaker, or a backend that is unavailable (at construction
            or at execute time), transparently re-evaluate on the
            registered Python oracle instead of failing the request —
            sound because mask derivation is backend-independent; the
            move is recorded on ``AuthorizedAnswer.backend_used`` /
            ``failover_reason`` and in the audit trail.  When False,
            retry exhaustion fails closed as before and backend
            unavailability raises the typed
            :class:`~repro.errors.BackendUnavailableError`.  See
            ``repro.resilience`` and ``docs/RESILIENCE.md``.
        backend_retry_attempts: total tries per backend call before
            failover (>= 1; 1 disables retry).
        backend_retry_base_ms: backoff before the second try, doubling
            each further try (0 = immediate retries, the deterministic
            default).
        backend_retry_jitter_ms: width of the deterministic (seeded,
            hash-based) jitter added to each backoff.
        breaker_failure_threshold: consecutive backend failures that
            open this engine's circuit breaker (each tenant engine has
            its own breaker, so one tenant's flaky store never opens
            another's).
        breaker_recovery_ms: breaker cool-down before a half-open
            probe is allowed.
        columnar_masks: apply compiled masks through the columnar
            kernel (``repro.core.compiled_mask.apply_mask_columnar``):
            the answer is viewed column-wise and each mask-row check —
            constant hash probe, equality group, interval — runs as a
            per-column pass over a chunk of rows instead of per row.
            Delivered rows are byte-identical to the row-at-a-time
            kernel and to the interpreted :meth:`repro.core.mask.
            Mask.apply` (``tests/property/test_columnar_relation.py``);
            the switch opts back into the row kernel for A/B
            benchmarking.  See ``docs/PERFORMANCE.md``.
        columnar_numpy: accelerate the columnar kernel's broadcast
            passes (constant-free mask rows: equality groups and
            interval filters) with numpy when the library is
            importable.  Off by default — the pure-Python columnar
            kernel is the reference; output is identical either way,
            and the flag silently degrades to pure Python when numpy
            is absent (no hard dependency).
        stream_chunk_size: rows per delivered chunk in
            :meth:`~repro.core.engine.AuthorizationEngine.
            authorize_stream` (and the default chunk granularity of
            the streaming evaluator).  Memory held per request is
            O(chunk) plus the evaluator's dedupe set.
        max_stream_rows: budget — cap on total rows a single streamed
            answer may deliver (0 = unlimited).  Exceeding it fails
            the *remainder* of the stream closed: chunks already
            yielded stand, the stream ends with
            :attr:`~repro.core.stream.AnswerStream.error` set.
    """

    refine_selection: bool = True
    product_padding: bool = True
    self_joins: bool = True
    existential_closure: bool = False
    require_star_for_selection: bool = True
    dedupe: bool = True
    prune_dangling: bool = True
    drop_fully_masked_rows: bool = False
    max_selfjoin_rounds: int = 4
    max_selfjoin_tuples: int = 64
    derivation_cache_size: int = 128
    max_mask_rows: int = 0
    max_selfjoin_pool: int = 0
    derivation_deadline_ms: float = 0.0
    compiled_masks: bool = True
    streaming_product: bool = True
    degradation_ladder: bool = True
    fail_closed: bool = True
    backend: str = "python"
    backend_failover: bool = True
    backend_retry_attempts: int = 2
    backend_retry_base_ms: float = 0.0
    backend_retry_jitter_ms: float = 0.0
    breaker_failure_threshold: int = 5
    breaker_recovery_ms: float = 1000.0
    columnar_masks: bool = True
    columnar_numpy: bool = False
    stream_chunk_size: int = 8192
    max_stream_rows: int = 0

    def but(self, **changes: Any) -> "EngineConfig":
        """Return a copy of this config with ``changes`` applied."""
        return replace(self, **changes)


#: The configuration used throughout the paper's examples.
DEFAULT_CONFIG = EngineConfig()

#: Definitions 1-3 only, with none of the Section 4.2 refinements.
BASE_MODEL_CONFIG = EngineConfig(
    refine_selection=False,
    product_padding=False,
    self_joins=False,
    existential_closure=False,
)
