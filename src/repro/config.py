"""Engine configuration.

:class:`EngineConfig` collects every behavioural switch of the
authorization engine in one frozen dataclass.  The defaults implement
the full model of the paper: base Definitions 1-3 plus all three
Section 4.2 refinements.  Each switch exists so the ablation
experiments (DESIGN.md E9/E11) can measure the contribution of the
corresponding refinement, and so the base model can be studied in
isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class EngineConfig:
    """Behavioural switches for mask derivation and delivery.

    Attributes:
        refine_selection: apply the four-case analysis of Section 4.2
            (clear / retain / conjoin / discard) during meta-selection.
            When False, selection follows Definition 2 literally and
            always conjoins the query predicate into the meta-tuple.
        product_padding: extend meta-products with blank-padded tuples
            ``(a1..am, ⊔..⊔)`` and ``(⊔..⊔, b1..bn)`` so subviews of one
            operand survive projections that remove the other operand's
            attributes (first refinement of Section 4.2).
        self_joins: infer additional subviews by losslessly joining
            meta-tuples of different views stored in the same
            meta-relation (third refinement of Section 4.2).
        existential_closure: keep a product row whose variable refers to
            a meta-tuple outside the row when that missing meta-tuple is
            subsumed by one present in the row.  This is an extension
            beyond the paper (see ``repro.extensions.closure``); the
            paper prunes all such rows.
        require_star_for_selection: Definition 2 only selects meta-tuples
            whose referenced cells are starred.  The refined engine
            always admits the *provably sound* unstarred outcomes
            (mu implies lambda: retain; mu equivalent to lambda: clear)
            — see ``repro.metaalgebra.selection``.  Setting this flag to
            False additionally clears unstarred cells whenever lambda
            implies mu, which delivers query-predicate-selected subsets
            of views (INGRES-flavoured, violates the strict Theorem and
            the non-interference property); it exists for the
            Section 6(3) experiments only.  The sound default is True.
        dedupe: remove replicated meta-tuples after products, as the
            paper does in its Example 2 and 3 tables.
        prune_dangling: after products, drop rows that still reference
            meta-tuples outside the row (Section 4.1's pruning).  Only
            disable this for displaying intermediate tables; masks
            derived without pruning are not sound.
        drop_fully_masked_rows: omit answer rows in which every cell is
            masked from the delivered relation.  The paper's examples
            mask cell-wise; dropping empty rows is presentation sugar.
        max_selfjoin_rounds: fixpoint bound for the self-join closure.
        max_selfjoin_tuples: cap on combined tuples per meta-relation.
            The closure is worst-case exponential in the number of
            pairwise-joinable views; the cap keeps pathological catalogs
            tractable (dropping combinations is always sound — it only
            costs completeness).
        derivation_cache_size: LRU capacity of the mask-derivation
            cache (entries keyed by user and canonical plan key,
            invalidated by catalog version tokens — see
            ``docs/CACHING.md``).  0 disables caching; the delivered
            answers are identical either way (the transparency
            guarantee enforced by ``tests/test_derivation_cache.py``).
    """

    refine_selection: bool = True
    product_padding: bool = True
    self_joins: bool = True
    existential_closure: bool = False
    require_star_for_selection: bool = True
    dedupe: bool = True
    prune_dangling: bool = True
    drop_fully_masked_rows: bool = False
    max_selfjoin_rounds: int = 4
    max_selfjoin_tuples: int = 64
    derivation_cache_size: int = 128

    def but(self, **changes: Any) -> "EngineConfig":
        """Return a copy of this config with ``changes`` applied."""
        return replace(self, **changes)


#: The configuration used throughout the paper's examples.
DEFAULT_CONFIG = EngineConfig()

#: Definitions 1-3 only, with none of the Section 4.2 refinements.
BASE_MODEL_CONFIG = EngineConfig(
    refine_selection=False,
    product_padding=False,
    self_joins=False,
    existential_closure=False,
)
