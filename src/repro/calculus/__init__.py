"""S2 — the conjunctive calculus layer.

ASTs for views and queries in the paper's surface form, safety/type
checking, Section 3's normalization (equality substitution, variable
classes, blanks and stars), and compilation to PSJ algebra plans.
"""

from repro.calculus.ast import (
    AttrRef,
    Condition,
    ConstTerm,
    Query,
    Term,
    ViewDefinition,
)
from repro.calculus.containment import are_equivalent, is_contained_in
from repro.calculus.normalize import (
    BLANK,
    BlankContent,
    CellContent,
    ConstContent,
    NormalizedCell,
    NormalizedView,
    VarContent,
    normalize_view,
)
from repro.calculus.safety import check_expression, collect_occurrences
from repro.calculus.to_algebra import compile_query, compile_view

__all__ = [
    "AttrRef",
    "BLANK",
    "BlankContent",
    "CellContent",
    "Condition",
    "ConstContent",
    "ConstTerm",
    "NormalizedCell",
    "NormalizedView",
    "Query",
    "Term",
    "VarContent",
    "ViewDefinition",
    "are_equivalent",
    "check_expression",
    "is_contained_in",
    "collect_occurrences",
    "compile_query",
    "compile_view",
    "normalize_view",
]
