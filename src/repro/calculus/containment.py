"""Conjunctive-query containment (the formal core of "subview").

The paper's central notion — "the requested view is also a view of
V1, ..., Vm" — is query containment for conjunctive queries.  The
classical decision procedure (Chandra & Merlin) finds a *containment
homomorphism*: Q1 is contained in Q2 iff there is a mapping of Q2's
atoms onto Q1's atoms that preserves relations, constants and the
head.  With comparison predicates the problem hardens (Klug); this
implementation is **sound but conservative**: a True answer guarantees
containment (every instance's Q1-extension is inside Q2's), a False
answer means "no homomorphism certificate found".

The checker is used by property tests (certificates are cross-validated
against materialization on random instances) and is available as a
public utility for studying the model's completeness gaps — the cases
where a requested view *is* a view of the permissions but the paper's
algebraic method fails to discover it (Section 4.2's opening caveat).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.algebra.schema import DatabaseSchema
from repro.calculus.ast import Query, ViewDefinition
from repro.calculus.normalize import (
    BlankContent,
    ConstContent,
    NormalizedView,
    VarContent,
    normalize_view,
)
from repro.predicates.comparators import Comparator
from repro.predicates.intervals import Interval

#: A term of the frozen query: a constant or a variable.  Blanks are
#: single-occurrence existential variables, so each becomes a unique
#: variable keyed by its position; head blanks thereby participate in
#: head preservation like any distinguished variable.
Term = Tuple[str, object]


def _terms_of(view: NormalizedView) -> List[Term]:
    """One term per product position."""
    terms: List[Term] = []
    for position, cell in enumerate(view.cells):
        content = cell.content
        if isinstance(content, ConstContent):
            terms.append(("const", content.value))
        elif isinstance(content, VarContent):
            terms.append(("var", content.var))
        else:
            assert isinstance(content, BlankContent)
            terms.append(("var", ("blank", position)))
    return terms


def _atoms_of(view: NormalizedView,
              schema: DatabaseSchema) -> List[Tuple[str, Tuple[int, ...]]]:
    """(relation, positions) per occurrence."""
    atoms = []
    position = 0
    for occ in view.occurrences:
        width = schema.get(occ.relation).arity
        atoms.append(
            (occ.relation, tuple(range(position, position + width)))
        )
        position += width
    return atoms


class _Matcher:
    """Backtracking search for a containment homomorphism Q2 -> Q1."""

    def __init__(self, q1: NormalizedView, q2: NormalizedView,
                 schema: DatabaseSchema) -> None:
        self.q1 = q1
        self.q2 = q2
        self.t1 = _terms_of(q1)
        self.t2 = _terms_of(q2)
        self.atoms1 = _atoms_of(q1, schema)
        self.atoms2 = _atoms_of(q2, schema)

    # -- term-level compatibility ---------------------------------------

    def _image_ok(self, q2_term: Term, q1_term: Term,
                  mapping: Dict[object, Term]) -> Optional[
                      Dict[object, Term]]:
        """Try to extend ``mapping`` with h(q2_term) = q1_term."""
        kind2, value2 = q2_term
        if kind2 == "const":
            if q1_term != ("const", value2):
                return None
            return mapping
        # Variables (including blank-variables) map consistently;
        # blank-variables occur once, so consistency is trivial there.
        bound = mapping.get(value2)
        if bound is None:
            extended = dict(mapping)
            extended[value2] = q1_term
            return extended
        if bound != q1_term:
            return None
        return mapping

    # -- search -----------------------------------------------------------

    def find(self) -> Optional[Dict[object, Term]]:
        return self._assign(0, {})

    def _assign(self, atom_index: int,
                mapping: Dict[object, Term]) -> Optional[Dict[object, Term]]:
        if atom_index == len(self.atoms2):
            if not self._head_preserved(mapping):
                return None
            if not self._constraints_implied(mapping):
                return None
            return mapping

        relation2, positions2 = self.atoms2[atom_index]
        for relation1, positions1 in self.atoms1:
            if relation1 != relation2:
                continue
            candidate: Optional[Dict[object, Term]] = mapping
            for p2, p1 in zip(positions2, positions1):
                assert candidate is not None
                candidate = self._image_ok(
                    self.t2[p2], self.t1[p1], candidate
                )
                if candidate is None:
                    break
            if candidate is None:
                continue
            result = self._assign(atom_index + 1, candidate)
            if result is not None:
                return result
        return None

    def _head_preserved(self, mapping: Dict[object, Term]) -> bool:
        """h must carry Q2's head onto Q1's head, position-wise."""
        if len(self.q1.target_positions) != len(self.q2.target_positions):
            return False
        for p1, p2 in zip(self.q1.target_positions,
                          self.q2.target_positions):
            image = self._image_of(self.t2[p2], mapping)
            if image is None:
                return False
            expected = self.t1[p1]
            if image != expected:
                # A constant head of Q1 may be matched by a Q2 head
                # term whose image is that same constant.
                return False
        return True

    def _image_of(self, q2_term: Term,
                  mapping: Dict[object, Term]) -> Optional[Term]:
        kind2, value2 = q2_term
        if kind2 == "const":
            return q2_term
        return mapping.get(value2)

    # -- comparison constraints -------------------------------------------

    def _constraints_implied(self, mapping: Dict[object, Term]) -> bool:
        """Q1's constraints must imply Q2's, under the mapping."""
        for var2 in self.q2.store.mentioned_vars():
            interval2 = self.q2.store.interval_for(var2)
            if interval2.is_top and not self.q2.store.relations_of(var2):
                continue
            image = mapping.get(var2)
            if image is None:
                return False
            if not self._interval_implied(image, interval2):
                return False
        for relation in self.q2.store.relations():
            left = mapping.get(relation.left)
            right = mapping.get(relation.right)
            if left is None or right is None:
                return False
            if not self._relation_implied(left, relation.op, right):
                return False
        return True

    def _q1_interval(self, value: object) -> Interval:
        """Q1's interval on a variable; blank-variables are free."""
        if isinstance(value, str):
            return self.q1.store.interval_for(value)
        return Interval.top()

    def _interval_implied(self, image: Term,
                          interval2: Interval) -> bool:
        kind, value = image
        if kind == "const":
            return interval2.contains(value)
        return self._q1_interval(value).is_subset(interval2)

    def _relation_implied(self, left: Term, op: Comparator,
                          right: Term) -> bool:
        lk, lv = left
        rk, rv = right
        if lk == "const" and rk == "const":
            return op.evaluate(lv, rv)
        if lk == "var" and rk == "var":
            if lv == rv:
                return op in (Comparator.LE, Comparator.GE, Comparator.EQ)
            # Exact relation present in Q1's store?  (Blank-variables
            # never appear in the store.)
            if isinstance(lv, str) and isinstance(rv, str):
                from repro.predicates.store import VarRelation

                wanted = VarRelation.make(lv, op, rv)
                if wanted in self.q1.store.relations():
                    return True
            # Or implied by the two intervals.
            return _intervals_imply(
                self._q1_interval(lv), op, self._q1_interval(rv)
            )
        # Mixed var/const: decide through the interval.
        if lk == "var":
            return self._q1_interval(lv).is_subset(
                Interval.from_comparison(op, rv)
            )
        if rk == "var":
            return self._q1_interval(rv).is_subset(
                Interval.from_comparison(op.flipped(), lv)
            )
        return False


def _intervals_imply(a: Interval, op: Comparator, b: Interval) -> bool:
    """Do the intervals force ``x op y`` for every x in a, y in b?"""
    a, b = a.normalized(), b.normalized()
    if op is Comparator.NE:
        return a.is_disjoint(b)
    if op in (Comparator.LT, Comparator.LE):
        if a.hi is None or b.lo is None:
            return False
        if a.hi < b.lo:
            return True
        if a.hi == b.lo:
            return op is Comparator.LE or a.hi_strict or b.lo_strict
        return False
    if op in (Comparator.GT, Comparator.GE):
        return _intervals_imply(b, op.flipped(), a)
    return False


Expression = Union[Query, ViewDefinition, NormalizedView]


def _normalized(expression: Expression,
                schema: DatabaseSchema) -> NormalizedView:
    if isinstance(expression, NormalizedView):
        return expression
    return normalize_view(expression, schema)


def is_contained_in(first: Expression, second: Expression,
                    schema: DatabaseSchema) -> bool:
    """Conservative containment test: True guarantees first ⊆ second.

    ``first ⊆ second`` means: on every database instance, every tuple
    of ``first``'s extension is a tuple of ``second``'s.
    """
    q1 = _normalized(first, schema)
    q2 = _normalized(second, schema)
    if len(q1.target_positions) != len(q2.target_positions):
        return False
    return _Matcher(q1, q2, schema).find() is not None


def are_equivalent(first: Expression, second: Expression,
                   schema: DatabaseSchema) -> bool:
    """Conservative equivalence: containment certificates both ways."""
    return (
        is_contained_in(first, second, schema)
        and is_contained_in(second, first, schema)
    )
