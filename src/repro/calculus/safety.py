"""Safety and type checking for conjunctive expressions.

Section 2 restricts views and queries to *safe* conjunctive
expressions: every head variable must appear in a membership
subformula, comparisons must relate variables that so appear (or
constants), and all values must come from compatible domains.  In the
surface form those conditions translate to the checks implemented here.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.algebra.expression import Occurrence
from repro.algebra.schema import DatabaseSchema
from repro.algebra.types import Domain, domain_of_value
from repro.calculus.ast import (
    AttrRef,
    Condition,
    ConstTerm,
    Query,
    Term,
    ViewDefinition,
)
from repro.errors import SafetyError, TypeMismatchError

Expression = Union[Query, ViewDefinition]


def collect_occurrences(expression: Expression) -> Tuple[Occurrence, ...]:
    """All relation occurrences, in first-mention order.

    First-mention order scans the target list and then the conditions,
    which reproduces the operand order of the paper's example plans
    (Example 2 mentions EMPLOYEE in the target and then ASSIGNMENT and
    PROJECT in the qualification, giving EMPLOYEE x ASSIGNMENT x
    PROJECT).
    """
    seen: Dict[Tuple[str, int], None] = {}
    for ref in expression.attr_refs():
        seen.setdefault(ref.occurrence_key())
    return tuple(Occurrence(rel, occ) for rel, occ in seen)


def check_expression(expression: Expression,
                     schema: DatabaseSchema) -> Tuple[Occurrence, ...]:
    """Validate ``expression`` against ``schema``.

    Returns the occurrence list on success.

    Raises:
        SafetyError: structural violations (empty target, occurrence
            gaps, constant-only conditions).
        UnknownRelationError / UnknownAttributeError: dangling names.
        TypeMismatchError: cross-domain comparisons.
    """
    if not expression.target:
        raise SafetyError("target list must not be empty")

    for ref in expression.attr_refs():
        rel_schema = schema.get(ref.relation)
        if not rel_schema.has_attribute(ref.attribute):
            # index_of raises the canonical error
            rel_schema.index_of(ref.attribute)
        if ref.occurrence < 1:
            raise SafetyError(
                f"occurrence index must be >= 1, got {ref.occurrence} "
                f"for {ref.relation}"
            )

    occurrences = collect_occurrences(expression)

    # Occurrence indices of each relation must be contiguous from 1,
    # matching the paper's EMPLOYEE:1 / EMPLOYEE:2 notation.
    by_relation: Dict[str, List[int]] = {}
    for occ in occurrences:
        by_relation.setdefault(occ.relation, []).append(occ.occurrence)
    for relation, indices in by_relation.items():
        if sorted(indices) != list(range(1, len(indices) + 1)):
            raise SafetyError(
                f"occurrence indices of {relation!r} must be contiguous "
                f"from 1, got {sorted(indices)}"
            )

    for condition in expression.conditions:
        _check_condition(condition, schema)

    return occurrences


def _check_condition(condition: Condition, schema: DatabaseSchema) -> None:
    if not condition.attr_refs():
        raise SafetyError(
            f"condition {condition} relates two constants; every "
            "comparison must involve an attribute"
        )
    left = _domain_of_term(condition.lhs, schema)
    right = _domain_of_term(condition.rhs, schema)
    if not left.comparable_with(right):
        raise TypeMismatchError(
            f"condition {condition} compares {left} with {right}"
        )


def _domain_of_term(term: Term, schema: DatabaseSchema) -> Domain:
    if isinstance(term, AttrRef):
        return schema.get(term.relation).domain_of(term.attribute)
    assert isinstance(term, ConstTerm)
    return domain_of_value(term.value)
