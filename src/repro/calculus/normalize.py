"""Normalization of conjunctive views (Section 3's encoding procedure).

Before a view can be stored in meta-relations, the paper's procedure
rewrites it: equality subformulas ``d1 = d2`` are substituted away,
head variables are marked with ``*``, and variables appearing only once
in the whole expression are replaced with blanks.

:func:`normalize_view` performs the equivalent analysis on the surface
AST: it unions attribute positions connected by equality conditions
into *variable classes*, pins classes equated with constants, attaches
order/inequality comparisons to classes (these will populate the
COMPARISON store), and classifies every product position as blank,
constant, or variable — starred when the position appears in the
target list.

The result, :class:`NormalizedView`, is consumed by the meta-relation
encoder and can also be compiled to a PSJ plan for materialization
(used by the soundness oracle and the INGRES baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.algebra.expression import (
    AtomicCondition,
    Col,
    Const,
    Occurrence,
    PSJQuery,
)
from repro.algebra.schema import DatabaseSchema
from repro.algebra.types import Domain, Value
from repro.calculus.ast import (
    AttrRef,
    ConstTerm,
    Query,
    ViewDefinition,
)
from repro.calculus.safety import check_expression
from repro.errors import SafetyError
from repro.predicates.comparators import Comparator
from repro.predicates.intervals import Interval
from repro.predicates.store import ConstraintStore


@dataclass(frozen=True)
class BlankContent:
    """A position whose value is unconstrained (the paper's blank)."""

    def __str__(self) -> str:
        return "_"


@dataclass(frozen=True)
class ConstContent:
    """A position pinned to a constant by equality substitution."""

    value: Value

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VarContent:
    """A position carrying a variable (a multi-occurrence class)."""

    var: str

    def __str__(self) -> str:
        return self.var


CellContent = Union[BlankContent, ConstContent, VarContent]
BLANK = BlankContent()


@dataclass(frozen=True)
class NormalizedCell:
    """One position of the normalized view: content plus star flag."""

    content: CellContent
    starred: bool

    def __str__(self) -> str:
        return f"{self.content}{'*' if self.starred else ''}"


@dataclass(frozen=True)
class NormalizedView:
    """A conjunctive view after Section 3's rewriting.

    Attributes:
        name: the view name (empty for anonymous queries).
        occurrences: relation occurrences, first-mention order.
        cells: one cell per product position (width = sum of arities).
        store: interval/relational constraints over the view variables.
        target_positions: product positions of the target list, in
            target order.
    """

    name: str
    occurrences: Tuple[Occurrence, ...]
    cells: Tuple[NormalizedCell, ...]
    store: ConstraintStore
    target_positions: Tuple[int, ...]

    def variables(self) -> Tuple[str, ...]:
        """Variables in first-appearance (cell) order."""
        seen: Dict[str, None] = {}
        for cell in self.cells:
            if isinstance(cell.content, VarContent):
                seen.setdefault(cell.content.var)
        return tuple(seen)

    def cells_of_occurrence(
        self, schema: DatabaseSchema, index: int
    ) -> Tuple[NormalizedCell, ...]:
        """The cells belonging to occurrence ``index``."""
        start = 0
        for i, occ in enumerate(self.occurrences):
            width = schema.get(occ.relation).arity
            if i == index:
                return self.cells[start:start + width]
            start += width
        raise IndexError(index)

    def materialization_psj(self, schema: DatabaseSchema) -> PSJQuery:
        """A PSJ plan computing the view's extension.

        The plan projects the *target* positions, i.e. it computes
        exactly the relation the view statement denotes.
        """
        conditions: List[AtomicCondition] = []

        # Representative position of each variable, plus equality chains.
        representative: Dict[str, int] = {}
        for position, cell in enumerate(self.cells):
            content = cell.content
            if isinstance(content, ConstContent):
                conditions.append(AtomicCondition(
                    Col(position), Comparator.EQ, Const(content.value)
                ))
            elif isinstance(content, VarContent):
                if content.var in representative:
                    conditions.append(AtomicCondition(
                        Col(representative[content.var]),
                        Comparator.EQ,
                        Col(position),
                    ))
                else:
                    representative[content.var] = position

        for var, rep in representative.items():
            interval = self.store.interval_for(var).normalized()
            conditions.extend(_interval_conditions(rep, interval))
        for relation in self.store.relations():
            if relation.left in representative and relation.right in representative:
                conditions.append(AtomicCondition(
                    Col(representative[relation.left]),
                    relation.op,
                    Col(representative[relation.right]),
                ))

        return PSJQuery(
            occurrences=self.occurrences,
            conditions=tuple(conditions),
            output=self.target_positions,
        )


def _interval_conditions(position: int,
                         interval: Interval) -> List[AtomicCondition]:
    conditions: List[AtomicCondition] = []
    if interval.is_point:
        return [AtomicCondition(Col(position), Comparator.EQ,
                                Const(interval.the_point()))]
    if interval.lo is not None:
        op = Comparator.GT if interval.lo_strict else Comparator.GE
        conditions.append(AtomicCondition(Col(position), op,
                                          Const(interval.lo)))
    if interval.hi is not None:
        op = Comparator.LT if interval.hi_strict else Comparator.LE
        conditions.append(AtomicCondition(Col(position), op,
                                          Const(interval.hi)))
    for value in sorted(interval.excluded, key=repr):
        conditions.append(AtomicCondition(Col(position), Comparator.NE,
                                          Const(value)))
    return conditions


class _UnionFind:
    """Union-find over product positions."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def normalize_view(
    view: Union[ViewDefinition, Query],
    schema: DatabaseSchema,
    name: Optional[str] = None,
) -> NormalizedView:
    """Normalize a view (or query) into cell/store form.

    Raises:
        SafetyError: for unsafe expressions or selections that are
            statically unsatisfiable (e.g. ``A = 1 and A = 2``), which
            would denote the empty view and grant nothing.
    """
    occurrences = check_expression(view, schema)
    if name is None:
        name = view.name if isinstance(view, ViewDefinition) else ""

    # Map every AttrRef to a product position.
    offsets: Dict[Tuple[str, int], int] = {}
    width = 0
    for occ in occurrences:
        offsets[(occ.relation, occ.occurrence)] = width
        width += schema.get(occ.relation).arity

    def position_of(ref: AttrRef) -> int:
        base = offsets[ref.occurrence_key()]
        return base + schema.get(ref.relation).index_of(ref.attribute)

    # Phase 1: union positions connected by equality; record constants.
    uf = _UnionFind(width)
    pinned: Dict[int, Value] = {}  # root -> constant

    equalities = [c for c in view.conditions if c.op is Comparator.EQ]
    others = [c for c in view.conditions if c.op is not Comparator.EQ]

    for condition in equalities:
        lhs, rhs = condition.lhs, condition.rhs
        if isinstance(lhs, AttrRef) and isinstance(rhs, AttrRef):
            uf.union(position_of(lhs), position_of(rhs))
        elif isinstance(lhs, AttrRef) and isinstance(rhs, ConstTerm):
            _pin(uf, pinned, position_of(lhs), rhs.value)
        elif isinstance(rhs, AttrRef) and isinstance(lhs, ConstTerm):
            _pin(uf, pinned, position_of(rhs), lhs.value)

    # Re-root pinned constants after all unions.
    rooted_pins: Dict[int, Value] = {}
    for position, value in pinned.items():
        root = uf.find(position)
        if root in rooted_pins and rooted_pins[root] != value:
            raise SafetyError(
                f"selection pins one attribute to both "
                f"{rooted_pins[root]!r} and {value!r}; the view is empty"
            )
        rooted_pins[root] = value

    # Phase 2: gather class members and discreteness.
    members: Dict[int, List[int]] = {}
    for position in range(width):
        members.setdefault(uf.find(position), []).append(position)

    product_columns = _product_domains(occurrences, schema)

    def class_discrete(root: int) -> bool:
        return all(product_columns[p].discrete for p in members[root])

    # Phase 3: attach non-equality comparisons.
    intervals: Dict[int, Interval] = {}
    relations: List[Tuple[int, Comparator, int]] = []

    for condition in others:
        lhs, rhs, op = condition.lhs, condition.rhs, condition.op
        if isinstance(lhs, ConstTerm) and isinstance(rhs, AttrRef):
            lhs, rhs, op = rhs, lhs, op.flipped()
        assert isinstance(lhs, AttrRef)
        left_root = uf.find(position_of(lhs))
        if isinstance(rhs, ConstTerm):
            interval = Interval.from_comparison(
                op, rhs.value, class_discrete(left_root)
            )
            current = intervals.get(
                left_root, Interval.top(class_discrete(left_root))
            )
            intervals[left_root] = current.intersect(interval)
        else:
            right_root = uf.find(position_of(rhs))
            if left_root == right_root:
                # x op x after substitution: statically decidable.
                if op in (Comparator.LT, Comparator.GT, Comparator.NE):
                    raise SafetyError(
                        f"condition {condition} is unsatisfiable after "
                        "equality substitution; the view is empty"
                    )
                continue  # LE/GE on equal operands is trivially true
            relations.append((left_root, op, right_root))

    # Fold comparisons against pinned classes into the other side.
    remaining_relations: List[Tuple[int, Comparator, int]] = []
    for left_root, op, right_root in relations:
        left_pin = rooted_pins.get(left_root)
        right_pin = rooted_pins.get(right_root)
        if left_pin is not None and right_pin is not None:
            if not op.evaluate(left_pin, right_pin):
                raise SafetyError(
                    "comparison between pinned constants fails; "
                    "the view is empty"
                )
        elif left_pin is not None:
            interval = Interval.from_comparison(
                op.flipped(), left_pin, class_discrete(right_root)
            )
            current = intervals.get(
                right_root, Interval.top(class_discrete(right_root))
            )
            intervals[right_root] = current.intersect(interval)
        elif right_pin is not None:
            interval = Interval.from_comparison(
                op, right_pin, class_discrete(left_root)
            )
            current = intervals.get(
                left_root, Interval.top(class_discrete(left_root))
            )
            intervals[left_root] = current.intersect(interval)
        else:
            remaining_relations.append((left_root, op, right_root))

    # Static satisfiability of pinned classes against their intervals.
    for root, value in rooted_pins.items():
        if root in intervals and not intervals[root].contains(value):
            raise SafetyError(
                f"constant {value!r} violates the comparisons on its "
                "attribute; the view is empty"
            )
        intervals.pop(root, None)
    for root, interval in intervals.items():
        if interval.is_empty():
            raise SafetyError(
                "the comparisons on one attribute are contradictory; "
                "the view is empty"
            )

    # Phase 4: decide the content of every class.
    target_positions = tuple(position_of(ref) for ref in view.target)

    constrained_roots = set(intervals)
    for left_root, _, right_root in remaining_relations:
        constrained_roots.add(left_root)
        constrained_roots.add(right_root)

    needs_var = {
        root for root, positions in members.items()
        if root not in rooted_pins
        and (len(positions) > 1 or root in constrained_roots)
    }

    # Name variables in first-appearance order, paper-style x1, x2, ...
    var_names: Dict[int, str] = {}
    for position in range(width):
        root = uf.find(position)
        if root in needs_var and root not in var_names:
            var_names[root] = f"x{len(var_names) + 1}"

    # A position is starred when its *class* contains a head (target)
    # position: the paper stars every occurrence of a head variable, so
    # both TITLE cells of EST carry x4* even though the surface syntax
    # names only EMPLOYEE:1.TITLE in the target list.
    starred_roots = {uf.find(p) for p in target_positions}

    cells: List[NormalizedCell] = []
    for position in range(width):
        root = uf.find(position)
        starred = root in starred_roots
        if root in rooted_pins:
            content: CellContent = ConstContent(rooted_pins[root])
        elif root in needs_var:
            content = VarContent(var_names[root])
        else:
            content = BLANK
        cells.append(NormalizedCell(content, starred))

    # Build the store over the named variables.
    store = ConstraintStore.empty()
    for root, interval in intervals.items():
        store = store.constrain_interval(var_names[root], interval)
    for left_root, op, right_root in remaining_relations:
        store = store.relate(var_names[left_root], op, var_names[right_root])

    return NormalizedView(
        name=name,
        occurrences=occurrences,
        cells=tuple(cells),
        store=store,
        target_positions=target_positions,
    )


def _pin(uf: _UnionFind, pinned: Dict[int, Value], position: int,
         value: Value) -> None:
    existing = pinned.get(position)
    if existing is not None and existing != value:
        raise SafetyError(
            f"attribute pinned to both {existing!r} and {value!r}; "
            "the view is empty"
        )
    pinned[position] = value


def _product_domains(occurrences: Sequence[Occurrence],
                     schema: DatabaseSchema) -> List[Domain]:
    domains: List[Domain] = []
    for occ in occurrences:
        domains.extend(a.domain for a in schema.get(occ.relation).attributes)
    return domains
