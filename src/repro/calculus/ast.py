"""ASTs for conjunctive views and queries (Section 2).

The paper's surface form for both views and queries is a target list of
attribute references plus a conjunction of conditions::

    view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, PROJECT.BUDGET)
    where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
    and PROJECT.NUMBER = ASSIGNMENT.P_NO
    and PROJECT.BUDGET >= 250000

Multiple occurrences of a relation are written ``EMPLOYEE:1``,
``EMPLOYEE:2`` (the EST view).  This corresponds exactly to the
conjunctive domain-calculus family of Section 2: membership subformulas
arise from the relation occurrences mentioned, and the existential
variables are implicit (any attribute not mentioned is existentially
quantified away — the paper's single-occurrence variables that the
encoding turns into blanks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple, Union

from repro.algebra.types import Value
from repro.predicates.comparators import Comparator


@dataclass(frozen=True)
class AttrRef:
    """A reference to an attribute of a relation occurrence."""

    relation: str
    attribute: str
    occurrence: int = 1

    def occurrence_key(self) -> Tuple[str, int]:
        return (self.relation, self.occurrence)

    def render(self, show_occurrence: bool = False) -> str:
        if show_occurrence or self.occurrence != 1:
            return f"{self.relation}:{self.occurrence}.{self.attribute}"
        return f"{self.relation}.{self.attribute}"

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class ConstTerm:
    """A constant operand in a condition."""

    value: Value

    def __str__(self) -> str:
        if isinstance(self.value, int) and abs(self.value) >= 10_000:
            return f"{self.value:,}"
        return str(self.value)


Term = Union[AttrRef, ConstTerm]


@dataclass(frozen=True)
class Condition:
    """One conjunct: ``lhs op rhs``.

    At least one side must be an :class:`AttrRef`; the safety checker
    enforces this (a constant-to-constant comparison carries no binding
    and is rejected, mirroring the paper's requirement that every
    variable appear among the membership subformulas).
    """

    lhs: Term
    op: Comparator
    rhs: Term

    def attr_refs(self) -> Tuple[AttrRef, ...]:
        refs = []
        if isinstance(self.lhs, AttrRef):
            refs.append(self.lhs)
        if isinstance(self.rhs, AttrRef):
            refs.append(self.rhs)
        return tuple(refs)

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


@dataclass(frozen=True)
class Query:
    """A retrieve statement: target list plus conjunctive conditions."""

    target: Tuple[AttrRef, ...]
    conditions: Tuple[Condition, ...] = ()

    def attr_refs(self) -> Tuple[AttrRef, ...]:
        """Every attribute reference, target first then conditions."""
        refs = list(self.target)
        for condition in self.conditions:
            refs.extend(condition.attr_refs())
        return tuple(refs)

    def relation_names(self) -> FrozenSet[str]:
        return frozenset(ref.relation for ref in self.attr_refs())

    def __str__(self) -> str:
        multi = _multi_occurrence_relations(self)
        head = ", ".join(
            t.render(t.relation in multi) for t in self.target
        )
        text = f"retrieve ({head})"
        if self.conditions:
            text += " where " + " and ".join(
                _render_condition(c, multi) for c in self.conditions
            )
        return text


@dataclass(frozen=True)
class ViewDefinition:
    """A view statement: a named conjunctive query."""

    name: str
    target: Tuple[AttrRef, ...]
    conditions: Tuple[Condition, ...] = ()

    def as_query(self) -> Query:
        """The same expression as an anonymous query."""
        return Query(self.target, self.conditions)

    def attr_refs(self) -> Tuple[AttrRef, ...]:
        return self.as_query().attr_refs()

    def relation_names(self) -> FrozenSet[str]:
        return self.as_query().relation_names()

    def __str__(self) -> str:
        multi = _multi_occurrence_relations(self)
        head = ", ".join(
            t.render(t.relation in multi) for t in self.target
        )
        text = f"view {self.name} ({head})"
        if self.conditions:
            text += " where " + " and ".join(
                _render_condition(c, multi) for c in self.conditions
            )
        return text


def _multi_occurrence_relations(
    expr: Union[Query, ViewDefinition]
) -> FrozenSet[str]:
    """Relations appearing under more than one occurrence index."""
    seen = {}
    multi = set()
    for ref in expr.attr_refs():
        previous = seen.setdefault(ref.relation, ref.occurrence)
        if previous != ref.occurrence:
            multi.add(ref.relation)
    return frozenset(multi)


def _render_condition(condition: Condition, multi: FrozenSet[str]) -> str:
    def side(term: Term) -> str:
        if isinstance(term, AttrRef):
            return term.render(term.relation in multi)
        return str(term)

    return f"{side(condition.lhs)} {condition.op} {side(condition.rhs)}"
