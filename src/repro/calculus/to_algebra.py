"""Compiling queries to PSJ plans.

"Let S be the relational algebra expression that implements Q" — for a
conjunctive query that expression is a product of the referenced
occurrences, one selection per condition, and a final projection
(Section 4.1's products-first strategy).  :func:`compile_query`
produces exactly that plan; the conditions keep the order the user
wrote them, which makes engine traces line up with the paper's
examples.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.algebra.expression import (
    AtomicCondition,
    Col,
    Const,
    PSJQuery,
)
from repro.algebra.schema import DatabaseSchema
from repro.calculus.ast import AttrRef, ConstTerm, Query, ViewDefinition
from repro.calculus.safety import check_expression


def compile_query(query: Query, schema: DatabaseSchema) -> PSJQuery:
    """Compile a retrieve statement into a PSJ plan."""
    occurrences = check_expression(query, schema)

    offsets: Dict[Tuple[str, int], int] = {}
    width = 0
    for occ in occurrences:
        offsets[(occ.relation, occ.occurrence)] = width
        width += schema.get(occ.relation).arity

    def position_of(ref: AttrRef) -> int:
        return offsets[ref.occurrence_key()] \
            + schema.get(ref.relation).index_of(ref.attribute)

    conditions: List[AtomicCondition] = []
    for condition in query.conditions:
        lhs, rhs, op = condition.lhs, condition.rhs, condition.op
        # Orient a leading constant to the right, flipping the operator.
        if isinstance(lhs, ConstTerm) and isinstance(rhs, AttrRef):
            lhs, rhs, op = rhs, lhs, op.flipped()
        left = Col(position_of(lhs)) if isinstance(lhs, AttrRef) \
            else Const(lhs.value)
        right = Col(position_of(rhs)) if isinstance(rhs, AttrRef) \
            else Const(rhs.value)
        conditions.append(AtomicCondition(left, op, right))

    output = tuple(position_of(ref) for ref in query.target)
    plan = PSJQuery(
        occurrences=occurrences,
        conditions=tuple(conditions),
        output=output,
    )
    plan.validate(schema)
    return plan


def compile_view(view: ViewDefinition, schema: DatabaseSchema) -> PSJQuery:
    """Compile a view statement's defining query into a PSJ plan."""
    return compile_query(view.as_query(), schema)
