"""Shared machinery of the SQL execution backends.

:class:`_SQLBackend` implements the whole
:class:`~repro.backends.base.ExecutionBackend` protocol on top of two
driver-specific template methods — :meth:`_SQLBackend._connect` and
:meth:`_SQLBackend._column_decl` — so the sqlite3 and DuckDB backends
differ only in how they open a connection and declare columns.

Data movement and staleness:

* :meth:`_SQLBackend.load` bulk-loads every relation with chunked
  ``executemany`` inserts (``_chunk_rows`` rows per batch, so a
  10^6-row relation never materializes one giant parameter list).
  Each relation's load is wrapped in an explicit transaction: a
  failure in any chunk rolls the whole relation back — table
  creation included — so a failed load leaves the store exactly as
  it was, and the unchanged ``_loaded`` counter makes the next plan
  retry the load instead of trusting a half-filled table.  The
  ``backend.load`` fault site fires per chunk for exactly this
  scenario.
* Each relation's :meth:`~repro.algebra.database.Database.version_of`
  counter is recorded at load time; before running a plan the backend
  re-syncs exactly the referenced relations whose counters moved.
  Mutating one relation of a wide schema therefore reloads one table.

Thread safety: one lock serializes every store access (sync + query),
matching the serving layer's one-backend-per-tenant sharing.  Driver
exceptions are translated to :class:`~repro.errors.BackendError` at
this boundary — narrowly, via each driver's declared error types — so
the engine's fail-closed boundary sees a library error, never a raw
driver one.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Type

from repro.algebra.database import Database
from repro.algebra.expression import PSJQuery
from repro.algebra.relation import Column, Relation, Row
from repro.algebra.to_sql import (
    masked_plan_to_sql,
    plan_to_sql,
    table_name,
)
from repro.core.compiled_mask import CompiledMask, sql_predicate_view
from repro.core.mask import MASKED, Mask
from repro.errors import BackendError
from repro.testing.faults import maybe_fault


class _SQLBackend:
    """Template base for backends that run plans in a SQL engine."""

    name = "sql"

    #: Driver exception types translated to :class:`BackendError`.
    _driver_errors: Tuple[Type[BaseException], ...] = ()

    #: Rows per ``executemany`` batch during bulk load.
    _chunk_rows = 20_000

    def __init__(self, database: Optional[Database] = None) -> None:
        self._lock = threading.Lock()
        self._database: Optional[Database] = None
        #: Relation name -> mutation counter it was loaded at.
        self._loaded: Dict[str, int] = {}
        #: Relations for which a table exists in the store.
        self._created: Set[str] = set()
        self._connection = self._connect()
        if database is not None:
            self.load(database)

    # ------------------------------------------------------------------
    # driver template methods
    # ------------------------------------------------------------------

    def _connect(self) -> Any:
        """Open the embedded store; returns a DB-API-ish connection."""
        raise NotImplementedError

    def _column_decl(self, column: Column, index: int) -> str:
        """The ``CREATE TABLE`` declaration of ``column``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # protocol: load
    # ------------------------------------------------------------------

    def load(self, database: Database) -> None:
        """Attach ``database`` and bulk-load every relation."""
        with self._lock:
            for name in self._created:
                self._execute_locked(
                    f"DROP TABLE IF EXISTS {table_name(name)}"
                )
            self._created.clear()
            self._loaded.clear()
            self._database = database
            self._sync_locked(database.relation_names())

    def _require_database(self) -> Database:
        database = self._database
        if database is None:
            raise BackendError(
                f"backend {self.name!r} has no database loaded"
            )
        return database

    def _sync_locked(self, names: Sequence[str]) -> None:
        """Reload exactly the relations whose mutation counter moved."""
        database = self._require_database()
        for name in names:
            version = database.version_of(name)
            if self._loaded.get(name) == version:
                continue
            self._load_relation_locked(name, database.instance(name))
            self._loaded[name] = version

    def _load_relation_locked(self, name: str,
                              relation: Relation) -> None:
        """Reload ``name`` atomically: all chunks commit, or none.

        The DDL, the delete, and every insert chunk run in one
        explicit transaction.  A mid-chunk failure rolls the relation
        back to its pre-load rows (or to nonexistence, on the
        CREATE path — both embedded engines have transactional DDL),
        and ``_created``/``_loaded`` are only updated after the
        commit, so staleness tracking can never believe a half-loaded
        table is synced.
        """
        table = table_name(name)
        created_now = name not in self._created
        self._execute_locked("BEGIN TRANSACTION")
        try:
            if created_now:
                decls = ", ".join(
                    self._column_decl(column, index)
                    for index, column in enumerate(relation.columns)
                )
                self._execute_locked(
                    f"CREATE TABLE {table} ({decls})"
                )
            else:
                self._execute_locked(f"DELETE FROM {table}")
            placeholders = ", ".join(["?"] * relation.arity)
            insert = f"INSERT INTO {table} VALUES ({placeholders})"
            rows = relation.rows
            for start in range(0, len(rows), self._chunk_rows):
                maybe_fault("backend.load")
                self._executemany_locked(
                    insert, rows[start:start + self._chunk_rows]
                )
        except BaseException:
            self._rollback_locked()
            raise
        self._execute_locked("COMMIT")
        if created_now:
            self._created.add(name)

    def _rollback_locked(self) -> None:
        """Best-effort ROLLBACK: the in-flight error stays primary."""
        try:
            self._connection.execute("ROLLBACK")
        except self._driver_errors:
            # The transaction is already gone (e.g. the driver aborted
            # it); the original load error propagating past us is the
            # failure that matters.
            pass

    # ------------------------------------------------------------------
    # protocol: execute
    # ------------------------------------------------------------------

    def execute(self, plan: PSJQuery) -> Relation:
        """Run ``plan`` as one ``SELECT DISTINCT`` in the store."""
        database = self._require_database()
        plan.validate(database.schema)
        sql = plan_to_sql(plan, database.schema)
        with self._lock:
            self._sync_locked(plan.relation_names())
            rows = self._fetch_locked(sql)
        return Relation(
            plan.output_columns(database.schema),
            (tuple(row) for row in rows),
            validate=False,
        )

    def execute_masked(
        self,
        plan: PSJQuery,
        mask: Mask,
        compiled: Optional[CompiledMask] = None,
        drop_fully_masked: bool = False,
    ) -> Tuple[Tuple, ...]:
        """Run ``plan`` with ``mask`` pushed into the SQL statement.

        When the mask is SQL-extractable
        (:func:`repro.core.compiled_mask.sql_predicate_view`), masking
        happens inside the query engine: one statement computes the
        answer and nulls out hidden cells, and the only Python-side
        work is translating NULL back to the ``MASKED`` sentinel
        (sound because the stored domains never produce NULL).  A mask
        with inexpressible rows falls back to evaluating the plan in
        SQL and masking with the Python matchers.
        """
        database = self._require_database()
        plan.validate(database.schema)
        view = sql_predicate_view(mask)
        if view is None:
            answer = self.execute(plan)
            if compiled is not None:
                return compiled.apply(
                    answer, drop_fully_masked=drop_fully_masked
                )
            return mask.apply(
                answer, drop_fully_masked=drop_fully_masked
            )
        if view.covers_all:
            # Every cell of every tuple is visible (the
            # ``covers_everything`` fast path): the plan's own rows
            # are the delivered rows.
            answer = self.execute(plan)
            return tuple(tuple(values) for values in answer.rows)
        sql = masked_plan_to_sql(
            plan, database.schema, view,
            drop_fully_masked=drop_fully_masked,
        )
        with self._lock:
            self._sync_locked(plan.relation_names())
            raw = self._fetch_locked(sql)
        return tuple(
            tuple(MASKED if value is None else value for value in row)
            for row in raw
        )

    # ------------------------------------------------------------------
    # driver-error boundary
    # ------------------------------------------------------------------

    def _execute_locked(self, sql: str) -> None:
        try:
            self._connection.execute(sql)
        except self._driver_errors as error:
            raise BackendError(
                f"{self.name} statement failed: {error}"
            ) from error

    def _executemany_locked(self, sql: str,
                            rows: Sequence[Row]) -> None:
        try:
            self._connection.executemany(sql, rows)
        except self._driver_errors as error:
            raise BackendError(
                f"{self.name} bulk insert failed: {error}"
            ) from error

    def _fetch_locked(self, sql: str) -> List[Tuple[Any, ...]]:
        try:
            result: List[Tuple[Any, ...]] = \
                self._connection.execute(sql).fetchall()
            return result
        except self._driver_errors as error:
            raise BackendError(
                f"{self.name} query failed: {error}"
            ) from error
