"""The in-process reference backend (the differential oracle).

Wraps the existing evaluator pipeline — ``evaluate_optimized`` for
plans, ``Mask.apply`` / ``CompiledMask.apply`` for masking — behind
the :class:`~repro.backends.base.ExecutionBackend` protocol.  This is
the backend every engine uses by default, and the oracle the SQL
backends are differentially tested against
(``tests/property/test_backend_parity.py``, soundlint rule SL008).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.algebra.database import Database
from repro.algebra.expression import PSJQuery
from repro.algebra.optimize import evaluate_optimized
from repro.algebra.relation import Relation
from repro.core.compiled_mask import CompiledMask
from repro.core.mask import Mask
from repro.errors import BackendError


class PythonBackend:
    """Evaluate plans in-process over the live :class:`Database`.

    Holds a *reference* to the database (no copy), so mutations are
    visible immediately and ``load`` costs nothing — there is no store
    to synchronize.
    """

    name = "python"

    def __init__(self, database: Optional[Database] = None) -> None:
        self._database = database

    def load(self, database: Database) -> None:
        """Attach ``database``; the Python backend keeps no copy."""
        self._database = database

    def _require_database(self) -> Database:
        database = self._database
        if database is None:
            raise BackendError(
                f"backend {self.name!r} has no database loaded"
            )
        return database

    def execute(self, plan: PSJQuery) -> Relation:
        """Evaluate ``plan`` with the optimized in-process evaluator."""
        return evaluate_optimized(plan, self._require_database())

    def execute_masked(
        self,
        plan: PSJQuery,
        mask: Mask,
        compiled: Optional[CompiledMask] = None,
        drop_fully_masked: bool = False,
    ) -> Tuple[Tuple, ...]:
        """Evaluate then mask — the reference composition."""
        answer = self.execute(plan)
        if compiled is not None:
            return compiled.apply(
                answer, drop_fully_masked=drop_fully_masked
            )
        return mask.apply(answer, drop_fully_masked=drop_fully_masked)
