"""The in-process reference backend (the differential oracle).

Wraps the existing evaluator pipeline — ``evaluate_optimized`` for
plans, ``Mask.apply`` / ``CompiledMask.apply`` for masking — behind
the :class:`~repro.backends.base.ExecutionBackend` protocol.  This is
the backend every engine uses by default, and the oracle the SQL
backends are differentially tested against
(``tests/property/test_backend_parity.py``, soundlint rule SL008).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.algebra.columnar import DEFAULT_CHUNK_SIZE
from repro.algebra.database import Database
from repro.algebra.expression import PSJQuery
from repro.algebra.optimize import evaluate_optimized, iter_evaluate_optimized
from repro.algebra.relation import Relation, Row
from repro.core.compiled_mask import CompiledMask, apply_mask_columnar
from repro.core.mask import Mask
from repro.errors import BackendError


class PythonBackend:
    """Evaluate plans in-process over the live :class:`Database`.

    Holds a *reference* to the database (no copy), so mutations are
    visible immediately and ``load`` costs nothing — there is no store
    to synchronize.
    """

    name = "python"

    def __init__(self, database: Optional[Database] = None) -> None:
        self._database = database

    def load(self, database: Database) -> None:
        """Attach ``database``; the Python backend keeps no copy."""
        self._database = database

    def _require_database(self) -> Database:
        database = self._database
        if database is None:
            raise BackendError(
                f"backend {self.name!r} has no database loaded"
            )
        return database

    def execute(self, plan: PSJQuery) -> Relation:
        """Evaluate ``plan`` with the optimized in-process evaluator."""
        return evaluate_optimized(plan, self._require_database())

    def execute_stream(
        self,
        plan: PSJQuery,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> Iterator[Tuple[Row, ...]]:
        """Evaluate ``plan``, yielding deduplicated rows in chunks.

        The bounded-memory counterpart of :meth:`execute`: the
        concatenated chunks equal ``execute(plan).rows`` exactly,
        including order, but the answer is never materialized whole
        (see :func:`repro.algebra.optimize.iter_evaluate_optimized`
        for what *is* retained).
        """
        return iter_evaluate_optimized(
            plan, self._require_database(), chunk_size=chunk_size
        )

    def execute_masked(
        self,
        plan: PSJQuery,
        mask: Mask,
        compiled: Optional[CompiledMask] = None,
        drop_fully_masked: bool = False,
        columnar: bool = True,
        use_numpy: bool = False,
    ) -> Tuple[Tuple, ...]:
        """Evaluate then mask — the reference composition.

        With a ``compiled`` mask the columnar kernel
        (:func:`repro.core.compiled_mask.apply_mask_columnar`) is the
        default route; ``columnar=False`` selects the PR 4 row kernel
        and ``use_numpy=True`` opts the columnar kernel into its numpy
        broadcast path.  All three routes are byte-identical
        (``tests/property/test_columnar_relation.py``).
        """
        answer = self.execute(plan)
        if compiled is not None:
            if columnar:
                return apply_mask_columnar(
                    compiled, answer,
                    drop_fully_masked=drop_fully_masked,
                    use_numpy=use_numpy,
                )
            return compiled.apply(
                answer, drop_fully_masked=drop_fully_masked
            )
        return mask.apply(answer, drop_fully_masked=drop_fully_masked)
