"""The optional DuckDB execution backend.

Identical in shape to :class:`~repro.backends.sqlite.SQLiteBackend` —
same SQL compiler, same chunked loading and version-counter sync —
but running over the ``duckdb`` driver, whose vectorized engine is
built for exactly the scan-heavy analytical plans the benchmark
exercises.

The driver is an *optional* dependency (``pip install repro[backends]``
— see ``pyproject.toml``); this module imports it lazily so that the
library, and every non-DuckDB test, works without it.  Constructing
:class:`DuckDBBackend` without the driver raises
:class:`~repro.errors.BackendUnavailableError`, which callers like the
CI backends job and ``tests/test_backends.py`` treat as a skip.

DuckDB columns are typed (there is no NONE affinity), so a REAL-domain
column is declared DOUBLE and stores Python ints as floats — numerically
equal, per Relation's set semantics, but a different representative
object than the Python oracle returns.  The parity bar is therefore
numeric equality, exactly as for SQLite's DISTINCT representatives.
"""

from __future__ import annotations

import importlib
from typing import Any, Optional

from repro.algebra.database import Database
from repro.algebra.relation import Column
from repro.algebra.to_sql import column_name
from repro.backends.common import _SQLBackend
from repro.errors import BackendUnavailableError

#: Domain name -> DuckDB column type.
_DUCKDB_TYPES = {
    "integer": "BIGINT",
    "real": "DOUBLE",
    "string": "VARCHAR",
}


class DuckDBBackend(_SQLBackend):
    """Compile plans and masks into SQL over the DuckDB driver."""

    name = "duckdb"

    def __init__(self, database: Optional[Database] = None) -> None:
        try:
            self._driver = importlib.import_module("duckdb")
        except ImportError as error:
            raise BackendUnavailableError(
                "duckdb",
                "the optional duckdb driver is not installed "
                "(pip install repro[backends])",
            ) from error
        self._driver_errors = (self._driver.Error,)
        super().__init__(database)

    def _connect(self) -> Any:
        return self._driver.connect(":memory:")

    def _column_decl(self, column: Column, index: int) -> str:
        sql_type = _DUCKDB_TYPES.get(column.domain.name, "VARCHAR")
        return f"{column_name(index)} {sql_type}"
