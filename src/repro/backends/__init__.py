"""Pluggable execution backends.

Where the data-plane half of the authorization process runs.  The
engine asks :func:`make_backend` for the backend named by
``EngineConfig.backend`` and routes every plan evaluation through it;
the mask-derivation half (the meta-algebra) is backend-independent.

* ``python`` — the in-process reference evaluator, and the
  differential oracle for everything else.
* ``sqlite`` — plans and SQL-extractable masks compiled into single
  statements over an embedded stdlib ``sqlite3`` store.
* ``duckdb`` — the same compiler over the optional ``duckdb`` driver.

See ``docs/BACKENDS.md`` for the compilation scheme, the mask
pushdown and its fallback, and the parity guarantees (soundlint rule
SL008 pins each non-oracle backend to its oracle and differential
test suite).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algebra.database import Database
    from repro.backends.base import ExecutionBackend as _Backend

#: Names :func:`make_backend` accepts, in documentation order.
BACKEND_NAMES = ("python", "sqlite", "duckdb")


# NOTE: make_backend is defined — and its imports deferred — *before*
# the class re-exports below.  Importing any backend module can pull
# in repro.core (for Mask/CompiledMask), whose engine module imports
# make_backend from this partially-initialized package; defining the
# factory first keeps that cycle well-founded.
def make_backend(name: str,
                 database: Optional["Database"] = None) -> "_Backend":
    """Construct the execution backend called ``name``.

    When ``database`` is given it is loaded immediately (for the SQL
    backends: bulk-loaded into the embedded store).

    Raises:
        BackendUnavailableError: for unknown names, and for optional
            backends whose driver is not installed.
    """
    if name == "python":
        from repro.backends.python import PythonBackend
        return PythonBackend(database)
    if name == "sqlite":
        from repro.backends.sqlite import SQLiteBackend
        return SQLiteBackend(database)
    if name == "duckdb":
        from repro.backends.duckdb import DuckDBBackend
        return DuckDBBackend(database)
    from repro.errors import BackendUnavailableError
    raise BackendUnavailableError(
        name, f"known backends: {', '.join(BACKEND_NAMES)}"
    )


from repro.backends.base import (  # noqa: E402
    DeliveredRows,
    ExecutionBackend,
)
from repro.backends.duckdb import DuckDBBackend  # noqa: E402
from repro.backends.python import PythonBackend  # noqa: E402
from repro.backends.sqlite import SQLiteBackend  # noqa: E402

__all__ = [
    "BACKEND_NAMES",
    "DeliveredRows",
    "DuckDBBackend",
    "ExecutionBackend",
    "PythonBackend",
    "SQLiteBackend",
    "make_backend",
]
