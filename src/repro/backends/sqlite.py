"""The stdlib ``sqlite3`` execution backend.

An in-memory SQLite store fed by the shared SQL compiler
(:mod:`repro.algebra.to_sql`).  Columns are declared *without* a type:
SQLite's NONE affinity then stores every bound Python value verbatim
(int as INTEGER, float as REAL, str as TEXT), so values round-trip
exactly and the backend needs no result coercion.  Cross-class
comparison semantics match the Python evaluator on well-typed plans —
the schema's domain checks already rule out string/number mixing, and
SQLite compares INTEGER with REAL numerically, as Python does.

One caveat, shared with the Python evaluator's own dedupe: SQL
``DISTINCT`` and Python set semantics both treat ``3`` and ``3.0`` as
the same row, but *which* representative survives is an
implementation choice on either side.  Relation equality is set
equality (``3 == 3.0``), so the parity suite is insensitive to it.
"""

from __future__ import annotations

import sqlite3
from typing import Any

from repro.algebra.relation import Column
from repro.algebra.to_sql import column_name
from repro.backends.common import _SQLBackend


class SQLiteBackend(_SQLBackend):
    """Compile plans and masks into SQL over stdlib ``sqlite3``."""

    name = "sqlite"
    _driver_errors = (sqlite3.Error,)

    def _connect(self) -> Any:
        # One in-memory store per backend instance.  The backend's own
        # lock serializes all access, so the sqlite3 same-thread guard
        # is redundant and would only break serving worker threads.
        # isolation_level=None puts the driver in true autocommit so
        # the bulk loader's explicit BEGIN/COMMIT/ROLLBACK are the
        # only transactions in play (the driver's implicit-BEGIN mode
        # would otherwise hold a never-committed transaction open and
        # make an explicit BEGIN a nested-transaction error).
        return sqlite3.connect(
            ":memory:", check_same_thread=False, isolation_level=None
        )

    def _column_decl(self, column: Column, index: int) -> str:
        # No declared type: NONE affinity keeps stored values exactly
        # as bound, whatever the column's domain.
        return column_name(index)
