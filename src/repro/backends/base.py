"""The execution-backend protocol.

The paper's authorization process separates *what* to compute — the
plan A and the mask A' — from *where* the data-plane half runs.  An
:class:`ExecutionBackend` owns that second half: it holds (a copy of,
or a reference to) the database instance and evaluates PSJ plans
against it, optionally applying the mask inside its own engine.

Three implementations ship with the library (see
:func:`repro.backends.make_backend`):

* ``python`` — :class:`repro.backends.python.PythonBackend`, the
  in-process reference evaluator.  It *is* the differential oracle:
  every other backend must be sorted-row identical to it
  (``tests/property/test_backend_parity.py``, soundlint rule SL008).
* ``sqlite`` — :class:`repro.backends.sqlite.SQLiteBackend`, compiling
  plans (and SQL-extractable masks) into single statements over an
  embedded stdlib ``sqlite3`` store.
* ``duckdb`` — :class:`repro.backends.duckdb.DuckDBBackend`, the same
  SQL compiler over the optional ``duckdb`` driver.

The protocol is deliberately small: the engine only ever needs
:meth:`ExecutionBackend.execute` (the authorize path applies masks
itself so the audited answer and the delivered rows stay consistent),
while :meth:`ExecutionBackend.execute_masked` is the data-plane API
that lets SQL backends mask *inside* the query engine.

Backends may additionally offer ``execute_stream(plan, chunk_size)``
yielding deduplicated answer rows in chunks — an *optional*
capability, not part of the protocol: the resilient executor probes
for it with ``getattr`` and falls back to materializing
:meth:`ExecutionBackend.execute` output and chunking it, so SQL
backends keep working in streamed deliveries unchanged.  Where
provided, the concatenated chunks must equal ``execute(plan).rows``
exactly, including order (soundlint SL005 pairs the Python backend's
implementation with its materializing oracle).
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple, runtime_checkable

from repro.algebra.database import Database
from repro.algebra.expression import PSJQuery
from repro.algebra.relation import Relation
from repro.core.compiled_mask import CompiledMask
from repro.core.mask import Mask

#: Rows delivered by ``execute_masked``: answer tuples whose hidden
#: cells hold the ``MASKED`` sentinel — the exact return type of
#: :meth:`repro.core.mask.Mask.apply`.
DeliveredRows = Tuple[Tuple, ...]


@runtime_checkable
class ExecutionBackend(Protocol):
    """Where PSJ plans run.

    Implementations must be safe to call from multiple worker threads
    (the serving layer shares one backend per tenant engine) and must
    observe mutations of the loaded :class:`Database` — the SQL
    backends do so through :meth:`Database.version_of` counters, the
    Python backend reads the live instances directly.
    """

    #: The factory name of this backend (``"python"``, ``"sqlite"``...).
    name: str

    def load(self, database: Database) -> None:
        """Attach ``database`` as this backend's data source.

        SQL backends bulk-load every relation into their embedded
        store here (chunked inserts); later mutations are picked up
        per-plan by comparing mutation counters.
        """

    def execute(self, plan: PSJQuery) -> Relation:
        """Evaluate ``plan``, returning the (unmasked) answer A.

        Must equal ``evaluate_optimized(plan, database)`` as a set of
        rows — row *order* is backend-specific, and
        :class:`~repro.algebra.relation.Relation` equality is set
        equality, so callers never depend on it.

        Raises:
            BackendError: when no database is loaded or the embedded
                engine fails; inside ``authorize`` the fail-closed
                boundary turns this into an empty-mask answer.
        """
        ...

    def execute_masked(
        self,
        plan: PSJQuery,
        mask: Mask,
        compiled: Optional[CompiledMask] = None,
        drop_fully_masked: bool = False,
    ) -> DeliveredRows:
        """Evaluate ``plan`` and apply ``mask``, in one round trip.

        Returns exactly what ``mask.apply(execute(plan), ...)`` would
        (up to row order): answer tuples with withheld cells replaced
        by the ``MASKED`` sentinel, fully masked tuples optionally
        dropped.  SQL backends push SQL-extractable masks into the
        statement itself (``CASE WHEN`` per column) and fall back to
        the Python matchers — ``compiled`` when given, else the
        interpreted ``mask`` — for the rest.
        """
        ...
