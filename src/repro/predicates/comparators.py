"""The comparators of the paper's comparative subformulas.

Section 2 admits comparative subformulas ``d1 theta d2`` where theta is
one of <, <=, >=, =, != (and, symmetrically, >).  :class:`Comparator`
models theta with evaluation, negation, and flipping (``a < b`` iff
``b > a``), which the normalizer uses to orient comparisons.
"""

from __future__ import annotations

import enum
import operator
from typing import Callable, Dict

from repro.algebra.types import Value
from repro.errors import ParseError


class Comparator(enum.Enum):
    """A comparison operator between two values of a common domain."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "="
    NE = "!="

    def evaluate(self, left: Value, right: Value) -> bool:
        """Apply this comparator to two values."""
        return _EVAL[self](left, right)

    def flipped(self) -> "Comparator":
        """The comparator with operands swapped: ``a op b == b op' a``."""
        return _FLIP[self]

    def negated(self) -> "Comparator":
        """The logical complement: ``not (a op b) == a op' b``."""
        return _NEGATE[self]

    @property
    def is_equality(self) -> bool:
        return self is Comparator.EQ

    @property
    def is_order(self) -> bool:
        """True for the four order comparators (<, <=, >, >=)."""
        return self in (Comparator.LT, Comparator.LE,
                        Comparator.GT, Comparator.GE)

    def __str__(self) -> str:
        return self.value


_EVAL: Dict[Comparator, Callable[[Value, Value], bool]] = {
    Comparator.LT: operator.lt,
    Comparator.LE: operator.le,
    Comparator.GT: operator.gt,
    Comparator.GE: operator.ge,
    Comparator.EQ: operator.eq,
    Comparator.NE: operator.ne,
}

_FLIP = {
    Comparator.LT: Comparator.GT,
    Comparator.LE: Comparator.GE,
    Comparator.GT: Comparator.LT,
    Comparator.GE: Comparator.LE,
    Comparator.EQ: Comparator.EQ,
    Comparator.NE: Comparator.NE,
}

_NEGATE = {
    Comparator.LT: Comparator.GE,
    Comparator.LE: Comparator.GT,
    Comparator.GT: Comparator.LE,
    Comparator.GE: Comparator.LT,
    Comparator.EQ: Comparator.NE,
    Comparator.NE: Comparator.EQ,
}

#: Surface spellings accepted by the parser, mapped to comparators.
#: The paper writes >= as the mathematical symbol; plain-text synonyms
#: are accepted too.
SPELLINGS: Dict[str, Comparator] = {
    "<": Comparator.LT,
    "<=": Comparator.LE,
    "≤": Comparator.LE,  # ≤
    ">": Comparator.GT,
    ">=": Comparator.GE,
    "≥": Comparator.GE,  # ≥
    "=": Comparator.EQ,
    "==": Comparator.EQ,
    "!=": Comparator.NE,
    "<>": Comparator.NE,
    "≠": Comparator.NE,  # ≠
}


def comparator_from_spelling(text: str) -> Comparator:
    """Parse a comparator token.

    Raises:
        ParseError: for an unrecognized spelling.
    """
    try:
        return SPELLINGS[text]
    except KeyError:
        raise ParseError(f"unknown comparator {text!r}") from None
