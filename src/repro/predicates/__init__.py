"""S4 — predicate reasoning.

Comparators, interval algebra over ordered domains, the Section 4.2
four-case classifier (clear / retain / conjoin / discard), and the
constraint store that operationalizes the COMPARISON relation.
"""

from repro.predicates.comparators import (
    Comparator,
    comparator_from_spelling,
)
from repro.predicates.implication import SelectionCase, classify, conjoined
from repro.predicates.intervals import Interval
from repro.predicates.store import ConstraintStore, VarRelation

__all__ = [
    "Comparator",
    "ConstraintStore",
    "Interval",
    "SelectionCase",
    "VarRelation",
    "classify",
    "comparator_from_spelling",
    "conjoined",
]
