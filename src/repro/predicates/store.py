"""The constraint store — the COMPARISON relation, made operational.

Section 3 stores every non-equality comparative subformula of a view as
a tuple ``(VIEW, X, COMPARE, Y)`` in the auxiliary COMPARISON relation.
:class:`ConstraintStore` is the reasoning counterpart of that relation:
it maps each view variable to the :class:`~repro.predicates.intervals.
Interval` implied by its variable-to-constant comparisons and keeps the
variable-to-variable comparisons as explicit relations.

Section 4.2 notes that "determining the appropriate case for given mu
and lambda may require consulting relation COMPARISON, and, possibly,
modifying it" — selections consult the store via
:meth:`interval_for` and produce modified stores via :meth:`constrain`
and :meth:`substitute`.

Stores are immutable; every update returns a new store, so each mask
row can evolve its own constraints independently (rows diverge during
the selection phase).

Satisfiability checking is conservative in the safe direction:
:meth:`is_definitely_unsat` answers True only for provable
contradictions.  An undetected contradiction merely leaves a mask row
that matches no answer tuple — never an unsound delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from repro.algebra.types import Value
from repro.errors import ReproError
from repro.predicates.comparators import Comparator
from repro.predicates.intervals import Interval


@dataclass(frozen=True)
class VarRelation:
    """A variable-to-variable comparison, canonically oriented.

    GT/GE are flipped to LT/LE at construction; NE operands are sorted,
    so structurally equal constraints compare equal.
    """

    left: str
    op: Comparator
    right: str

    @staticmethod
    def make(left: str, op: Comparator, right: str) -> "VarRelation":
        if op in (Comparator.GT, Comparator.GE):
            left, op, right = right, op.flipped(), left
        if op is Comparator.NE and right < left:
            left, right = right, left
        if op is Comparator.EQ:
            raise ReproError(
                "equality between variables must be handled by unification, "
                "not stored as a relation"
            )
        return VarRelation(left, op, right)

    def mentions(self, var: str) -> bool:
        return var in (self.left, self.right)

    def other(self, var: str) -> str:
        """The operand that is not ``var``."""
        return self.right if var == self.left else self.left

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


class ConstraintStore:
    """An immutable set of interval and relational constraints."""

    __slots__ = ("_intervals", "_relations")

    def __init__(
        self,
        intervals: Optional[Mapping[str, Interval]] = None,
        relations: Iterable[VarRelation] = (),
    ) -> None:
        self._intervals: Dict[str, Interval] = {
            var: iv for var, iv in (intervals or {}).items() if not iv.is_top
        }
        self._relations: FrozenSet[VarRelation] = frozenset(relations)

    # ------------------------------------------------------------------
    # constructors / accessors
    # ------------------------------------------------------------------

    @staticmethod
    def empty() -> "ConstraintStore":
        return _EMPTY

    def interval_for(self, var: str) -> Interval:
        """The interval constraint on ``var`` (top when unconstrained)."""
        return self._intervals.get(var, Interval.top())

    def relations_of(self, var: str) -> Tuple[VarRelation, ...]:
        """All variable-to-variable relations mentioning ``var``."""
        return tuple(sorted(
            (r for r in self._relations if r.mentions(var)), key=str
        ))

    def relations(self) -> Tuple[VarRelation, ...]:
        return tuple(sorted(self._relations, key=str))

    def mentioned_vars(self) -> FrozenSet[str]:
        """Every variable the store constrains."""
        out: Set[str] = set(self._intervals)
        for relation in self._relations:
            out.add(relation.left)
            out.add(relation.right)
        return frozenset(out)

    def is_empty(self) -> bool:
        return not self._intervals and not self._relations

    # ------------------------------------------------------------------
    # functional updates
    # ------------------------------------------------------------------

    def constrain(self, var: str, op: Comparator, value: Value,
                  discrete: bool = False) -> "ConstraintStore":
        """Conjoin ``var op value`` onto the store."""
        return self.constrain_interval(
            var, Interval.from_comparison(op, value, discrete)
        )

    def constrain_interval(self, var: str,
                           interval: Interval) -> "ConstraintStore":
        """Intersect ``var``'s interval with ``interval``."""
        intervals = dict(self._intervals)
        intervals[var] = self.interval_for(var).intersect(interval)
        return ConstraintStore(intervals, self._relations)

    def replace_interval(self, var: str,
                         interval: Interval) -> "ConstraintStore":
        """Overwrite ``var``'s interval (used by the CONJOIN case)."""
        intervals = dict(self._intervals)
        if interval.is_top:
            intervals.pop(var, None)
        else:
            intervals[var] = interval
        return ConstraintStore(intervals, self._relations)

    def relate(self, left: str, op: Comparator,
               right: str) -> "ConstraintStore":
        """Conjoin the variable-to-variable comparison ``left op right``."""
        relation = VarRelation.make(left, op, right)
        return ConstraintStore(
            self._intervals, self._relations | {relation}
        )

    def substitute(self, var: str, value: Value) -> "ConstraintStore":
        """Bind ``var := value`` and fold its constraints onto others.

        The variable's own interval turns into a point check (a failed
        check yields a store that is provably unsatisfiable rather than
        raising, so callers uniformly test :meth:`is_definitely_unsat`).
        Relations mentioning the variable become interval constraints on
        the other operand.
        """
        intervals = dict(self._intervals)
        own = intervals.pop(var, Interval.top())
        if not own.contains(value):
            # Record an impossible interval so unsatisfiability is visible.
            intervals[var] = _IMPOSSIBLE
            return ConstraintStore(intervals, self._relations)

        relations = set()
        for relation in self._relations:
            if not relation.mentions(var):
                relations.add(relation)
                continue
            other = relation.other(var)
            if other == var:
                # x op x: NE is unsatisfiable, LT likewise; LE trivial.
                if relation.op in (Comparator.NE, Comparator.LT):
                    intervals[other] = _IMPOSSIBLE
                continue
            op = relation.op
            # Orient so the surviving variable is on the left.
            if relation.left == var:
                op = op.flipped()
            interval = Interval.from_comparison(op, value)
            current = intervals.get(other, Interval.top())
            intervals[other] = current.intersect(interval)
        return ConstraintStore(intervals, relations)

    def unify(self, keep: str, drop: str) -> "ConstraintStore":
        """Merge variable ``drop`` into ``keep`` (equality conjunction)."""
        if keep == drop:
            return self
        intervals = dict(self._intervals)
        dropped = intervals.pop(drop, Interval.top())
        intervals[keep] = intervals.get(keep, Interval.top()).intersect(dropped)
        relations: Set[VarRelation] = set()
        for relation in self._relations:
            left = keep if relation.left == drop else relation.left
            right = keep if relation.right == drop else relation.right
            if left == right:
                if relation.op in (Comparator.NE, Comparator.LT):
                    intervals[left] = _IMPOSSIBLE
                continue
            relations.add(VarRelation.make(left, relation.op, right))
        return ConstraintStore(intervals, relations)

    def merge(self, other: "ConstraintStore") -> "ConstraintStore":
        """Conjunction of two stores."""
        intervals = dict(self._intervals)
        for var, interval in other._intervals.items():
            intervals[var] = intervals.get(var, Interval.top()).intersect(interval)
        return ConstraintStore(intervals, self._relations | other._relations)

    def restrict_closure(self, roots: Iterable[str]) -> "ConstraintStore":
        """The sub-store reachable from ``roots`` through relations.

        Used to carve a row-local store out of the catalog-wide one.
        Taking the transitive closure (rather than just the roots)
        guarantees no restricting constraint is lost, which masking
        soundness requires.
        """
        reachable: Set[str] = set(roots)
        frontier = set(reachable)
        while frontier:
            nxt: Set[str] = set()
            for relation in self._relations:
                for var in (relation.left, relation.right):
                    if var in frontier:
                        other = relation.other(var)
                        if other not in reachable:
                            nxt.add(other)
            reachable |= nxt
            frontier = nxt
        intervals = {
            var: iv for var, iv in self._intervals.items() if var in reachable
        }
        relations = {
            r for r in self._relations
            if r.left in reachable or r.right in reachable
        }
        return ConstraintStore(intervals, relations)

    def rename(self, mapping: Mapping[str, str]) -> "ConstraintStore":
        """Rename variables (used by canonicalization)."""
        intervals = {
            mapping.get(var, var): iv for var, iv in self._intervals.items()
        }
        relations = {
            VarRelation.make(
                mapping.get(r.left, r.left), r.op, mapping.get(r.right, r.right)
            )
            for r in self._relations
        }
        return ConstraintStore(intervals, relations)

    # ------------------------------------------------------------------
    # decision procedures
    # ------------------------------------------------------------------

    def is_definitely_unsat(self) -> bool:
        """Provable unsatisfiability of the conjunction of constraints.

        Runs bound propagation along the order relations until a fixed
        number of rounds (one per variable suffices for chains) and
        reports True when any interval empties or an NE pins two equal
        points.
        """
        intervals = dict(self._intervals)
        if any(iv.is_empty() for iv in intervals.values()):
            return True

        order = [r for r in self._relations if r.op.is_order]
        rounds = len(self.mentioned_vars()) + 1
        for _ in range(rounds):
            changed = False
            for relation in order:
                left = intervals.get(relation.left, Interval.top())
                right = intervals.get(relation.right, Interval.top())
                strict = relation.op is Comparator.LT
                # left < right: left.hi tightened by right.hi, and
                # right.lo tightened by left.lo.
                new_left = left.intersect(Interval(
                    hi=right.hi,
                    hi_strict=strict or right.hi_strict,
                ) if right.hi is not None else Interval.top())
                new_right = right.intersect(Interval(
                    lo=left.lo,
                    lo_strict=strict or left.lo_strict,
                ) if left.lo is not None else Interval.top())
                if new_left != left:
                    intervals[relation.left] = new_left
                    changed = True
                if new_right != right:
                    intervals[relation.right] = new_right
                    changed = True
                if new_left.is_empty() or new_right.is_empty():
                    return True
            if not changed:
                break

        for relation in self._relations:
            if relation.op is Comparator.NE:
                left = intervals.get(relation.left, Interval.top())
                right = intervals.get(relation.right, Interval.top())
                if (left.is_point and right.is_point
                        and left.the_point() == right.the_point()):
                    return True
            if relation.op is Comparator.LT and relation.left == relation.right:
                return True
        return False

    def satisfied_by(self, binding: Mapping[str, Value]) -> bool:
        """Check a (possibly partial) variable assignment.

        Bound variables must lie in their intervals; relations with both
        operands bound must hold.  Constraints touching unbound
        variables are treated as satisfiable (the mask semantics is
        existential and the supported domains are unbounded), except
        when the residual store is provably unsatisfiable.
        """
        store: ConstraintStore = self
        for var, value in binding.items():
            if not store.interval_for(var).contains(value):
                return False
            store = store.substitute(var, value)
        return not store.is_definitely_unsat()

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def describe_var(self, var: str, subject: str) -> Tuple[str, ...]:
        """Clauses describing ``var``'s interval, phrased over ``subject``."""
        return self.interval_for(var).describe(subject)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintStore):
            return NotImplemented
        return (
            self._intervals == other._intervals
            and self._relations == other._relations
        )

    def __hash__(self) -> int:
        return hash((
            tuple(sorted(self._intervals.items(), key=lambda kv: kv[0])),
            self._relations,
        ))

    def __repr__(self) -> str:
        parts = [
            f"{var}: {iv}" for var, iv in sorted(self._intervals.items())
        ]
        parts.extend(str(r) for r in self.relations())
        return "ConstraintStore(" + "; ".join(parts) + ")"


_EMPTY = ConstraintStore()
#: An interval that is provably empty, used to poison contradictions.
_IMPOSSIBLE = Interval(lo=1, hi=0)
