"""Interval abstraction for one-variable conjunctive predicates.

The four-case selection refinement of Section 4.2 needs to decide, for
a query predicate lambda and a stored view predicate mu over the same
attribute, whether lambda implies mu, mu implies lambda, the two are
contradictory, or neither.  For the conjunctive comparators of the
paper (<, <=, >, >=, =, !=) over a totally ordered domain, every
one-variable conjunction denotes an interval with a finite set of
excluded points — which is exactly what :class:`Interval` represents.

All decision procedures here are *conservative*: they answer True only
when the property provably holds.  A conservative "don't know" makes
the engine fall back to the always-sound conjoin case, never to an
unsound one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Optional, Tuple

from repro.algebra.types import Domain, Value
from repro.errors import TypeMismatchError
from repro.predicates.comparators import Comparator


@dataclass(frozen=True)
class Interval:
    """A (possibly unbounded) interval with excluded points.

    ``lo``/``hi`` of ``None`` mean unbounded on that side.  ``excluded``
    holds points removed by ``!=`` constraints.  ``discrete`` marks
    integer-like domains where strict bounds can be tightened.
    """

    lo: Optional[Value] = None
    lo_strict: bool = False
    hi: Optional[Value] = None
    hi_strict: bool = False
    excluded: FrozenSet[Value] = field(default_factory=frozenset)
    discrete: bool = False

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @staticmethod
    def top(discrete: bool = False) -> "Interval":
        """The unconstrained interval (predicate ``true``)."""
        return Interval(discrete=discrete)

    @staticmethod
    def point(value: Value, discrete: bool = False) -> "Interval":
        """The interval containing exactly ``value`` (predicate ``= value``)."""
        return Interval(lo=value, hi=value, discrete=discrete)

    @staticmethod
    def from_comparison(op: Comparator, value: Value,
                        discrete: bool = False) -> "Interval":
        """The interval denoted by ``x op value``."""
        if op is Comparator.EQ:
            return Interval.point(value, discrete)
        if op is Comparator.NE:
            return Interval(excluded=frozenset([value]), discrete=discrete)
        if op is Comparator.LT:
            return Interval(hi=value, hi_strict=True, discrete=discrete)
        if op is Comparator.LE:
            return Interval(hi=value, discrete=discrete)
        if op is Comparator.GT:
            return Interval(lo=value, lo_strict=True, discrete=discrete)
        if op is Comparator.GE:
            return Interval(lo=value, discrete=discrete)
        raise TypeMismatchError(f"unsupported comparator {op}")

    @staticmethod
    def for_domain(domain: Domain) -> "Interval":
        """The top interval parameterized by ``domain``'s discreteness."""
        return Interval.top(discrete=domain.discrete)

    # ------------------------------------------------------------------
    # normalization
    # ------------------------------------------------------------------

    def normalized(self) -> "Interval":
        """Tighten strict integer bounds and absorb excluded endpoints.

        ``x > 3`` over integers becomes ``x >= 4``; an excluded point
        equal to a closed endpoint turns the bound strict (then
        tightens again when discrete).
        """
        lo, lo_strict = self.lo, self.lo_strict
        hi, hi_strict = self.hi, self.hi_strict
        excluded = set(self.excluded)

        changed = True
        while changed:
            changed = False
            if self.discrete and lo is not None and lo_strict \
                    and isinstance(lo, int):
                lo, lo_strict = lo + 1, False
                changed = True
            if self.discrete and hi is not None and hi_strict \
                    and isinstance(hi, int):
                hi, hi_strict = hi - 1, False
                changed = True
            if lo is not None and not lo_strict and lo in excluded:
                excluded.discard(lo)
                lo_strict = True
                changed = True
            if hi is not None and not hi_strict and hi in excluded:
                excluded.discard(hi)
                hi_strict = True
                changed = True

        # Drop excluded points that fall outside the bounds anyway.
        kept = frozenset(
            v for v in excluded
            if _within(v, lo, lo_strict, hi, hi_strict)
        )
        return Interval(lo, lo_strict, hi, hi_strict, kept, self.discrete)

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------

    def intersect(self, other: "Interval") -> "Interval":
        """The conjunction of the two predicates."""
        lo, lo_strict = _tighter_lo(
            (self.lo, self.lo_strict), (other.lo, other.lo_strict)
        )
        hi, hi_strict = _tighter_hi(
            (self.hi, self.hi_strict), (other.hi, other.hi_strict)
        )
        return Interval(
            lo, lo_strict, hi, hi_strict,
            self.excluded | other.excluded,
            self.discrete or other.discrete,
        ).normalized()

    # ------------------------------------------------------------------
    # decision procedures (conservative)
    # ------------------------------------------------------------------

    def contains(self, value: Value) -> bool:
        """Membership test for a concrete value."""
        norm = self.normalized()
        return (
            _within(value, norm.lo, norm.lo_strict, norm.hi, norm.hi_strict)
            and value not in norm.excluded
        )

    def membership(self) -> Callable[[Value], bool]:
        """A compiled membership test, normalization hoisted.

        :meth:`contains` re-normalizes on every call — fine for the
        decision procedures, wasteful when a mask kernel tests the
        same interval against millions of column values.  The returned
        closure is extensionally equal to ``contains`` but pays
        normalization exactly once (``tests/property/
        test_columnar_relation.py`` pins the equality).
        """
        norm = self.normalized()
        lo, lo_strict = norm.lo, norm.lo_strict
        hi, hi_strict = norm.hi, norm.hi_strict
        excluded = norm.excluded

        def member(value: Value) -> bool:
            return (
                _within(value, lo, lo_strict, hi, hi_strict)
                and value not in excluded
            )

        return member

    @property
    def is_point(self) -> bool:
        """True when the interval pins exactly one value."""
        norm = self.normalized()
        return (
            norm.lo is not None
            and norm.lo == norm.hi
            and not norm.lo_strict
            and not norm.hi_strict
        )

    def the_point(self) -> Value:
        """The single value of a point interval."""
        point = self.normalized().lo
        if point is None or not self.is_point:
            raise ValueError(f"{self!r} is not a point interval")
        return point

    def is_empty(self) -> bool:
        """Provable emptiness (the predicate is unsatisfiable)."""
        norm = self.normalized()
        if norm.lo is None or norm.hi is None:
            return False
        if norm.lo > norm.hi:
            return True
        if norm.lo == norm.hi:
            return norm.lo_strict or norm.hi_strict
        return False

    @property
    def is_top(self) -> bool:
        """True when the predicate is the constant ``true``."""
        return (
            self.lo is None and self.hi is None and not self.excluded
        )

    def is_subset(self, other: "Interval") -> bool:
        """Provable implication: ``self`` predicate implies ``other``'s.

        Conservative — an empty ``self`` implies anything.
        """
        if self.is_empty():
            return True
        a, b = self.normalized(), other.normalized()
        if not _lo_at_least(a, b) or not _hi_at_most(a, b):
            return False
        # Every point b excludes must also be outside a.
        return all(not a.contains(v) for v in b.excluded)

    def is_disjoint(self, other: "Interval") -> bool:
        """Provable contradiction of the two predicates."""
        if self.is_empty() or other.is_empty():
            return True
        a, b = self.normalized(), other.normalized()
        if a.is_point:
            return not b.contains(a.the_point())
        if b.is_point:
            return not a.contains(b.the_point())
        return self.intersect(other).is_empty()

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def describe(self, subject: str) -> Tuple[str, ...]:
        """Render the predicate as comparison clauses over ``subject``.

        Returns a tuple of clause strings, empty for ``true``.
        """
        norm = self.normalized()
        if norm.is_point:
            return (f"{subject} = {_fmt(norm.the_point())}",)
        clauses = []
        if norm.lo is not None:
            op = ">" if norm.lo_strict else ">="
            clauses.append(f"{subject} {op} {_fmt(norm.lo)}")
        if norm.hi is not None:
            op = "<" if norm.hi_strict else "<="
            clauses.append(f"{subject} {op} {_fmt(norm.hi)}")
        for value in sorted(norm.excluded, key=repr):
            clauses.append(f"{subject} != {_fmt(value)}")
        return tuple(clauses)

    def __str__(self) -> str:
        return " and ".join(self.describe("x")) or "true"


def _fmt(value: Value) -> str:
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)


def _within(value: Value, lo: Optional[Value], lo_strict: bool,
            hi: Optional[Value], hi_strict: bool) -> bool:
    if lo is not None:
        if lo_strict and not value > lo:
            return False
        if not lo_strict and not value >= lo:
            return False
    if hi is not None:
        if hi_strict and not value < hi:
            return False
        if not hi_strict and not value <= hi:
            return False
    return True


def _tighter_lo(a: Tuple[Optional[Value], bool],
                b: Tuple[Optional[Value], bool]) -> Tuple[Optional[Value], bool]:
    (alo, astrict), (blo, bstrict) = a, b
    if alo is None:
        return blo, bstrict
    if blo is None:
        return alo, astrict
    if alo > blo:
        return alo, astrict
    if blo > alo:
        return blo, bstrict
    return alo, astrict or bstrict


def _tighter_hi(a: Tuple[Optional[Value], bool],
                b: Tuple[Optional[Value], bool]) -> Tuple[Optional[Value], bool]:
    (ahi, astrict), (bhi, bstrict) = a, b
    if ahi is None:
        return bhi, bstrict
    if bhi is None:
        return ahi, astrict
    if ahi < bhi:
        return ahi, astrict
    if bhi < ahi:
        return bhi, bstrict
    return ahi, astrict or bstrict


def _lo_at_least(a: Interval, b: Interval) -> bool:
    """Is a's lower bound at least as tight as b's?"""
    if b.lo is None:
        return True
    if a.lo is None:
        return False
    if a.lo > b.lo:
        return True
    if a.lo < b.lo:
        return False
    return a.lo_strict or not b.lo_strict


def _hi_at_most(a: Interval, b: Interval) -> bool:
    """Is a's upper bound at least as tight as b's?"""
    if b.hi is None:
        return True
    if a.hi is None:
        return False
    if a.hi < b.hi:
        return True
    if a.hi > b.hi:
        return False
    return a.hi_strict or not b.hi_strict
