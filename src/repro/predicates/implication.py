"""The four-case analysis of Section 4.2.

Given the stored predicate mu of a meta-tuple field and the predicate
lambda of the query's selection on the same attribute, Section 4.2
distinguishes:

* **lambda implies mu** — "the meta-tuple is selected and the
  corresponding field is cleared": every answer tuple already satisfies
  mu, so the field carries no information relative to the answer.
  Clearing lets the meta-tuple survive later projections.
* **mu implies lambda** — "the meta-tuple is selected without any
  modification".
* **lambda and mu contradictory** — "the meta-tuple is discarded": the
  view is irrelevant to this answer.
* **otherwise** — "the meta-tuple is selected, and is modified to
  represent mu AND lambda" (the literal Definition 2 behaviour).

The classifier is conservative: when implication cannot be decided it
returns :data:`SelectionCase.CONJOIN`, which is always sound.  When
both implications hold (lambda equivalent to mu) clearing is preferred,
because "clearing selection predicates ensures that more meta-tuples
will survive future projections".
"""

from __future__ import annotations

import enum

from repro.predicates.intervals import Interval


class SelectionCase(enum.Enum):
    """Outcome of comparing query predicate lambda with stored mu."""

    DISCARD = "discard"   # lambda and mu contradictory
    CLEAR = "clear"       # lambda implies mu
    RETAIN = "retain"     # mu implies lambda
    CONJOIN = "conjoin"   # overlap: represent mu AND lambda

    def __str__(self) -> str:
        return self.value


def classify(mu: Interval, lam: Interval) -> SelectionCase:
    """Classify query predicate ``lam`` against stored predicate ``mu``.

    The order of checks matters: contradiction dominates (an empty
    conjunction must discard), and clearing is preferred to retaining
    when the predicates are equivalent.
    """
    if mu.is_disjoint(lam):
        return SelectionCase.DISCARD
    if lam.is_subset(mu):
        return SelectionCase.CLEAR
    if mu.is_subset(lam):
        return SelectionCase.RETAIN
    return SelectionCase.CONJOIN


def conjoined(mu: Interval, lam: Interval) -> Interval:
    """The predicate ``mu AND lambda`` for the CONJOIN case."""
    return mu.intersect(lam)
