"""Lexer for the statement language.

Follows the paper's surface conventions:

* numbers may use thousands separators (``250,000``) and decimals;
* string constants may be quoted (``'bq-45'``) or bare identifiers in
  constant position (``Acme`` — the parser decides constant-ness);
* bare identifiers admit interior dashes (``bq-45``) so the paper's
  project numbers can be written unquoted;
* the mathematical comparator glyphs of the paper are accepted
  alongside their ASCII spellings.
"""

from __future__ import annotations

import re
from typing import List

from repro.errors import ParseError
from repro.lang.tokens import Token, TokenKind

# Order matters: longest comparators first so '<=' wins over '<'.
_COMPARATORS = ("<=", ">=", "!=", "<>", "==", "<", ">", "=", "≤", "≥", "≠")

_NUMBER = re.compile(
    r"-?\d{1,3}(?:,\d{3})+(?:\.\d+)?"  # 250,000 style
    r"|-?\d+(?:\.\d+)?"                # plain
)
# Identifiers: letters/underscore start, then alnum/underscore, with
# interior dash groups (bq-45) as long as each group starts alnum.
_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*(?:-[A-Za-z0-9_]+)*")

_SINGLE = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    ":": TokenKind.COLON,
    "*": TokenKind.STAR,
    ";": TokenKind.SEMICOLON,
}


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``, appending an END sentinel.

    Raises:
        ParseError: on any character that starts no token.
    """
    tokens: List[Token] = []
    position = 0
    line = 1
    length = len(text)

    while position < length:
        char = text[position]

        if char == "\n":
            line += 1
            position += 1
            continue
        if char.isspace():
            position += 1
            continue
        if char == "-" and text[position:position + 2] == "--":
            # Comment to end of line.
            newline = text.find("\n", position)
            position = length if newline < 0 else newline
            continue

        matched = False
        for spelling in _COMPARATORS:
            if text.startswith(spelling, position):
                tokens.append(Token(TokenKind.COMPARE, spelling, spelling,
                                    position, line))
                position += len(spelling)
                matched = True
                break
        if matched:
            continue

        if char in ("'", '"'):
            end = text.find(char, position + 1)
            if end < 0:
                raise ParseError("unterminated string literal",
                                 position, line)
            literal = text[position + 1:end]
            tokens.append(Token(TokenKind.STRING, text[position:end + 1],
                                literal, position, line))
            position = end + 1
            continue

        number = _NUMBER.match(text, position)
        if number and (char.isdigit()
                       or (char == "-" and number.end() > position + 1)):
            raw = number.group(0)
            cleaned = raw.replace(",", "")
            value = float(cleaned) if "." in cleaned else int(cleaned)
            tokens.append(Token(TokenKind.NUMBER, raw, value, position, line))
            position = number.end()
            continue

        ident = _IDENT.match(text, position)
        if ident:
            raw = ident.group(0)
            tokens.append(Token(TokenKind.IDENT, raw, raw, position, line))
            position = ident.end()
            continue

        if char in _SINGLE:
            tokens.append(Token(_SINGLE[char], char, char, position, line))
            position += 1
            continue

        raise ParseError(f"unexpected character {char!r}", position, line)

    tokens.append(Token(TokenKind.END, "", "", length, line))
    return tokens
