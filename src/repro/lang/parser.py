"""Recursive-descent parser for the statement language.

Grammar (keywords case-insensitive)::

    statement  := view | retrieve | permit | revoke
    view       := "view" IDENT "(" attrs ")" [where]
    retrieve   := "retrieve" "(" attrs ")" [where]
    permit     := "permit" names "to" names
    revoke     := "revoke" names "from" names
    where      := "where" condition ("and" condition)*
    condition  := term CMP term
    attrs      := attr ("," attr)*
    attr       := IDENT [":" NUMBER] "." IDENT
    term       := attr | NUMBER | STRING | IDENT      -- bare constant
    names      := IDENT ("," IDENT)*

A bare identifier in term position that is not followed by ``.`` or
``:`` is a string constant, which lets the paper's unquoted constants
(``PROJECT.SPONSOR = Acme``) parse as written.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from repro.calculus.ast import (
    AttrRef,
    Condition,
    ConstTerm,
    Query,
    Term,
    ViewDefinition,
)
from repro.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import KEYWORDS, Token, TokenKind
from repro.predicates.comparators import comparator_from_spelling


@dataclass(frozen=True)
class PermitCommand:
    """``permit V1, V2 to U1, U2`` — grant views to users."""

    views: Tuple[str, ...]
    users: Tuple[str, ...]

    def __str__(self) -> str:
        return f"permit {', '.join(self.views)} to {', '.join(self.users)}"


@dataclass(frozen=True)
class PermitViewCommand:
    """``permit (R.A, R.B) [where ...] to U`` — grant an anonymous view.

    The same shape the system *emits* as inferred permit statements,
    accepted as input: the front end materializes it as a view with a
    generated name and grants it, keeping the permission language
    closed under its own output.
    """

    target: Tuple[AttrRef, ...]
    conditions: Tuple[Condition, ...]
    users: Tuple[str, ...]

    def as_view(self, name: str) -> ViewDefinition:
        return ViewDefinition(name, self.target, self.conditions)

    def __str__(self) -> str:
        head = ", ".join(str(t) for t in self.target)
        text = f"permit ({head})"
        if self.conditions:
            text += " where " + " and ".join(
                str(c) for c in self.conditions
            )
        return text + f" to {', '.join(self.users)}"


@dataclass(frozen=True)
class RevokeCommand:
    """``revoke V1 from U1`` — withdraw grants."""

    views: Tuple[str, ...]
    users: Tuple[str, ...]

    def __str__(self) -> str:
        return f"revoke {', '.join(self.views)} from {', '.join(self.users)}"


@dataclass(frozen=True)
class InsertCommand:
    """``insert into R values (v1, v2, ...)`` — Section 6(1)."""

    relation: str
    values: Tuple

    def __str__(self) -> str:
        rendered = ", ".join(_render_literal(v) for v in self.values)
        return f"insert into {self.relation} values ({rendered})"


@dataclass(frozen=True)
class DeleteCommand:
    """``delete from R [where ...]`` — Section 6(1)."""

    relation: str
    conditions: Tuple[Condition, ...] = ()

    def __str__(self) -> str:
        text = f"delete from {self.relation}"
        if self.conditions:
            text += " where " + " and ".join(
                str(c) for c in self.conditions
            )
        return text


@dataclass(frozen=True)
class ModifyCommand:
    """``modify R set A = v [, B = w] [where ...]`` — Section 6(1)."""

    relation: str
    updates: Tuple[Tuple[str, object], ...]
    conditions: Tuple[Condition, ...] = ()

    def __str__(self) -> str:
        sets = ", ".join(
            f"{name} = {_render_literal(value)}"
            for name, value in self.updates
        )
        text = f"modify {self.relation} set {sets}"
        if self.conditions:
            text += " where " + " and ".join(
                str(c) for c in self.conditions
            )
        return text


def _render_literal(value: object) -> str:
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)


Statement = Union[ViewDefinition, Query, PermitCommand,
                  PermitViewCommand, RevokeCommand,
                  InsertCommand, DeleteCommand, ModifyCommand]


class _Parser:
    def __init__(self, tokens: Sequence[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- primitives ----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.END:
            self.index += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(f"{message}, found {token}", token.position,
                          token.line)

    def expect(self, kind: TokenKind) -> Token:
        if self.peek().kind is not kind:
            raise self.error(f"expected {kind.value}")
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.peek().is_keyword(word):
            raise self.error(f"expected keyword {word!r}")
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def expect_name(self) -> str:
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            raise self.error("expected a name")
        if token.text.lower() in KEYWORDS:
            raise self.error(f"reserved word {token.text!r} used as a name")
        return str(self.advance().value)

    # -- grammar productions -------------------------------------------

    def statement(self) -> Statement:
        token = self.peek()
        if token.is_keyword("view"):
            return self.view_statement()
        if token.is_keyword("retrieve"):
            return self.retrieve_statement()
        if token.is_keyword("permit"):
            return self.permit_statement()
        if token.is_keyword("revoke"):
            return self.revoke_statement()
        if token.is_keyword("insert"):
            return self.insert_statement()
        if token.is_keyword("delete"):
            return self.delete_statement()
        if token.is_keyword("modify"):
            return self.modify_statement()
        raise self.error(
            "expected 'view', 'retrieve', 'permit', 'revoke', "
            "'insert', 'delete' or 'modify'"
        )

    def insert_statement(self) -> InsertCommand:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        relation = self.expect_name()
        self.accept_keyword("values")
        self.expect(TokenKind.LPAREN)
        values = [self.literal()]
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            values.append(self.literal())
        self.expect(TokenKind.RPAREN)
        return InsertCommand(relation, tuple(values))

    def delete_statement(self) -> DeleteCommand:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        relation = self.expect_name()
        conditions = self.optional_where()
        return DeleteCommand(relation, conditions)

    def modify_statement(self) -> ModifyCommand:
        self.expect_keyword("modify")
        relation = self.expect_name()
        self.expect_keyword("set")
        updates = [self.assignment()]
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            updates.append(self.assignment())
        conditions = self.optional_where()
        return ModifyCommand(relation, tuple(updates), conditions)

    def assignment(self) -> Tuple[str, object]:
        attribute = self.expect_name()
        compare = self.expect(TokenKind.COMPARE)
        if compare.text not in ("=", "=="):
            raise ParseError("assignments use '='", compare.position,
                             compare.line)
        return (attribute, self.literal())

    def literal(self) -> Union[str, int]:
        token = self.peek()
        if token.kind in (TokenKind.NUMBER, TokenKind.STRING):
            self.advance()
            return token.value
        if token.kind is TokenKind.IDENT \
                and token.text.lower() not in KEYWORDS:
            self.advance()
            return str(token.value)
        raise self.error("expected a literal value")

    def view_statement(self) -> ViewDefinition:
        self.expect_keyword("view")
        name = self.expect_name()
        target = self.attr_list()
        conditions = self.optional_where()
        return ViewDefinition(name, target, conditions)

    def retrieve_statement(self) -> Query:
        self.expect_keyword("retrieve")
        target = self.attr_list()
        conditions = self.optional_where()
        return Query(target, conditions)

    def permit_statement(self) -> Union[PermitCommand, PermitViewCommand]:
        self.expect_keyword("permit")
        if self.peek().kind is TokenKind.LPAREN:
            target = self.attr_list()
            conditions = self.optional_where()
            self.expect_keyword("to")
            users = self.name_list()
            return PermitViewCommand(target, conditions, users)
        views = self.name_list()
        self.expect_keyword("to")
        users = self.name_list()
        return PermitCommand(views, users)

    def revoke_statement(self) -> RevokeCommand:
        self.expect_keyword("revoke")
        views = self.name_list()
        self.expect_keyword("from")
        users = self.name_list()
        return RevokeCommand(views, users)

    def name_list(self) -> Tuple[str, ...]:
        names = [self.expect_name()]
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            names.append(self.expect_name())
        return tuple(names)

    def attr_list(self) -> Tuple[AttrRef, ...]:
        self.expect(TokenKind.LPAREN)
        refs = [self.attr_ref()]
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            refs.append(self.attr_ref())
        self.expect(TokenKind.RPAREN)
        return tuple(refs)

    def attr_ref(self) -> AttrRef:
        relation = self.expect_name()
        occurrence = 1
        if self.peek().kind is TokenKind.COLON:
            self.advance()
            number = self.expect(TokenKind.NUMBER)
            if not isinstance(number.value, int) or number.value < 1:
                raise ParseError("occurrence index must be a positive integer",
                                 number.position, number.line)
            occurrence = number.value
        self.expect(TokenKind.DOT)
        attribute = self.expect_name()
        return AttrRef(relation, attribute, occurrence)

    def optional_where(self) -> Tuple[Condition, ...]:
        if not self.accept_keyword("where"):
            return ()
        conditions = [self.condition()]
        while self.accept_keyword("and"):
            conditions.append(self.condition())
        return tuple(conditions)

    def condition(self) -> Condition:
        lhs = self.term()
        compare = self.expect(TokenKind.COMPARE)
        op = comparator_from_spelling(compare.text)
        rhs = self.term()
        return Condition(lhs, op, rhs)

    def term(self) -> Term:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return ConstTerm(token.value)
        if token.kind is TokenKind.STRING:
            self.advance()
            return ConstTerm(token.value)
        if token.kind is TokenKind.IDENT:
            # Lookahead: NAME '.' / NAME ':' means an attribute reference;
            # a lone identifier is a bare string constant (paper style).
            following = self.tokens[self.index + 1].kind
            if following in (TokenKind.DOT, TokenKind.COLON):
                return self.attr_ref()
            if token.text.lower() in KEYWORDS:
                raise self.error("expected a term")
            self.advance()
            return ConstTerm(str(token.value))
        raise self.error("expected a term")


def parse_statement(text: str) -> Statement:
    """Parse a single statement.

    Raises:
        ParseError: on malformed input or trailing junk.
    """
    parser = _Parser(tokenize(text))
    statement = parser.statement()
    while parser.peek().kind is TokenKind.SEMICOLON:
        parser.advance()
    if parser.peek().kind is not TokenKind.END:
        raise parser.error("unexpected input after statement")
    return statement


def parse_program(text: str) -> List[Statement]:
    """Parse a sequence of statements.

    Statements may be separated by semicolons or simply by starting
    with a statement keyword; both styles appear in scripts.
    """
    parser = _Parser(tokenize(text))
    statements: List[Statement] = []
    while parser.peek().kind is not TokenKind.END:
        statements.append(parser.statement())
        while parser.peek().kind is TokenKind.SEMICOLON:
            parser.advance()
    return statements


def parse_query(text: str) -> Query:
    """Parse text that must be a retrieve statement."""
    statement = parse_statement(text)
    if not isinstance(statement, Query):
        raise ParseError("expected a retrieve statement")
    return statement


def parse_view(text: str) -> ViewDefinition:
    """Parse text that must be a view statement."""
    statement = parse_statement(text)
    if not isinstance(statement, ViewDefinition):
        raise ParseError("expected a view statement")
    return statement
