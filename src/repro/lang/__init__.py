"""S3 — the statement language.

Lexer, parser and pretty-printer for the paper's surface syntax:
``view``, ``retrieve``, ``permit``, ``revoke`` statements with
occurrence-qualified attribute references (``EMPLOYEE:2.NAME``),
thousands-separated numbers (``250,000``) and bare string constants
(``Acme``).
"""

from repro.lang.lexer import tokenize
from repro.lang.parser import (
    DeleteCommand,
    InsertCommand,
    ModifyCommand,
    PermitCommand,
    PermitViewCommand,
    RevokeCommand,
    Statement,
    parse_program,
    parse_query,
    parse_statement,
    parse_view,
)
from repro.lang.printer import format_statement
from repro.lang.tokens import KEYWORDS, Token, TokenKind

__all__ = [
    "DeleteCommand",
    "InsertCommand",
    "KEYWORDS",
    "ModifyCommand",
    "PermitCommand",
    "PermitViewCommand",
    "RevokeCommand",
    "Statement",
    "Token",
    "TokenKind",
    "format_statement",
    "parse_program",
    "parse_query",
    "parse_statement",
    "parse_view",
    "tokenize",
]
