"""Pretty-printer producing the paper's multi-line statement layout.

The ASTs' ``__str__`` give compact one-line renderings; this module
formats statements the way the paper typesets them::

    view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE,
              PROJECT.NUMBER, PROJECT.BUDGET)
    where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
    and PROJECT.NUMBER = ASSIGNMENT.P_NO
    and PROJECT.BUDGET >= 250,000
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Union

from repro.calculus.ast import (
    Condition,
    Query,
    ViewDefinition,
    _multi_occurrence_relations,
    _render_condition,
)
from repro.lang.parser import PermitCommand, RevokeCommand

Statement = Union[ViewDefinition, Query, PermitCommand, RevokeCommand]


def format_statement(statement: Statement, width: int = 72) -> str:
    """Render ``statement`` in the paper's layout."""
    if isinstance(statement, ViewDefinition):
        head = f"view {statement.name} "
        return _format_headed(head, statement, width)
    if isinstance(statement, Query):
        return _format_headed("retrieve ", statement, width)
    return str(statement)


def _format_headed(head: str, expression: Union[ViewDefinition, Query],
                   width: int) -> str:
    multi = _multi_occurrence_relations(expression)
    targets = [t.render(t.relation in multi) for t in expression.target]
    lines = _wrap_parenthesized(head, targets, width)
    lines.extend(_format_conditions(expression.conditions, multi))
    return "\n".join(lines)


def _wrap_parenthesized(head: str, items: List[str], width: int) -> List[str]:
    lines: List[str] = []
    indent = " " * (len(head) + 1)
    current = head + "("
    for i, item in enumerate(items):
        suffix = ")" if i == len(items) - 1 else ","
        candidate = current + item + suffix
        if len(candidate) > width and current.strip() not in (head.strip() + "(", "("):
            lines.append(current.rstrip())
            current = indent + item + suffix
        else:
            current = candidate
        if suffix == ",":
            current += " "
    lines.append(current)
    return lines


def _format_conditions(conditions: Sequence[Condition],
                       multi: FrozenSet[str]) -> List[str]:
    lines: List[str] = []
    for i, condition in enumerate(conditions):
        keyword = "where" if i == 0 else "and"
        lines.append(f"{keyword} {_render_condition(condition, multi)}")
    return lines


def _render_condition_public(condition: Condition,
                             multi: FrozenSet[str] = frozenset()) -> str:
    """Exposed for the experiment renderers."""
    return _render_condition(condition, multi)
