"""Tokens of the statement language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class TokenKind(enum.Enum):
    """Lexical categories of the surface language."""

    IDENT = "identifier"
    NUMBER = "number"
    STRING = "string"
    COMPARE = "comparator"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    COLON = ":"
    STAR = "*"
    SEMICOLON = ";"
    END = "end-of-input"


@dataclass(frozen=True)
class Token:
    """A lexed token with its source location.

    ``value`` carries the parsed payload for NUMBER tokens (int or
    float, thousands separators removed) and the unquoted text for
    STRING tokens; for other kinds it equals ``text``.
    """

    kind: TokenKind
    text: str
    value: Union[int, float, str]
    position: int
    line: int

    def is_keyword(self, word: str) -> bool:
        """Case-insensitive keyword test (keywords are identifiers)."""
        return self.kind is TokenKind.IDENT and self.text.lower() == word

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"


#: Reserved words of the language (matched case-insensitively).
KEYWORDS = frozenset({
    "view", "retrieve", "permit", "revoke", "where", "and", "to", "from",
    "insert", "into", "values", "delete", "modify", "set",
})
